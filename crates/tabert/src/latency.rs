//! Simulated TaBERT inference latency.
//!
//! Fig. 8 (right) of the paper reports the average time spent inside TaBERT
//! for K ∈ {1, 3} and Base/Large instances: accuracy is flat across
//! configurations but latency grows sharply with K (row-wise vertical
//! attention is quadratic-ish in rows) and with model size (Large has 3×
//! the parameters). This model reproduces those ratios.

use crate::{ModelSize, TabertConfig};

/// Latency model calibrated to the paper's reported shape.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// ms per transformer pass over one column's triplets (Base).
    base_column_ms: f64,
    k: usize,
    size_mult: f64,
}

impl LatencyModel {
    pub fn new(config: &TabertConfig) -> Self {
        let size_mult = match config.size {
            ModelSize::Base => 1.0,
            // "the large instance has 3x more parameters than base"
            ModelSize::Large => 3.0,
        };
        Self { base_column_ms: 1.6, k: config.k.max(1), size_mult }
    }

    /// Simulated time to encode one column.
    pub fn encode_column_ms(&self) -> f64 {
        // One BERT pass per snapshot row, plus vertical attention across the
        // K row encodings (quadratic in K).
        let passes = self.k as f64;
        let vertical = if self.k > 1 { 0.8 * (self.k * self.k) as f64 } else { 0.0 };
        (self.base_column_ms * passes + vertical) * self.size_mult
    }

    /// Simulated time to encode a table with `n_cols` columns.
    pub fn encode_table_ms(&self, n_cols: usize) -> f64 {
        self.encode_column_ms() * n_cols as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: usize, size: ModelSize) -> TabertConfig {
        TabertConfig { k, size, seed: 0 }
    }

    #[test]
    fn latency_grows_with_k() {
        let k1 = LatencyModel::new(&cfg(1, ModelSize::Base));
        let k2 = LatencyModel::new(&cfg(2, ModelSize::Base));
        let k3 = LatencyModel::new(&cfg(3, ModelSize::Base));
        assert!(k2.encode_column_ms() > k1.encode_column_ms());
        assert!(k3.encode_column_ms() > k2.encode_column_ms());
        // K=3 is much more than 3x K=1 (vertical attention dominates).
        assert!(k3.encode_column_ms() > 3.0 * k1.encode_column_ms());
    }

    #[test]
    fn large_is_three_times_base() {
        let base = LatencyModel::new(&cfg(1, ModelSize::Base));
        let large = LatencyModel::new(&cfg(1, ModelSize::Large));
        let ratio = large.encode_column_ms() / base.encode_column_ms();
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn table_latency_scales_with_columns() {
        let m = LatencyModel::new(&cfg(1, ModelSize::Base));
        assert!((m.encode_table_ms(10) - 10.0 * m.encode_column_ms()).abs() < 1e-9);
    }
}
