//! The TabSim encoder: triplet hashing + column statistics + frozen
//! projection + vertical pooling.

use crate::latency::LatencyModel;
use crate::ngram;
use crate::TabertConfig;
use qpseeker_storage::{ColumnData, Database, Table};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Width of the hashed feature space before projection.
const HASH_DIM: usize = 192;
/// Number of statistics features appended to the hashed features.
const STATS_DIM: usize = 16;

/// Encoding of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnEncoding {
    pub vector: Vec<f32>,
}

/// Encoding of one table for one query: per-column vectors and the `[CLS]`
/// table vector.
#[derive(Debug, Clone)]
pub struct TableEncoding {
    pub cls: Vec<f32>,
    pub columns: HashMap<String, ColumnEncoding>,
}

/// The TabSim encoder. Create once per database and share freely: the struct
/// is immutable apart from one atomic latency counter, so it is `Send + Sync`
/// with no locks. Encodings are cached in a caller-owned [`TabertCache`] —
/// one per planner session — which keeps the hot path free of shared state.
pub struct TabSim {
    config: TabertConfig,
    /// Frozen projection matrix `[HASH_DIM + STATS_DIM, dim]`, row-major.
    projection: Vec<f32>,
    latency: LatencyModel,
    /// Cumulative simulated encoding time in nanoseconds (drives Fig. 8
    /// right). Integer adds are commutative, so concurrent sessions produce
    /// the same total regardless of interleaving.
    simulated_ns: AtomicU64,
}

/// Per-session encoding cache: (table, query-bucket) → encoding. The query
/// only influences the snapshot-row choice, so we bucket queries by their
/// trigram hash. Owned by one session/thread; never shared.
#[derive(Default)]
pub struct TabertCache {
    cache: HashMap<(String, u64), TableEncoding>,
}

impl TabertCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached (table, query-bucket) encodings.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

impl TabSim {
    pub fn new(config: TabertConfig) -> Self {
        let dim = config.dim();
        let in_dim = HASH_DIM + STATS_DIM;
        // Frozen pseudo-random Gaussian-ish projection from splitmix64.
        let mut state = config.seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let scale = 1.0 / (in_dim as f32).sqrt();
        let projection = (0..in_dim * dim)
            .map(|_| {
                // Sum of 4 uniforms ≈ Gaussian (Irwin-Hall), centered.
                let mut acc = 0.0f32;
                for _ in 0..4 {
                    acc += (next() >> 40) as f32 / (1u64 << 24) as f32;
                }
                (acc - 2.0) * scale
            })
            .collect();
        let latency = LatencyModel::new(&config);
        Self { config, projection, latency, simulated_ns: AtomicU64::new(0) }
    }

    /// Cumulative simulated encoding time in milliseconds.
    pub fn simulated_ms(&self) -> f64 {
        self.simulated_ns.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Charge `ms` of simulated encoding latency, quantized to nanoseconds
    /// so concurrent adds commute exactly.
    fn charge_ms(&self, ms: f64) {
        self.simulated_ns.fetch_add((ms * 1e6).round() as u64, Ordering::Relaxed);
    }

    pub fn config(&self) -> &TabertConfig {
        &self.config
    }

    pub fn dim(&self) -> usize {
        self.config.dim()
    }

    /// Encode a table in the context of a query (the paper concatenates the
    /// query with the column triplets; here the query drives snapshot-row
    /// selection). Cached per (table, query-shape).
    pub fn encode_table(
        &self,
        cache: &mut TabertCache,
        db: &Database,
        table: &str,
        query_text: &str,
    ) -> TableEncoding {
        let qkey = query_bucket(query_text);
        if let Some(hit) = cache.cache.get(&(table.to_string(), qkey)) {
            return hit.clone();
        }
        let t = db.table(table).unwrap_or_else(|| panic!("unknown table {table}"));
        self.charge_ms(self.latency.encode_table_ms(t.n_cols()));
        let enc = self.encode_uncached(t, query_text);
        cache.cache.insert((table.to_string(), qkey), enc.clone());
        enc
    }

    /// The `[CLS]` table vector only. On a cache hit this clones one `Vec`
    /// instead of the whole per-column encoding map — the planner's hot loop
    /// needs nothing else.
    pub fn encode_table_cls(
        &self,
        cache: &mut TabertCache,
        db: &Database,
        table: &str,
        query_text: &str,
    ) -> Vec<f32> {
        let qkey = query_bucket(query_text);
        if let Some(hit) = cache.cache.get(&(table.to_string(), qkey)) {
            return hit.cls.clone();
        }
        let t = db.table(table).unwrap_or_else(|| panic!("unknown table {table}"));
        self.charge_ms(self.latency.encode_table_ms(t.n_cols()));
        let enc = self.encode_uncached(t, query_text);
        let cls = enc.cls.clone();
        cache.cache.insert((table.to_string(), qkey), enc);
        cls
    }

    /// Representation of a column *restricted by a predicate* (paper §4.2:
    /// "we take the representation of this column filtered based on this
    /// predicate"). The statistics half of the feature vector is recomputed
    /// over the matching rows only.
    pub fn encode_column_filtered(
        &self,
        db: &Database,
        table: &str,
        column: &str,
        matching_rows: &[u32],
    ) -> ColumnEncoding {
        let t = db.table(table).unwrap_or_else(|| panic!("unknown table {table}"));
        let col = t.col(column);
        self.charge_ms(self.latency.encode_column_ms());
        let mut feats = vec![0.0f32; HASH_DIM + STATS_DIM];
        hash_token(&mut feats, &format!("name:{column}"));
        hash_token(&mut feats, &format!("type:{:?}", col.data.dtype()));
        hash_token(&mut feats, &format!("tbl:{table}"));
        hash_token(&mut feats, "filtered");
        let values: Vec<f64> = matching_rows.iter().map(|&r| col.data.num(r as usize)).collect();
        write_stats(&mut feats[HASH_DIM..], &values, t.n_rows());
        ColumnEncoding { vector: self.project(&feats) }
    }

    fn encode_uncached(&self, t: &Table, query_text: &str) -> TableEncoding {
        let snapshot = self.select_snapshot_rows(t, query_text);
        let mut columns = HashMap::new();
        let mut cls_feats = vec![0.0f32; HASH_DIM + STATS_DIM];
        hash_token(&mut cls_feats, &format!("tbl:{}", t.name));
        let mut total_rows_feat = Vec::new();

        for col in &t.columns {
            let mut feats = vec![0.0f32; HASH_DIM + STATS_DIM];
            hash_token(&mut feats, &format!("name:{}", col.name));
            hash_token(&mut feats, &format!("type:{:?}", col.data.dtype()));
            hash_token(&mut feats, &format!("tbl:{}", t.name));
            // Content snapshot: the cell values of the selected rows,
            // weighted by the row's overlap score (vertical attention).
            let total_w: f64 = snapshot.iter().map(|&(_, w)| w.max(1e-3)).sum();
            for &(row, w) in &snapshot {
                let cell = cell_text(&col.data, row);
                hash_token_weighted(
                    &mut feats,
                    &format!("val:{cell}"),
                    (w.max(1e-3) / total_w) as f32,
                );
            }
            // Distribution statistics over the full column (what MCP/CVR
            // pretraining teaches TaBERT to internalize).
            let values: Vec<f64> = (0..t.n_rows()).map(|i| col.data.num(i)).collect();
            write_stats(&mut feats[HASH_DIM..], &values, t.n_rows());

            // CLS accumulates column features (mean over columns).
            for (c, f) in cls_feats.iter_mut().zip(feats.iter()) {
                *c += f / t.n_cols() as f32;
            }
            total_rows_feat = values; // last column reused only for length; ignored
            columns.insert(col.name.clone(), ColumnEncoding { vector: self.project(&feats) });
        }
        let _ = total_rows_feat;
        // Table-level size feature into the CLS stats slot.
        cls_feats[HASH_DIM + STATS_DIM - 1] = ((t.n_rows() as f32) + 1.0).ln() / 20.0;
        TableEncoding { cls: self.project(&cls_feats), columns }
    }

    /// Top-K rows by trigram overlap with the query.
    fn select_snapshot_rows(&self, t: &Table, query_text: &str) -> Vec<(usize, f64)> {
        let qgrams = ngram::trigrams(query_text);
        let n = t.n_rows();
        if n == 0 {
            return Vec::new();
        }
        // Sample up to 256 rows for scoring (real TaBERT scans the table;
        // sampling keeps encoding O(1) while preserving the top-overlap
        // behaviour on our dictionary data).
        let stride = (n / 256).max(1);
        let mut scored: Vec<(usize, f64)> = (0..n)
            .step_by(stride)
            .map(|row| {
                let text: String =
                    t.columns.iter().map(|c| cell_text(&c.data, row)).collect::<Vec<_>>().join(" ");
                (row, ngram::overlap_score(&qgrams, &text))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        scored.truncate(self.config.k.max(1));
        scored
    }

    fn project(&self, feats: &[f32]) -> Vec<f32> {
        let dim = self.config.dim();
        let mut out = vec![0.0f32; dim];
        for (i, &f) in feats.iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            let row = &self.projection[i * dim..(i + 1) * dim];
            for (o, &p) in out.iter_mut().zip(row) {
                *o += f * p;
            }
        }
        // tanh squashing keeps downstream encoder inputs bounded.
        for o in &mut out {
            *o = o.tanh();
        }
        out
    }
}

fn cell_text(data: &ColumnData, row: usize) -> String {
    match data {
        ColumnData::Int(v) => v[row].to_string(),
        ColumnData::Float(v) => format!("{:.2}", v[row]),
        ColumnData::Text { codes, dict } => dict[codes[row] as usize].clone(),
    }
}

fn hash_token(feats: &mut [f32], token: &str) {
    hash_token_weighted(feats, token, 1.0);
}

/// Feature hashing with sign (Weinberger et al.): bucket = h mod H,
/// sign from another bit of the hash.
fn hash_token_weighted(feats: &mut [f32], token: &str, weight: f32) {
    let mut h = 0xcbf29ce484222325u64;
    for b in token.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let bucket = (h % HASH_DIM as u64) as usize;
    let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
    feats[bucket] += sign * weight;
}

/// Distribution statistics of a value vector, written into a 16-slot window:
/// log-count, distinct ratio, mean, std, min, max (normalized), plus an
/// 8-bin range-partitioned histogram sketch and selectivity.
fn write_stats(out: &mut [f32], values: &[f64], table_rows: usize) {
    debug_assert_eq!(out.len(), STATS_DIM);
    let n = values.len();
    out[0] = ((n as f32) + 1.0).ln() / 20.0;
    if n == 0 {
        return;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let distinct = 1 + sorted.windows(2).filter(|w| w[0] != w[1]).count();
    out[1] = distinct as f32 / n as f32;
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let (min, max) = (sorted[0], *sorted.last().expect("non-empty"));
    out[2] = squash(mean);
    out[3] = squash(var.sqrt());
    out[4] = squash(min);
    out[5] = squash(max);
    // 8-bin equi-width histogram sketch over [min, max].
    let span = (max - min).max(1e-9);
    let mut bins = [0usize; 8];
    for &v in values {
        let b = (((v - min) / span) * 8.0).min(7.0) as usize;
        bins[b] += 1;
    }
    for (i, &b) in bins.iter().enumerate() {
        out[6 + i] = b as f32 / n as f32;
    }
    out[14] = n as f32 / table_rows.max(1) as f32; // selectivity of the subset
}

fn squash(v: f64) -> f32 {
    let s = v.signum();
    (s * (v.abs() + 1.0).ln() / 20.0) as f32
}

/// Bucket a query's text to a cache key.
fn query_bucket(query_text: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in query_text.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSize;
    use qpseeker_storage::datagen::imdb;

    fn db() -> Database {
        imdb::generate(0.1, 3)
    }

    #[test]
    fn encoding_has_requested_dimension() {
        let db = db();
        let ts = TabSim::new(TabertConfig::paper_default());
        let mut cache = TabertCache::new();
        let enc = ts.encode_table(&mut cache, &db, "title", "select * from title");
        assert_eq!(enc.cls.len(), 64);
        for c in enc.columns.values() {
            assert_eq!(c.vector.len(), 64);
        }
        let large =
            TabSim::new(TabertConfig { size: ModelSize::Large, ..TabertConfig::paper_default() });
        assert_eq!(large.dim(), 96);
    }

    #[test]
    fn deterministic_per_seed() {
        let db = db();
        let a = TabSim::new(TabertConfig::paper_default());
        let b = TabSim::new(TabertConfig::paper_default());
        let ea = a.encode_table(&mut TabertCache::new(), &db, "title", "q");
        let eb = b.encode_table(&mut TabertCache::new(), &db, "title", "q");
        assert_eq!(ea.cls, eb.cls);

        let c = TabSim::new(TabertConfig { seed: 999, ..TabertConfig::paper_default() });
        let ec = c.encode_table(&mut TabertCache::new(), &db, "title", "q");
        assert_ne!(ea.cls, ec.cls);
    }

    #[test]
    fn different_tables_encode_differently() {
        let db = db();
        let ts = TabSim::new(TabertConfig::paper_default());
        let mut cache = TabertCache::new();
        let a = ts.encode_table(&mut cache, &db, "title", "q");
        let b = ts.encode_table(&mut cache, &db, "name", "q");
        assert_ne!(a.cls, b.cls);
    }

    #[test]
    fn columns_of_same_table_encode_differently() {
        let db = db();
        let ts = TabSim::new(TabertConfig::paper_default());
        let enc = ts.encode_table(&mut TabertCache::new(), &db, "title", "q");
        let id = &enc.columns["id"].vector;
        let year = &enc.columns["production_year"].vector;
        assert_ne!(id, year);
    }

    #[test]
    fn filtered_column_differs_from_unfiltered() {
        let db = db();
        let ts = TabSim::new(TabertConfig::paper_default());
        let all: Vec<u32> = (0..db.table("title").unwrap().n_rows() as u32).collect();
        let some: Vec<u32> = all.iter().take(10).cloned().collect();
        let a = ts.encode_column_filtered(&db, "title", "production_year", &all);
        let b = ts.encode_column_filtered(&db, "title", "production_year", &some);
        assert_ne!(a, b);
    }

    #[test]
    fn values_are_bounded() {
        let db = db();
        let ts = TabSim::new(TabertConfig::paper_default());
        let enc =
            ts.encode_table(&mut TabertCache::new(), &db, "cast_info", "select big join query");
        assert!(enc.cls.iter().all(|v| v.abs() <= 1.0));
        for c in enc.columns.values() {
            assert!(c.vector.iter().all(|v| v.abs() <= 1.0 && v.is_finite()));
        }
    }

    #[test]
    fn caching_hits_on_same_query_shape() {
        let db = db();
        let ts = TabSim::new(TabertConfig::paper_default());
        let mut cache = TabertCache::new();
        ts.encode_table(&mut cache, &db, "title", "same query");
        let after_first = ts.simulated_ms();
        ts.encode_table(&mut cache, &db, "title", "same query");
        assert_eq!(ts.simulated_ms(), after_first, "cache hit must not add latency");
        ts.encode_table(&mut cache, &db, "title", "different query");
        assert!(ts.simulated_ms() > after_first);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn k3_and_large_cost_more_simulated_time() {
        let db = db();
        let base = TabSim::new(TabertConfig { k: 1, size: ModelSize::Base, seed: 1 });
        let k3 = TabSim::new(TabertConfig { k: 3, size: ModelSize::Base, seed: 1 });
        let large = TabSim::new(TabertConfig { k: 1, size: ModelSize::Large, seed: 1 });
        base.encode_table(&mut TabertCache::new(), &db, "title", "q");
        k3.encode_table(&mut TabertCache::new(), &db, "title", "q");
        large.encode_table(&mut TabertCache::new(), &db, "title", "q");
        assert!(k3.simulated_ms() > base.simulated_ms(), "K=3 must cost more (row-wise attention)");
        assert!(large.simulated_ms() > base.simulated_ms(), "Large must cost more (3x params)");
    }

    #[test]
    fn snapshot_row_follows_query_overlap() {
        // A query mentioning a specific keyword should select a row whose
        // text overlaps it more than a random query does.
        let db = db();
        let t = db.table("keyword").unwrap();
        let target = match &t.col("keyword").data {
            ColumnData::Text { codes, dict } => dict[codes[5] as usize].clone(),
            _ => panic!("keyword is text"),
        };
        let ts = TabSim::new(TabertConfig::paper_default());
        let query = format!("keyword = '{target}'");
        let rows = ts.select_snapshot_rows(t, &query);
        assert_eq!(rows.len(), 1);
        let (chosen, chosen_score) = rows[0];
        // The chosen row must score at least as high as any other sampled
        // row (top-1 by overlap), and strictly above the table median.
        let qgrams = ngram::trigrams(&query);
        let row_text = |row: usize| -> String {
            t.columns.iter().map(|c| cell_text(&c.data, row)).collect::<Vec<_>>().join(" ")
        };
        let mut scores: Vec<f64> =
            (0..t.n_rows()).map(|r| ngram::overlap_score(&qgrams, &row_text(r))).collect();
        assert!((chosen_score - ngram::overlap_score(&qgrams, &row_text(chosen))).abs() < 1e-12);
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = scores[scores.len() / 2];
        assert!(chosen_score >= median, "chosen {chosen_score} vs median {median}");
    }
}
