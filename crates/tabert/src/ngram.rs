//! Character n-gram overlap, used to pick the content-snapshot rows
//! (TaBERT selects the top-K rows with the biggest n-gram overlap with the
//! query).

use std::collections::HashSet;

/// Character trigram set of a string (lowercased, whitespace-normalized).
pub fn trigrams(s: &str) -> HashSet<[u8; 3]> {
    let norm: Vec<u8> = s
        .bytes()
        .map(|b| if b.is_ascii_uppercase() { b + 32 } else { b })
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    let mut out = HashSet::new();
    if norm.len() >= 3 {
        for w in norm.windows(3) {
            out.insert([w[0], w[1], w[2]]);
        }
    } else if !norm.is_empty() {
        let mut g = [b' '; 3];
        for (i, &b) in norm.iter().enumerate() {
            g[i] = b;
        }
        out.insert(g);
    }
    out
}

/// Jaccard overlap between two trigram sets.
pub fn jaccard(a: &HashSet<[u8; 3]>, b: &HashSet<[u8; 3]>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union.max(1) as f64
}

/// Overlap score of `text` against a prepared query trigram set.
pub fn overlap_score(query_grams: &HashSet<[u8; 3]>, text: &str) -> f64 {
    jaccard(query_grams, &trigrams(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_full_overlap() {
        let a = trigrams("movie title here");
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_strings_have_zero_overlap() {
        let a = trigrams("aaaa");
        let b = trigrams("zzzz");
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_ordered_correctly() {
        let q = trigrams("select title production year 1995");
        let close = overlap_score(&q, "production year 1995");
        let far = overlap_score(&q, "company country code");
        assert!(close > far);
    }

    #[test]
    fn case_insensitive() {
        let a = trigrams("Title");
        let b = trigrams("title");
        assert!((jaccard(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_strings_still_produce_a_gram() {
        assert_eq!(trigrams("ab").len(), 1);
        assert!(trigrams("").is_empty());
    }
}
