//! `qpseeker-tabert` — **TabSim**, a deterministic pretrained-like tabular
//! encoder standing in for TaBERT.
//!
//! The paper uses TaBERT (Yin et al.) as a *frozen* feature extractor: for a
//! query and a table it selects the top-K rows by n-gram overlap with the
//! query, linearizes each column as `(name, datatype, value)` triplets,
//! runs BERT + vertical attention, and exposes per-column vectors plus a
//! `[CLS]` table vector. QPSeeker never fine-tunes it — it only needs a
//! fixed, information-rich map from (query, table data) to vectors.
//!
//! TabSim reproduces that contract without a 110M-parameter language model
//! (see DESIGN.md §5): it hashes the same triplet tokens into a feature
//! space, augments them with *distributional* column statistics (histogram
//! sketch, distinct ratio, moments — the information TaBERT's Masked Column
//! Prediction / Cell Value Recovery pretraining is designed to capture), and
//! projects through a frozen seeded random matrix (the "pretrained
//! weights"). Top-K row selection by character-trigram overlap and
//! overlap-weighted vertical pooling are implemented as in the paper.
//!
//! The `K ∈ {1,2,3}` and Base/Large variants exist with a calibrated
//! latency model so the Fig. 8 (right) experiment — accuracy flat, latency
//! strongly K/size dependent — is reproducible.

pub mod encoder;
pub mod latency;
pub mod ngram;

pub use encoder::{ColumnEncoding, TabSim, TabertCache, TableEncoding};
pub use latency::LatencyModel;

/// BERT instance size. Base and Large differ in embedding width and in the
/// simulated inference cost (Large ≈ 3× the parameters, as the paper notes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelSize {
    Base,
    Large,
}

/// TabSim configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TabertConfig {
    /// Number of content snapshot rows (the paper evaluates K = 1 and 3).
    pub k: usize,
    pub size: ModelSize,
    /// Seed of the frozen projection ("pretrained checkpoint id").
    pub seed: u64,
}

impl TabertConfig {
    /// The paper's default: K = 1, Base.
    pub fn paper_default() -> Self {
        Self { k: 1, size: ModelSize::Base, seed: 0x007a_b357 }
    }

    /// Output embedding width (scaled down from BERT's 768/1024).
    pub fn dim(&self) -> usize {
        match self.size {
            ModelSize::Base => 64,
            ModelSize::Large => 96,
        }
    }
}

impl Default for TabertConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}
