//! The tape-free inference fast path must be numerically interchangeable
//! with the reference tape forward, and crossbeam data-parallel training
//! must be bit-reproducible regardless of the shard count.

use proptest::prelude::*;
use qpseeker_core::prelude::*;
use qpseeker_engine::inject::LeftDeepSpec;
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::{ColRef, JoinPred, Query, RelRef};
use qpseeker_storage::datagen::imdb;
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::sync::OnceLock;

fn three_way() -> Query {
    let mut q = Query::new("fastpath-q");
    q.relations =
        vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
    q.joins = vec![
        JoinPred { left: ColRef::new("movie_info", "movie_id"), right: ColRef::new("title", "id") },
        JoinPred {
            left: ColRef::new("movie_keyword", "movie_id"),
            right: ColRef::new("title", "id"),
        },
    ];
    q
}

/// One fitted model shared by every proptest case (fitting is the
/// expensive part; prediction is what's under test).
fn shared_model() -> &'static QPSeeker {
    static MODEL: OnceLock<QPSeeker> = OnceLock::new();
    MODEL.get_or_init(|| {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 24, seed: 7 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut m = QPSeeker::new(&db, ModelConfig::small());
        m.fit(&refs).expect("training succeeds");
        m
    })
}

/// Left-deep join orders of the three-way query that stay connected
/// (title is the hub relation).
const ORDERS: [[&str; 3]; 4] = [
    ["title", "movie_info", "movie_keyword"],
    ["title", "movie_keyword", "movie_info"],
    ["movie_info", "title", "movie_keyword"],
    ["movie_keyword", "title", "movie_info"],
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every (join order, scan ops, join ops) combination predicts the same
    /// targets through the scratch-arena fast path as through the autodiff
    /// tape, within 1e-5 relative.
    #[test]
    fn fast_inference_matches_tape(
        order in 0usize..4,
        scan_ops in proptest::collection::vec(0usize..3, 3),
        join_ops in proptest::collection::vec(0usize..3, 2),
    ) {
        let model = shared_model();
        let q = three_way();
        let spec = LeftDeepSpec {
            scans: ORDERS[order]
                .iter()
                .zip(&scan_ops)
                .map(|(a, &s)| (a.to_string(), ScanOp::ALL[s]))
                .collect(),
            joins: join_ops.iter().map(|&j| JoinOp::ALL[j]).collect(),
        };
        let plan = spec.compile(&q).expect("connected left-deep order");
        let fast = model.predict(&q, &plan);
        let tape = model.predict_tape(&q, &plan);
        for (name, a, b) in [
            ("cardinality", fast.cardinality, tape.cardinality),
            ("cost", fast.cost, tape.cost),
            ("runtime_ms", fast.runtime_ms, tape.runtime_ms),
        ] {
            prop_assert!(
                (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                "{name}: fast {a} vs tape {b}"
            );
        }
    }
}

#[test]
fn fast_inference_matches_tape_on_single_scans() {
    let model = shared_model();
    let mut q = Query::new("fastpath-single");
    q.relations = vec![RelRef::new("title")];
    for op in ScanOp::ALL {
        let plan = PlanNode::scan(&q, "title", op);
        let fast = model.predict(&q, &plan);
        let tape = model.predict_tape(&q, &plan);
        assert!(
            (fast.runtime_ms - tape.runtime_ms).abs() <= 1e-5 * (1.0 + tape.runtime_ms.abs()),
            "scan {op:?}: fast {} vs tape {}",
            fast.runtime_ms,
            tape.runtime_ms
        );
    }
}

#[test]
fn parallel_training_is_bit_identical_across_shard_counts() {
    let db = std::sync::Arc::new(imdb::generate(0.05, 1));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 12, seed: 11 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let train = |threads: usize| {
        let mut cfg = ModelConfig::small();
        cfg.train_threads = threads;
        let mut m = QPSeeker::new(&db, cfg);
        m.fit(&refs).expect("training succeeds");
        m
    };
    let reference = train(1);
    for threads in 2..=4 {
        let sharded = train(threads);
        assert!(
            reference.store.values_bitwise_eq(&sharded.store),
            "train_threads={threads} diverged bitwise from the serial run"
        );
        // And the models they produce are observably identical.
        let q = three_way();
        let plan = LeftDeepSpec {
            scans: vec![
                ("title".into(), ScanOp::SeqScan),
                ("movie_info".into(), ScanOp::IndexScan),
                ("movie_keyword".into(), ScanOp::SeqScan),
            ],
            joins: vec![JoinOp::HashJoin, JoinOp::MergeJoin],
        }
        .compile(&q)
        .expect("valid plan");
        assert_eq!(reference.predict(&q, &plan).runtime_ms, sharded.predict(&q, &plan).runtime_ms);
    }
}
