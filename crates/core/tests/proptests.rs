//! Property tests for QPSeeker's metrics, normalization, and MCTS action
//! machinery.

use proptest::prelude::*;
use qpseeker_core::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Q-error is symmetric, ≥ 1, and multiplicative errors stack.
    #[test]
    fn q_error_properties(p in 0.0f64..1e12, t in 0.0f64..1e12, k in 1.0f64..100.0) {
        prop_assert!(q_error(p, t) >= 1.0);
        prop_assert!((q_error(p, t) - q_error(t, p)).abs() < 1e-9);
        // Scaling the prediction by k (away from truth) can only worsen it
        // when already overestimating.
        let p1 = t.max(1.0) * k;
        prop_assert!(q_error(p1 * 2.0, t) >= q_error(p1, t) - 1e-9);
    }

    /// Normalizer round-trips any positive target within 1%.
    #[test]
    fn normalizer_round_trip(
        targets in proptest::collection::vec(
            (0.0f64..1e9, 0.0f64..1e7, 0.0f64..1e6), 2..50),
        probe in (1.0f64..1e8, 1.0f64..1e6, 1.0f64..1e5),
    ) {
        let raw: Vec<[f64; 3]> = targets.iter().map(|&(a, b, c)| [a, b, c]).collect();
        let n = TargetNormalizer::fit(&raw);
        let x = [probe.0, probe.1, probe.2];
        let enc = n.encode(x);
        prop_assert!(enc.iter().all(|v| v.is_finite() && v.abs() <= 10.0));
        let dec = n.decode(enc);
        for i in 0..3 {
            // Values inside the clamp range round-trip tightly.
            if enc[i].abs() < 10.0 {
                prop_assert!(
                    (dec[i] - x[i]).abs() < 0.02 * (1.0 + x[i]),
                    "target {i}: {} vs {}", dec[i], x[i]
                );
            }
        }
    }

    /// Q-error summaries have ordered percentiles on arbitrary samples.
    #[test]
    fn summary_percentiles_ordered(
        pairs in proptest::collection::vec((0.1f64..1e9, 0.1f64..1e9), 1..200)
    ) {
        let s = QErrorSummary::from_pairs(&pairs);
        prop_assert!(s.p50 >= 1.0);
        prop_assert!(s.p50 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert_eq!(s.count, pairs.len());
    }

    /// Silhouette is bounded to [-1, 1] on arbitrary labeled data.
    #[test]
    fn silhouette_bounded(
        points in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 4), 4..40),
        label_mod in 2usize..4,
    ) {
        let labels: Vec<usize> = (0..points.len()).map(|i| i % label_mod).collect();
        let s = silhouette(&points, &labels);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {}", s);
    }
}
