//! Minimal FNV-1a `BuildHasher` for the planner's hot-loop hash maps.
//!
//! The MCTS evaluation cache and the per-query featurization caches are
//! hit on every rollout with short keys (packed action vectors, alias
//! bitmasks, `(bit, op)` pairs). SipHash's per-key setup cost dominates at
//! those lengths, and none of these keys are attacker-controlled — they are
//! derived from the query the caller already chose to plan — so the DoS
//! resistance the default hasher buys is not needed here.

/// Streaming FNV-1a state.
pub(crate) struct FnvState(u64);

impl std::hash::Hasher for FnvState {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
}

/// `BuildHasher` handing out [`FnvState`]s with the standard offset basis.
#[derive(Default, Clone)]
pub(crate) struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvState;

    fn build_hasher(&self) -> FnvState {
        FnvState(0xcbf29ce484222325)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn matches_reference_fnv1a() {
        // FNV-1a of "a" is a published test vector.
        assert_ne!(FnvBuild.hash_one(b"a".as_slice()), 0);
        let mut h = FnvBuild.build_hasher();
        std::hash::Hasher::write(&mut h, b"a");
        assert_eq!(std::hash::Hasher::finish(&h), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        let keys: Vec<Vec<u64>> = (0..64u64).map(|i| vec![i, i * 3]).collect();
        let hashes: std::collections::HashSet<u64> =
            keys.iter().map(|k| FnvBuild.hash_one(k)).collect();
        assert_eq!(hashes.len(), keys.len());
    }
}
