//! Multi-tenant serving with fault containment — the tenant bulkheads.
//!
//! One process serves many tenants (databases), each with its own model in
//! the [`crate::registry::ModelRegistry`]. The [`MultiTenantSupervisor`]
//! gives every tenant a **lane**: a private bounded admission queue,
//! deadline shedding, retry/backoff budget, circuit breaker and counters —
//! one [`Supervisor`] per tenant, so every stream-level mechanism from the
//! single-tenant path applies per tenant unchanged.
//!
//! # Weighted-fair admission, deterministically
//!
//! Capacity is shared by the fluid (GPS) limit of weighted fair queueing:
//! a tenant with weight `w` owns a virtual server of rate `w`, i.e. its
//! effective per-query service time is `base.service_ms / w` on its own
//! admission clock. Two properties follow by construction:
//!
//! * **fairness** — over any interval, admitted throughput per tenant is
//!   proportional to its weight (a weight-2 tenant's clock advances twice
//!   as fast, so it absorbs twice the arrival rate before shedding);
//! * **isolation / determinism** — a lane's admit/shed decisions are a pure
//!   function of *its own* arrival sequence and the virtual clock. No other
//!   tenant's queue depth, faults, breaker state or even existence enters
//!   the decision, which is exactly the bulkhead property: chaos aimed at
//!   tenant A cannot change a single disposition, plan or counter of
//!   tenant B. The chaos suite asserts this bitwise.
//!
//! # Fault containment
//!
//! Faults ([`FaultConfig`]) are configured per lane, so NaN poisoning,
//! inference panics or stalls aimed at one tenant trip only that tenant's
//! breaker; the other lanes keep their neural path. Models are read through
//! each tenant's [`crate::registry::ModelCell`], so online promotions,
//! rollbacks and registry evictions stay per-tenant too. A tenant whose
//! model is not resident (evicted and not yet reloaded) degrades to
//! classical planning on its own database — never to an error.
//!
//! # Plan cache
//!
//! When a shared [`PlanCache`] is attached, each lane serves through it
//! scoped to `(tenant, stats_version)`; epoch stamping (see
//! [`crate::plancache`]) guarantees a hit was planned under exactly the
//! model epoch the request resolved.

use crate::evalbroker::{BrokerStats, EvalBroker};
use crate::metrics::ServeCounters;
use crate::plancache::{PlanCache, PlanCacheCtx};
use crate::registry::ModelRegistry;
use crate::search::strategy::StrategyConfig;
use crate::serve::{
    BreakerState, Disposition, QueryRequest, SupervisedOutcome, Supervisor, SupervisorConfig,
};
use qpseeker_storage::{Database, FaultConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Static description of one tenant's lane.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant identity (registry key, cache scope, metrics label).
    pub id: String,
    /// The tenant's database — always available for classical planning,
    /// even while the tenant's model is evicted.
    pub db: Arc<Database>,
    /// Service-rate weight (floored at 1e-3). The lane's effective
    /// per-query service time is `base.service_ms / weight`.
    pub weight: f64,
    /// Override of the base admission-queue depth.
    pub queue_capacity: Option<usize>,
    /// Override of the base per-query retry budget.
    pub max_retries: Option<usize>,
    /// Faults injected into this lane only (chaos: aim at one tenant).
    pub faults: Option<FaultConfig>,
    /// Override of the base search strategy: kind, risk λ, sample count,
    /// beam width. A latency-SLO tenant can run risk-averse (λ > 0) while
    /// its neighbors stay on the default mean-only planner; the per-tenant
    /// stamp keeps their plan-cache entries disjoint.
    pub strategy: Option<StrategyConfig>,
}

impl TenantSpec {
    pub fn new(id: impl Into<String>, db: Arc<Database>) -> Self {
        Self {
            id: id.into(),
            db,
            weight: 1.0,
            queue_capacity: None,
            max_retries: None,
            faults: None,
            strategy: None,
        }
    }

    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    pub fn with_strategy(mut self, strategy: StrategyConfig) -> Self {
        self.strategy = Some(strategy);
        self
    }
}

/// Multi-tenant serving configuration.
#[derive(Debug, Clone, Default)]
pub struct MultiTenantConfig {
    /// Template for every lane: queue depth, breaker knobs, `service_ms`
    /// (scaled per tenant by weight), worker count, per-query serving
    /// settings. Per-lane overrides come from [`TenantSpec`].
    pub base: SupervisorConfig,
    /// Shared fingerprint plan cache; `None` disables caching.
    pub cache: Option<Arc<PlanCache>>,
}

/// One query of a mixed-tenant stream.
#[derive(Debug, Clone)]
pub struct TenantRequest {
    pub tenant: String,
    pub req: QueryRequest,
}

/// One request's outcome, tagged with its tenant.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    pub tenant: String,
    pub outcome: SupervisedOutcome,
}

struct Lane {
    spec: TenantSpec,
    sup: Supervisor,
}

fn lane_config(base: &SupervisorConfig, spec: &TenantSpec) -> SupervisorConfig {
    let mut cfg = base.clone();
    cfg.service_ms = base.service_ms / spec.weight.max(1e-3);
    if let Some(q) = spec.queue_capacity {
        cfg.queue_capacity = q;
    }
    if let Some(r) = spec.max_retries {
        cfg.serve.max_retries = r;
    }
    cfg.serve.faults = spec.faults.clone();
    if let Some(s) = &spec.strategy {
        cfg.serve.strategy = s.clone();
    }
    // The cache context is installed per run (it carries the tenant's
    // current stats version).
    cfg.cache = None;
    cfg
}

/// Per-tenant lanes over a shared model registry (see module docs).
///
/// Lane state — breaker, counters, virtual clock — persists across
/// [`MultiTenantSupervisor::run`] calls, exactly like the single-tenant
/// supervisor's.
pub struct MultiTenantSupervisor {
    cfg: MultiTenantConfig,
    lanes: BTreeMap<String, Lane>,
    /// Accumulated stats of the cross-lane eval broker (zero when
    /// `cfg.base.broker` is off). The broker is shared by every lane, so
    /// its occupancy accounting belongs to the supervisor, not any lane.
    broker_stats: BrokerStats,
}

impl MultiTenantSupervisor {
    pub fn new(cfg: MultiTenantConfig, specs: Vec<TenantSpec>) -> Self {
        let lanes = specs
            .into_iter()
            .map(|spec| {
                let sup = Supervisor::new(lane_config(&cfg.base, &spec));
                (spec.id.clone(), Lane { spec, sup })
            })
            .collect();
        Self { cfg, lanes, broker_stats: BrokerStats::default() }
    }

    /// Registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.lanes.keys().cloned().collect()
    }

    /// Swap one lane's fault injection between batches (chaos tests).
    /// Returns false when the tenant has no lane.
    pub fn set_tenant_faults(&mut self, tenant: &str, faults: Option<FaultConfig>) -> bool {
        match self.lanes.get_mut(tenant) {
            Some(lane) => {
                lane.spec.faults = faults.clone();
                lane.sup.set_faults(faults);
                true
            }
            None => false,
        }
    }

    /// Current breaker state per tenant.
    pub fn breaker_states(&self) -> BTreeMap<String, BreakerState> {
        self.lanes.iter().map(|(t, l)| (t.clone(), l.sup.breaker_state())).collect()
    }

    /// Per-tenant counters (each lane's own sharded tally).
    pub fn counters(&self) -> BTreeMap<String, ServeCounters> {
        self.lanes.iter().map(|(t, l)| (t.clone(), l.sup.counters())).collect()
    }

    /// All lanes merged into one total. Conservation holds per tenant and
    /// here: merged admitted = merged neural + classical + failed.
    pub fn merged_counters(&self) -> ServeCounters {
        let mut total = ServeCounters::default();
        for lane in self.lanes.values() {
            total.merge(&lane.sup.counters());
        }
        // The shared broker's fused-batch accounting lands in the merged
        // totals only — no single lane owns a cross-tenant forward pass.
        self.broker_stats.add_to(&mut total);
        total
    }

    /// The stream's makespan: the latest instant any lane's admitted work
    /// completes on its weighted virtual clock.
    pub fn virtual_now_ms(&self) -> f64 {
        self.lanes.values().map(|l| l.sup.virtual_now_ms()).fold(0.0, f64::max)
    }

    /// Serve a mixed-tenant batch ordered by arrival time. Each tenant's
    /// requests run through its own lane against the model currently
    /// resident in `registry` (classical-on-own-database when evicted);
    /// outcomes come back in input order. Requests naming a tenant with no
    /// lane are failed with a recorded message — an operator error, not a
    /// planning outcome, so it never touches any lane's counters.
    ///
    /// Without a broker (`base.broker = None`) lanes run sequentially in
    /// tenant order. With one, every lane with requests this batch runs on
    /// its own thread and all of their workers score through one shared
    /// [`EvalBroker`], fusing candidate evaluation *across tenants* —
    /// per-lane dispositions, plans and counters are bitwise identical
    /// either way (admission is a pure function of each lane's own clock;
    /// fused scoring matches per-session scoring row for row).
    pub fn run(
        &mut self,
        registry: &ModelRegistry,
        stream: &[TenantRequest],
    ) -> Vec<TenantOutcome> {
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, tr) in stream.iter().enumerate() {
            groups.entry(tr.tenant.as_str()).or_default().push(i);
        }

        let mut out: Vec<Option<TenantOutcome>> = stream.iter().map(|_| None).collect();
        // Unknown tenants fail up front in both modes.
        groups.retain(|tenant, idxs| {
            if self.lanes.contains_key(*tenant) {
                return true;
            }
            for &i in idxs.iter() {
                out[i] = Some(TenantOutcome {
                    tenant: tenant.to_string(),
                    outcome: SupervisedOutcome {
                        query_id: stream[i].req.query.id.clone(),
                        disposition: Disposition::Failed(format!("unknown tenant '{tenant}'")),
                    },
                });
            }
            false
        });

        if self.cfg.base.broker.is_some() {
            self.run_brokered(registry, stream, &groups, &mut out);
        } else {
            for (tenant, idxs) in &groups {
                let lane = self.lanes.get_mut(*tenant).expect("retained tenants have lanes");
                let reqs: Vec<QueryRequest> = idxs.iter().map(|&i| stream[i].req.clone()).collect();
                let handle = registry.get(tenant);
                let cache_ctx = match (&self.cfg.cache, &handle) {
                    (Some(cache), Some(h)) => Some(PlanCacheCtx {
                        cache: Arc::clone(cache),
                        tenant: tenant.to_string(),
                        stats_version: h.stats_version,
                    }),
                    _ => None,
                };
                lane.sup.set_cache(cache_ctx);
                let outcomes = match &handle {
                    Some(h) => lane.sup.run_with_cell(&h.db, &h.cell, &reqs),
                    None => lane.sup.run(&lane.spec.db, None, &reqs),
                };
                for (&i, outcome) in idxs.iter().zip(outcomes) {
                    out[i] = Some(TenantOutcome { tenant: tenant.to_string(), outcome });
                }
            }
        }
        out.into_iter().map(|o| o.expect("every request received a disposition")).collect()
    }

    /// The broker-mode lane scheduler: registers every participating
    /// lane's workers on one shared [`EvalBroker`] *before any lane thread
    /// starts* (membership must be complete up front — round accounting is
    /// only schedule-independent over a static member set), then runs the
    /// lanes concurrently and drains the broker's stats once they join.
    fn run_brokered(
        &mut self,
        registry: &ModelRegistry,
        stream: &[TenantRequest],
        groups: &BTreeMap<&str, Vec<usize>>,
        out: &mut [Option<TenantOutcome>],
    ) {
        let bc = self.cfg.base.broker.expect("caller checked broker mode");
        let workers_per_lane = self.cfg.base.workers.max(1);
        let broker = EvalBroker::new(bc);
        // Resolve registry handles, install cache contexts and register
        // seats in lane (BTreeMap) order — the deterministic member-id
        // assignment the flush policy's tiebreaks key on. Lanes with no
        // requests this batch register nothing, so they never hold up a
        // round.
        let mut work = Vec::new();
        for (tenant, lane) in self.lanes.iter_mut() {
            let Some(idxs) = groups.get(tenant.as_str()) else { continue };
            let reqs: Vec<QueryRequest> = idxs.iter().map(|&i| stream[i].req.clone()).collect();
            let handle = registry.get(tenant);
            let cache_ctx = match (&self.cfg.cache, &handle) {
                (Some(cache), Some(h)) => Some(PlanCacheCtx {
                    cache: Arc::clone(cache),
                    tenant: tenant.clone(),
                    stats_version: h.stats_version,
                }),
                _ => None,
            };
            lane.sup.set_cache(cache_ctx);
            let seats = broker.register_members(workers_per_lane);
            work.push((tenant.clone(), lane, reqs, handle, idxs, seats));
        }

        let results: Vec<(String, &Vec<usize>, Vec<SupervisedOutcome>)> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(tenant, lane, reqs, handle, idxs, seats)| {
                    s.spawn(move || {
                        let outcomes = match &handle {
                            Some(h) => lane.sup.run_with_cell_seated(&h.db, &h.cell, &reqs, seats),
                            None => lane.sup.run_seated(&lane.spec.db, None, &reqs, seats),
                        };
                        (tenant, idxs, outcomes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lane exited through its per-request boundaries"))
                .collect()
        });
        for (tenant, idxs, outcomes) in results {
            for (&i, outcome) in idxs.iter().zip(outcomes) {
                out[i] = Some(TenantOutcome { tenant: tenant.clone(), outcome });
            }
        }
        self.broker_stats.merge(&broker.take_stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::query::Query;
    use qpseeker_workloads::{synthetic, SyntheticConfig};

    fn db_and_queries() -> (Arc<Database>, Vec<Query>) {
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let w = synthetic::generate_queries(&db, &SyntheticConfig { n_queries: 8, seed: 7 });
        (db, w.into_iter().map(|(q, _)| q).collect())
    }

    fn req(tenant: &str, q: &Query, arrival: f64, deadline: f64) -> TenantRequest {
        TenantRequest {
            tenant: tenant.to_string(),
            req: QueryRequest { query: q.clone(), arrival_ms: arrival, deadline_ms: deadline },
        }
    }

    #[test]
    fn lanes_are_independent_and_outcomes_keep_input_order() {
        let (db, queries) = db_and_queries();
        let registry = ModelRegistry::new(usize::MAX);
        let base = SupervisorConfig { queue_capacity: 1, service_ms: 10.0, ..Default::default() };
        let mut sup = MultiTenantSupervisor::new(
            MultiTenantConfig { base, cache: None },
            vec![TenantSpec::new("a", Arc::clone(&db)), TenantSpec::new("b", Arc::clone(&db))],
        );
        // Two simultaneous arrivals per tenant at capacity 1: the second of
        // each is shed — but tenant b's overload never touches tenant a.
        let stream = vec![
            req("a", &queries[0], 0.0, 1e9),
            req("b", &queries[1], 0.0, 1e9),
            req("b", &queries[2], 1.0, 1e9),
            req("a", &queries[3], 20.0, 1e9),
        ];
        let outcomes = sup.run(&registry, &stream);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].tenant, "a");
        assert!(matches!(outcomes[0].outcome.disposition, Disposition::Served(_)));
        assert!(matches!(outcomes[1].outcome.disposition, Disposition::Served(_)));
        assert!(
            matches!(outcomes[2].outcome.disposition, Disposition::Shed(_)),
            "b's second simultaneous arrival sheds at queue capacity 1"
        );
        assert!(
            matches!(outcomes[3].outcome.disposition, Disposition::Served(_)),
            "a's lane had drained; b's congestion is invisible to it"
        );
        let per = sup.counters();
        for (tenant, c) in &per {
            assert!(c.conservation_holds(), "conservation for tenant {tenant}: {c}");
        }
        assert_eq!(per["a"].admitted, 2);
        assert_eq!(per["b"].admitted, 1);
        assert_eq!(per["b"].shed_queue_full, 1);
        let merged = sup.merged_counters();
        assert!(merged.conservation_holds());
        assert_eq!(merged.total_seen(), 4);
    }

    #[test]
    fn weight_scales_the_admission_rate() {
        let (db, queries) = db_and_queries();
        let registry = ModelRegistry::new(usize::MAX);
        let base = SupervisorConfig { queue_capacity: 1, service_ms: 10.0, ..Default::default() };
        let mut sup = MultiTenantSupervisor::new(
            MultiTenantConfig { base, cache: None },
            vec![
                TenantSpec::new("slow", Arc::clone(&db)).with_weight(1.0),
                TenantSpec::new("fast", Arc::clone(&db)).with_weight(2.0),
            ],
        );
        // Identical arrival patterns: every 6 ms. At service 10 ms the
        // weight-1 lane sheds every other arrival; at effective 5 ms the
        // weight-2 lane admits them all.
        let mut stream = Vec::new();
        for i in 0..6 {
            let t = i as f64 * 6.0;
            stream.push(req("slow", &queries[i % queries.len()], t, 1e9));
            stream.push(req("fast", &queries[i % queries.len()], t, 1e9));
        }
        stream.sort_by(|x, y| x.req.arrival_ms.total_cmp(&y.req.arrival_ms));
        sup.run(&registry, &stream);
        let per = sup.counters();
        assert_eq!(per["fast"].admitted, 6, "weight-2 lane absorbs the full rate");
        assert!(per["slow"].shed_queue_full > 0, "weight-1 lane sheds under the same arrival rate");
        for c in per.values() {
            assert!(c.conservation_holds());
        }
    }

    #[test]
    fn unknown_tenant_fails_cleanly_without_touching_lane_counters() {
        let (db, queries) = db_and_queries();
        let registry = ModelRegistry::new(usize::MAX);
        let mut sup = MultiTenantSupervisor::new(
            MultiTenantConfig::default(),
            vec![TenantSpec::new("a", Arc::clone(&db))],
        );
        let stream = vec![req("ghost", &queries[0], 0.0, 1e9), req("a", &queries[1], 0.0, 1e9)];
        let outcomes = sup.run(&registry, &stream);
        match &outcomes[0].outcome.disposition {
            Disposition::Failed(msg) => assert!(msg.contains("unknown tenant")),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(matches!(outcomes[1].outcome.disposition, Disposition::Served(_)));
        let merged = sup.merged_counters();
        assert_eq!(merged.total_seen(), 1, "the ghost request never entered a lane");
        assert!(merged.conservation_holds());
    }
}
