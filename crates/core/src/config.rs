//! QPSeeker model configuration.

use qpseeker_tabert::TabertConfig;
use serde::Serialize;

/// Hyperparameters of the full QPSeeker model (paper §6.2).
///
/// `Deserialize` is written by hand (instead of derived) so the knobs added
/// after the first release — `train_threads`, `fast_inference` — fall back
/// to their defaults when absent, keeping older checkpoints loadable.
#[derive(Debug, Clone, Serialize)]
pub struct ModelConfig {
    /// Hidden width of the relation/join set MLPs (paper: 256).
    pub set_mlp_hidden: usize,
    /// Output width of each set MLP (paper: 256 ⇒ 512-d query embedding).
    pub set_mlp_out: usize,
    /// Number of hidden layers in each set MLP (paper: 5).
    pub set_mlp_layers: usize,
    /// Plan-node output width, incl. the 3 estimate dims (paper: 950).
    pub plan_node_out: usize,
    /// Cross-attention heads (paper: 4).
    pub attn_heads: usize,
    /// Per-head latent width (paper: 256).
    pub attn_head_dim: usize,
    /// VAE latent features (paper: 32).
    pub vae_latent: usize,
    /// VAE encoder hidden layers, each halving the width (paper: 5).
    pub vae_layers: usize,
    /// β of the KL term (paper sweeps {100, 200, 300}).
    pub beta: f64,
    /// Weight of the auxiliary per-node estimate loss (0 disables; not in
    /// the paper's loss but exposed for the ablation benches).
    pub node_loss_weight: f64,
    /// QPAttention on/off (off = plain concatenation everywhere; ablation).
    pub use_attention: bool,
    pub learning_rate: f64,
    pub batch_size: usize,
    pub epochs: usize,
    pub seed: u64,
    pub tabert: TabertConfig,
    /// Worker threads for data-parallel training (1 = serial). Gradients are
    /// merged in sample order, so every value yields bit-identical parameters
    /// under a fixed seed. Defaults to 1 for checkpoints predating the knob.
    pub train_threads: usize,
    /// Tape-free inference with per-query encoding caches (the MCTS fast
    /// path). Off falls back to the autodiff-tape reference forward.
    pub fast_inference: bool,
}

impl serde::Deserialize for ModelConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj =
            v.as_obj().ok_or_else(|| serde::Error::type_mismatch("ModelConfig", "object", v))?;
        fn req<T: serde::Deserialize>(
            obj: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            T::from_value(serde::obj_field(obj, name)).map_err(|e| e.in_field("ModelConfig", name))
        }
        fn opt<T: serde::Deserialize>(
            obj: &[(String, serde::Value)],
            name: &str,
            default: T,
        ) -> Result<T, serde::Error> {
            match serde::obj_field(obj, name) {
                serde::Value::Null => Ok(default),
                v => T::from_value(v).map_err(|e| e.in_field("ModelConfig", name)),
            }
        }
        Ok(ModelConfig {
            set_mlp_hidden: req(obj, "set_mlp_hidden")?,
            set_mlp_out: req(obj, "set_mlp_out")?,
            set_mlp_layers: req(obj, "set_mlp_layers")?,
            plan_node_out: req(obj, "plan_node_out")?,
            attn_heads: req(obj, "attn_heads")?,
            attn_head_dim: req(obj, "attn_head_dim")?,
            vae_latent: req(obj, "vae_latent")?,
            vae_layers: req(obj, "vae_layers")?,
            beta: req(obj, "beta")?,
            node_loss_weight: req(obj, "node_loss_weight")?,
            use_attention: req(obj, "use_attention")?,
            learning_rate: req(obj, "learning_rate")?,
            batch_size: req(obj, "batch_size")?,
            epochs: req(obj, "epochs")?,
            seed: req(obj, "seed")?,
            tabert: req(obj, "tabert")?,
            train_threads: opt(obj, "train_threads", 1)?,
            fast_inference: opt(obj, "fast_inference", true)?,
        })
    }
}

impl ModelConfig {
    /// The paper's configuration (~10.8M parameters with the IMDb schema).
    pub fn paper() -> Self {
        Self {
            set_mlp_hidden: 256,
            set_mlp_out: 256,
            set_mlp_layers: 5,
            plan_node_out: 950,
            attn_heads: 4,
            attn_head_dim: 256,
            vae_latent: 32,
            vae_layers: 5,
            beta: 100.0,
            node_loss_weight: 0.5,
            use_attention: true,
            learning_rate: 1e-3,
            batch_size: 16,
            epochs: 10,
            seed: 0x9b5,
            tabert: TabertConfig::paper_default(),
            train_threads: 1,
            fast_inference: true,
        }
    }

    /// Scaled-down configuration for the experiment harness: same
    /// architecture, ~100× fewer parameters, minutes instead of hours.
    pub fn bench() -> Self {
        Self {
            set_mlp_hidden: 64,
            set_mlp_out: 64,
            set_mlp_layers: 2,
            plan_node_out: 96,
            attn_heads: 4,
            attn_head_dim: 32,
            vae_latent: 32,
            vae_layers: 3,
            beta: 100.0,
            node_loss_weight: 0.5,
            use_attention: true,
            learning_rate: 1e-3,
            batch_size: 16,
            epochs: 12,
            seed: 0x9b5,
            tabert: TabertConfig::paper_default(),
            train_threads: 1,
            fast_inference: true,
        }
    }

    /// Tiny configuration for unit tests/CI.
    pub fn small() -> Self {
        Self {
            set_mlp_hidden: 16,
            set_mlp_out: 16,
            set_mlp_layers: 1,
            plan_node_out: 32,
            attn_heads: 2,
            attn_head_dim: 8,
            vae_latent: 16,
            vae_layers: 2,
            beta: 100.0,
            node_loss_weight: 0.5,
            use_attention: true,
            learning_rate: 2e-3,
            batch_size: 8,
            epochs: 6,
            seed: 0x9b5,
            tabert: TabertConfig::paper_default(),
            train_threads: 1,
            fast_inference: true,
        }
    }

    /// FNV-64 over the canonical serialization of every knob. Training
    /// snapshots record it so a `--resume` with a different configuration is
    /// rejected (a resumed run must replay the exact epoch plan).
    pub fn fingerprint(&self) -> u64 {
        crate::durable::fnv64(&serde_json::to_string(self).unwrap_or_default())
    }

    /// Query embedding width (both set encodings concatenated).
    pub fn query_dim(&self) -> usize {
        2 * self.set_mlp_out
    }

    /// Width of the "data vector" part of a plan-node output (everything
    /// except the 3 estimate dims).
    pub fn data_vec_dim(&self) -> usize {
        assert!(self.plan_node_out > 3, "plan_node_out must exceed the 3 estimate dims");
        self.plan_node_out - 3
    }

    /// Joint embedding width after QPAttention (query ‖ plan).
    pub fn joint_dim(&self) -> usize {
        self.query_dim() + self.plan_node_out
    }

    /// Plan-node LSTM input width for a schema with `n_tables` relations:
    /// `[child data | relation one-hots | TaBERT | op one-hot | estimates]`.
    pub fn node_input_dim(&self, n_tables: usize) -> usize {
        self.data_vec_dim()
            + n_tables
            + self.tabert.dim()
            + qpseeker_engine::plan::PhysicalOp::COUNT
            + 3
    }

    /// The VAE encoder's layer widths: joint_dim halved `vae_layers` times
    /// down to `2 * latent` (mu ‖ logvar).
    pub fn vae_encoder_dims(&self) -> Vec<usize> {
        let mut dims = vec![self.joint_dim()];
        let mut w = self.joint_dim();
        for _ in 0..self.vae_layers {
            w = (w / 2).max(2 * self.vae_latent);
            dims.push(w);
        }
        dims.push(2 * self.vae_latent);
        dims
    }

    /// The VAE decoder mirrors the encoder back up to joint_dim.
    pub fn vae_decoder_dims(&self) -> Vec<usize> {
        let mut enc = self.vae_encoder_dims();
        enc.pop(); // drop the 2*latent head
        enc.reverse();
        let mut dims = vec![self.vae_latent];
        dims.extend(enc);
        dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_reported_sizes() {
        let c = ModelConfig::paper();
        assert_eq!(c.query_dim(), 512);
        assert_eq!(c.plan_node_out, 950);
        assert_eq!(c.attn_heads, 4);
        assert_eq!(c.vae_latent, 32);
        assert_eq!(c.joint_dim(), 1462);
    }

    #[test]
    fn vae_dims_halve_then_mirror() {
        let c = ModelConfig::small();
        let enc = c.vae_encoder_dims();
        let dec = c.vae_decoder_dims();
        assert_eq!(*enc.first().unwrap(), c.joint_dim());
        assert_eq!(*enc.last().unwrap(), 2 * c.vae_latent);
        assert_eq!(*dec.first().unwrap(), c.vae_latent);
        assert_eq!(*dec.last().unwrap(), c.joint_dim());
        for w in enc.windows(2).take(enc.len() - 2) {
            assert!(w[1] <= w[0], "encoder widths must shrink: {enc:?}");
        }
    }

    #[test]
    fn node_input_dim_composition() {
        let c = ModelConfig::small();
        let d = c.node_input_dim(16);
        assert_eq!(d, (32 - 3) + 16 + 64 + 6 + 3);
    }

    #[test]
    fn paper_parameter_count_is_about_ten_million() {
        // Rough structural count of the dominant matrices; the paper quotes
        // 10.8M total. LSTM: in≈1040, hidden 950 ⇒ (1040+950)·4·950 ≈ 7.6M;
        // set MLPs ≈ 0.7M; attention ≈ 4·(512+950+950)·256 + out ≈ 2.5M…
        let c = ModelConfig::paper();
        let n_tables = 16usize;
        let lstm = (c.node_input_dim(n_tables) + c.plan_node_out) * 4 * c.plan_node_out;
        assert!(lstm > 5_000_000 && lstm < 9_000_000, "lstm params {lstm}");
    }
}
