//! The online adaptation loop: plan → execute → observe → retrain →
//! gate → hot-swap, with automatic rollback.
//!
//! [`OnlinePlanner`] wires the pieces together around the supervised
//! serving loop:
//!
//! 1. every served plan is **executed** and the observation appended to the
//!    durable [`ExperienceWal`] (crash at any point recovers the exact
//!    acknowledged prefix);
//! 2. once enough new experience accumulates, a **fine-tune round** clones
//!    the serving model (checkpoint capture/restore) and trains it on the
//!    drained records through `fit_resumable` — the round journals every
//!    epoch, so a kill mid-round resumes bitwise-identically;
//! 3. the candidate faces the **promotion gate**: non-finite parameters are
//!    an automatic reject, and its plan-cost prediction error on a held-out
//!    slice of the freshest experience must be no worse than the serving
//!    model's (within a small tolerance). Rejected candidates never touch
//!    traffic;
//! 4. a promoted candidate is persisted durably, then **published** through
//!    the [`ModelCell`] — in-flight requests finish on the model they
//!    started with, worker sessions reset on the epoch change;
//! 5. the [`RegressionMonitor`] watches observed runtimes after the swap
//!    and **rolls back** to the resident previous model if they regress
//!    beyond the configured factor.
//!
//! Everything runs on the supervisor's deterministic virtual clock, so the
//! whole loop — including drift recovery — is exactly reproducible in tests.

use crate::checkpoint::Checkpoint;
use crate::durable::SnapshotStore;
use crate::error::CoreError;
use crate::experience::{ExperienceDisposition, ExperienceRecord, ExperienceWal};
use crate::metrics::{q_error, OnlineCounters};
use crate::model::QPSeeker;
use crate::registry::{ModelCell, RegressionMonitor, SwapVerdict};
use crate::serve::{
    Disposition, QueryRequest, ServedBy, SupervisedOutcome, Supervisor, SupervisorConfig,
};
use qpseeker_engine::executor::Executor;
use qpseeker_storage::{Database, FaultConfig, FaultInjector};
use qpseeker_workloads::Qep;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// Online-loop configuration on top of the supervisor's serving knobs.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Stream-level serving configuration (queue, breaker, workers, ...).
    pub supervisor: SupervisorConfig,
    /// Directory holding the WAL, fine-tune journals, promoted checkpoints
    /// and trainer state. Everything needed to resume after a kill.
    pub state_dir: PathBuf,
    /// New experience records that trigger a fine-tune round.
    pub retrain_every: usize,
    /// Freshest records of each round held out for the promotion gate
    /// (never trained on).
    pub holdout: usize,
    /// Epochs per fine-tune round.
    pub fine_tune_epochs: usize,
    /// The candidate's held-out error may exceed the serving model's by at
    /// most this fraction.
    pub gate_tolerance: f64,
    /// Rolling baseline window for the regression monitor.
    pub rollback_window: usize,
    /// Post-swap observations required before a verdict.
    pub rollback_min_samples: usize,
    /// Post/pre mean observed-runtime ratio that triggers rollback.
    pub rollback_threshold: f64,
    /// Experience records per WAL segment.
    pub segment_records: usize,
    /// Promoted checkpoints retained on disk.
    pub keep_promoted: usize,
    /// Deterministic faults armed on the durable paths (WAL appends,
    /// journals, promoted checkpoints) and the fine-tune poison hook.
    pub faults: Option<FaultConfig>,
}

impl OnlineConfig {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            supervisor: SupervisorConfig::default(),
            state_dir: state_dir.into(),
            retrain_every: 16,
            holdout: 4,
            fine_tune_epochs: 4,
            gate_tolerance: 0.05,
            rollback_window: 16,
            rollback_min_samples: 8,
            rollback_threshold: 1.5,
            segment_records: 64,
            keep_promoted: 3,
            faults: None,
        }
    }
}

/// Outcome of one fine-tune round's promotion gate.
#[derive(Debug, Clone, PartialEq)]
pub enum PromotionDecision {
    /// The candidate passed and was published at `epoch`.
    Promoted { epoch: u64, candidate_err: f64, serving_err: f64 },
    /// Held-out prediction error was worse than serving; traffic unchanged.
    RejectedWorse { candidate_err: f64, serving_err: f64 },
    /// The candidate carried non-finite parameters; traffic unchanged.
    RejectedNonFinite,
}

impl std::fmt::Display for PromotionDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromotionDecision::Promoted { epoch, candidate_err, serving_err } => write!(
                f,
                "promoted at epoch {epoch} (holdout q-error {candidate_err:.3} vs serving {serving_err:.3})"
            ),
            PromotionDecision::RejectedWorse { candidate_err, serving_err } => write!(
                f,
                "rejected: holdout q-error {candidate_err:.3} worse than serving {serving_err:.3}"
            ),
            PromotionDecision::RejectedNonFinite => {
                f.write_str("rejected: non-finite parameters")
            }
        }
    }
}

/// What one [`OnlinePlanner::run_batch`] call did beyond serving.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-request dispositions, aligned with the input requests.
    pub outcomes: Vec<SupervisedOutcome>,
    /// The fine-tune round triggered by this batch, if any.
    pub promotion: Option<PromotionDecision>,
    /// Whether the regression monitor rolled the serving model back.
    pub rolled_back: bool,
}

/// Durable trainer cursor: which WAL prefix has fed a completed round.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct TrainerState {
    consumed: u64,
    round: u64,
}

/// The online adaptation loop (see module docs).
pub struct OnlinePlanner {
    cfg: OnlineConfig,
    cell: ModelCell,
    sup: Supervisor,
    wal: ExperienceWal,
    promoted: SnapshotStore,
    trainer_meta: SnapshotStore,
    monitor: RegressionMonitor,
    counters: OnlineCounters,
    faults: Option<FaultInjector>,
    /// WAL records already consumed by completed rounds.
    consumed: usize,
    round: u64,
}

impl OnlinePlanner {
    /// Open (or recover) the loop's durable state under `cfg.state_dir` and
    /// start serving. `base` is the model to serve when no promoted
    /// checkpoint is recoverable — on a restart after a promotion, the
    /// newest valid promoted checkpoint wins; if every promoted checkpoint
    /// is corrupt the loop degrades to `base` rather than refusing to serve.
    pub fn new(
        cfg: OnlineConfig,
        base: Arc<QPSeeker>,
        db: &Arc<Database>,
    ) -> Result<Self, CoreError> {
        let faults = cfg.faults.clone().map(FaultInjector::new);
        let wal = ExperienceWal::open(cfg.state_dir.join("wal"), cfg.segment_records)?
            .with_faults(faults.clone());
        let promoted =
            SnapshotStore::create(cfg.state_dir.join("promoted"), "model", cfg.keep_promoted)?
                .with_faults(faults.clone());
        let trainer_meta = SnapshotStore::create(cfg.state_dir.join("trainer"), "state", 2)?
            .with_faults(faults.clone());

        let serving: Arc<QPSeeker> = match promoted.recover() {
            Ok(Some(rec)) => {
                let ckpt: Checkpoint = serde_json::from_str(&rec.payload)?;
                Arc::new(ckpt.restore(db)?)
            }
            Ok(None) | Err(CoreError::NoValidSnapshot { .. }) => base,
            Err(e) => return Err(e),
        };
        let (consumed, round) = match trainer_meta.recover() {
            Ok(Some(rec)) => {
                let st: TrainerState = serde_json::from_str(&rec.payload)?;
                (st.consumed as usize, st.round)
            }
            Ok(None) | Err(CoreError::NoValidSnapshot { .. }) => (0, 0),
            Err(e) => return Err(e),
        };
        // The cursor can never point past the recovered log (a crash between
        // WAL truncation and state persist cannot happen — the cursor is
        // only advanced over records that were already durable — but clamp
        // defensively).
        let consumed = consumed.min(wal.len());

        let monitor = RegressionMonitor::new(
            cfg.rollback_window,
            cfg.rollback_min_samples,
            cfg.rollback_threshold,
        );
        let sup = Supervisor::new(cfg.supervisor.clone());
        Ok(Self {
            cfg,
            cell: ModelCell::new(serving),
            sup,
            wal,
            promoted,
            trainer_meta,
            monitor,
            counters: OnlineCounters::default(),
            faults,
            consumed,
            round,
        })
    }

    /// The publication cell (for inspection and ad-hoc publishes in tests).
    pub fn cell(&self) -> &ModelCell {
        &self.cell
    }

    /// Online lifecycle counters.
    pub fn counters(&self) -> OnlineCounters {
        self.counters
    }

    /// Serving counters (admission/disposition tallies).
    pub fn serve_counters(&self) -> crate::metrics::ServeCounters {
        self.sup.counters()
    }

    /// The experience log.
    pub fn wal(&self) -> &ExperienceWal {
        &self.wal
    }

    /// Operator override: publish `model` immediately, bypassing the gate,
    /// and arm the regression monitor exactly as a gated promotion would —
    /// an out-of-band deploy gets the same automatic-rollback safety net.
    /// Not persisted: a restart falls back to the last *gated* promotion.
    pub fn publish_unchecked(&mut self, model: Arc<QPSeeker>) -> u64 {
        let epoch = self.cell.publish(model);
        self.monitor.arm();
        epoch
    }

    /// Records logged but not yet consumed by a completed round.
    pub fn pending_experience(&self) -> usize {
        self.wal.len() - self.consumed
    }

    /// Serve one batch of requests through the cell, execute every served
    /// plan to observe ground truth, append the observations to the WAL,
    /// check the rollback monitor, and run a fine-tune round when enough
    /// new experience has accumulated.
    ///
    /// # Errors
    /// Durable-path failures ([`CoreError::Io`]) and injected kills
    /// ([`CoreError::InjectedCrash`], transient) — after either, a new
    /// [`OnlinePlanner`] over the same `state_dir` resumes exactly where
    /// the durable state left off. Requests already served in the dying
    /// batch were answered; only observations past the crash point are
    /// lost, and those were never acknowledged.
    pub fn run_batch(
        &mut self,
        db: &Arc<Database>,
        requests: &[QueryRequest],
    ) -> Result<BatchReport, CoreError> {
        let outcomes = self.sup.run_with_cell(db, &self.cell, requests);

        // Observe: execute each served plan against the live database. The
        // executor's virtual clock makes the observation deterministic.
        for (req, outcome) in requests.iter().zip(&outcomes) {
            let Disposition::Served(r) = &outcome.disposition else { continue };
            let truth = Executor::new(db).execute(&r.plan);
            let observed_ms = truth.time_ms;
            let disposition = match r.served_by {
                ServedBy::Neural => ExperienceDisposition::Neural,
                ServedBy::Classical => ExperienceDisposition::Classical,
            };
            let qep = Qep {
                query: req.query.clone(),
                plan: r.plan.clone(),
                template: "online".into(),
                truth,
            };
            self.wal.log(disposition, r.predicted_ms, qep)?;
            self.counters.records_logged += 1;
            self.monitor.observe(observed_ms);
        }

        // Rollback check before retraining: a regressed swap must not train
        // the next candidate from a poisoned serving model's plans only.
        let mut rolled_back = false;
        if let Some(SwapVerdict::Regressed { .. }) = self.monitor.verdict() {
            if self.cell.rollback().is_some() {
                self.counters.rollbacks += 1;
                rolled_back = true;
            }
        }

        let promotion = self.maybe_retrain(db)?;
        Ok(BatchReport { outcomes, promotion, rolled_back })
    }

    /// Run one fine-tune round if enough unconsumed experience is pending.
    fn maybe_retrain(
        &mut self,
        db: &Arc<Database>,
    ) -> Result<Option<PromotionDecision>, CoreError> {
        let pending = self.wal.len() - self.consumed;
        if pending < self.cfg.retrain_every.max(2) {
            return Ok(None);
        }
        let slice = &self.wal.records()[self.consumed..];
        // Hold out the freshest records for the gate; train on the rest.
        let holdout_n = self.cfg.holdout.clamp(1, slice.len() - 1);
        let (train, holdout) = slice.split_at(slice.len() - holdout_n);

        let serving = self.cell.load().0;
        let mut candidate = Checkpoint::capture(&serving, db).restore(db)?;
        candidate.config.epochs = self.cfg.fine_tune_epochs.max(1);

        // Per-round journal, keyed by the exact record range the round
        // trains on: a kill mid-round resumes this exact round, while a
        // restart whose pending slice grew (more records landed before the
        // crash point) starts a fresh journal instead of tripping the
        // journal's dataset-fingerprint check.
        let journal_dir = self.cfg.state_dir.join(format!(
            "rounds/r{:08}-{:08}",
            self.consumed,
            self.consumed + slice.len()
        ));
        let journal =
            SnapshotStore::create(&journal_dir, "ft", 2)?.with_faults(self.faults.clone());
        let train_refs: Vec<&Qep> = train.iter().map(|r| &r.qep).collect();
        candidate.fit_resumable(&train_refs, &journal)?;
        self.counters.retrain_rounds += 1;

        // Chaos hook: a poisoned gradient step that slipped past the
        // per-batch guards lands here as non-finite weights.
        if let Some(fi) = &self.faults {
            if fi.finetune_poisoned(self.round) {
                poison_first_param(&mut candidate);
            }
        }

        let decision = if !params_finite(&candidate) {
            self.counters.rejected_nonfinite += 1;
            PromotionDecision::RejectedNonFinite
        } else {
            let candidate_err = holdout_error(&candidate, holdout);
            let serving_err = holdout_error(&serving, holdout);
            // NaN candidate_err fails this comparison, so a model that
            // *predicts* non-finitely is rejected too.
            if candidate_err <= serving_err * (1.0 + self.cfg.gate_tolerance) {
                // Durability order matters: checkpoint first, then the
                // cursor, then the in-memory publish. A kill between any
                // two steps recovers to a consistent state (at worst the
                // round is redone from its journal, idempotently).
                let payload = serde_json::to_string(&Checkpoint::capture(&candidate, db))?;
                self.promoted.write(self.round + 1, &payload)?;
                self.advance_cursor(slice.len())?;
                // The round is durably complete; its journal is dead weight.
                let _ = std::fs::remove_dir_all(&journal_dir);
                let epoch = self.cell.publish(Arc::new(candidate));
                self.monitor.arm();
                self.counters.promotions += 1;
                return Ok(Some(PromotionDecision::Promoted { epoch, candidate_err, serving_err }));
            }
            self.counters.rejected_gate += 1;
            PromotionDecision::RejectedWorse { candidate_err, serving_err }
        };
        // Rejected rounds still consume their records: retraining forever on
        // the same bad slice would wedge the loop.
        self.advance_cursor(slice.len())?;
        let _ = std::fs::remove_dir_all(&journal_dir);
        Ok(Some(decision))
    }

    /// Durably advance the trainer cursor past `n` records and bump the
    /// round counter.
    fn advance_cursor(&mut self, n: usize) -> Result<(), CoreError> {
        self.consumed += n;
        self.round += 1;
        let st = TrainerState { consumed: self.consumed as u64, round: self.round };
        self.trainer_meta.write(self.round, &serde_json::to_string(&st)?)?;
        Ok(())
    }
}

/// Mean q-error of the model's runtime prediction over a held-out slice —
/// the gate's measure of plan-cost prediction quality.
fn holdout_error(model: &QPSeeker, holdout: &[ExperienceRecord]) -> f64 {
    if holdout.is_empty() {
        return f64::INFINITY;
    }
    let sum: f64 = holdout
        .iter()
        .map(|r| {
            let pred = model.predict(&r.qep.query, &r.qep.plan).runtime_ms;
            // Compare in microseconds: virtual runtimes are routinely
            // sub-millisecond, and q_error's floor-at-1 would otherwise
            // flatten every such pair to a perfect score.
            q_error(pred * 1e3, r.qep.truth.time_ms * 1e3)
        })
        .sum();
    sum / holdout.len() as f64
}

/// All parameters finite?
fn params_finite(model: &QPSeeker) -> bool {
    model.store.iter().all(|(_, p)| p.value.data().iter().all(|x| x.is_finite()))
}

/// Set one weight to NaN (the injected poisoned-fine-tune fault).
fn poison_first_param(model: &mut QPSeeker) {
    let first = model.store.iter().next().map(|(id, _)| id);
    if let Some(id) = first {
        if let Some(x) = model.store.value_mut(id).data_mut().first_mut() {
            *x = f32::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_workloads::{synthetic, SyntheticConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("qps-online-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shared_db() -> &'static Arc<Database> {
        static DB: OnceLock<Arc<Database>> = OnceLock::new();
        DB.get_or_init(|| Arc::new(qpseeker_storage::datagen::imdb::generate(0.03, 2)))
    }

    fn fitted_model(db: &Arc<Database>) -> Arc<QPSeeker> {
        static MODEL: OnceLock<Checkpoint> = OnceLock::new();
        let ckpt = MODEL.get_or_init(|| {
            let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
            let refs: Vec<&Qep> = w.qeps.iter().collect();
            let mut m = QPSeeker::new(db, ModelConfig::small());
            m.fit(&refs).expect("training succeeds");
            Checkpoint::capture(&m, db)
        });
        Arc::new(ckpt.clone().restore(db).expect("restore succeeds"))
    }

    fn stream(db: &Arc<Database>, n: usize, seed: u64) -> Vec<QueryRequest> {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: n, seed });
        w.qeps
            .into_iter()
            .enumerate()
            .map(|(i, q)| QueryRequest {
                query: q.query,
                arrival_ms: i as f64 * 5.0,
                deadline_ms: i as f64 * 5.0 + 1e9,
            })
            .collect()
    }

    fn quick_online_cfg(dir: &PathBuf) -> OnlineConfig {
        let mut cfg = OnlineConfig::new(dir);
        cfg.supervisor.queue_capacity = 256;
        cfg.supervisor.serve.mcts.budget_ms = 20.0;
        cfg.supervisor.serve.mcts.max_simulations = 40;
        cfg.retrain_every = 8;
        cfg.holdout = 2;
        cfg.fine_tune_epochs = 2;
        cfg
    }

    #[test]
    fn loop_serves_observes_and_retrains() {
        let db = shared_db();
        let dir = scratch("loop");
        let cfg = quick_online_cfg(&dir);
        let mut op = OnlinePlanner::new(cfg, fitted_model(db), db).unwrap();
        let reqs = stream(db, 10, 21);
        let report = op.run_batch(db, &reqs).unwrap();
        assert_eq!(report.outcomes.len(), 10);
        let c = op.serve_counters();
        assert_eq!(c.admitted, c.served_neural + c.served_classical + c.failed);
        assert!(op.counters().records_logged >= 8);
        assert_eq!(op.counters().retrain_rounds, 1, "8+ records must trigger a round");
        assert!(report.promotion.is_some());
        // The WAL holds real observations.
        assert!(op.wal().records().iter().all(|r| r.observed_ms() > 0.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_finetune_is_rejected_and_traffic_stays() {
        let db = shared_db();
        let dir = scratch("poison");
        let mut cfg = quick_online_cfg(&dir);
        cfg.faults = Some(FaultConfig { finetune_poison_p: 1.0, ..FaultConfig::default() });
        let base = fitted_model(db);
        let mut op = OnlinePlanner::new(cfg, Arc::clone(&base), db).unwrap();
        let epoch_before = op.cell().epoch();
        let (held_before, _) = op.cell().load();
        let report = op.run_batch(db, &stream(db, 10, 22)).unwrap();
        assert_eq!(report.promotion, Some(PromotionDecision::RejectedNonFinite));
        assert_eq!(op.counters().rejected_nonfinite, 1);
        assert_eq!(op.counters().promotions, 0);
        assert_eq!(op.cell().epoch(), epoch_before, "no swap happened");
        let (held_after, _) = op.cell().load();
        assert!(Arc::ptr_eq(&held_before, &held_after), "traffic stays on the old model");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promoted_model_survives_restart() {
        let db = shared_db();
        let dir = scratch("restart");
        let cfg = quick_online_cfg(&dir);
        let base = fitted_model(db);
        let mut op = OnlinePlanner::new(cfg.clone(), Arc::clone(&base), db).unwrap();
        let report = op.run_batch(db, &stream(db, 10, 23)).unwrap();
        let promoted = matches!(report.promotion, Some(PromotionDecision::Promoted { .. }));
        let epoch = op.cell().epoch();
        let logged = op.wal().len();
        drop(op);
        // "Restart": recover from the state dir alone.
        let op2 = OnlinePlanner::new(cfg, Arc::clone(&base), db).unwrap();
        assert_eq!(op2.wal().len(), logged, "no experience lost across restart");
        if promoted {
            assert!(epoch >= 1);
            let (m, _) = op2.cell().load();
            assert!(
                !Arc::ptr_eq(&m, &base),
                "restart must serve the promoted checkpoint, not the base model"
            );
            // The completed round consumed its whole slice (train + holdout).
            assert_eq!(op2.pending_experience(), 0, "cursor recovered");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
