//! QEP featurization: turning (query, plan, database) into the constant
//! tensors the encoders consume.
//!
//! Everything that does not depend on model weights is computed once per QEP
//! here — MSCN-style set matrices for the query encoder (§4.1), and per-node
//! constant input segments for the plan encoder (§4.2): relation one-hot
//! sums, TaBERT representations, operator one-hots, and (for leaves) the
//! EXPLAIN estimates.

use crate::fnv::FnvBuild;
use crate::normalize::TargetNormalizer;
use qpseeker_engine::explain::Explain;
use qpseeker_engine::plan::{PhysicalOp, PlanNode};
use qpseeker_engine::query::{CmpOp, Filter, Query};
use qpseeker_nn::tensor::Tensor;
use qpseeker_storage::Database;
use qpseeker_tabert::{TabSim, TabertCache};
use std::collections::HashMap;
use std::sync::Arc;

/// Scale applied to normalized (z-scored) estimate values wherever they
/// travel through plan-node vectors. Node outputs are LSTM hidden states,
/// bounded to (-1, 1) by tanh; z-scores span roughly ±4, so estimates are
/// carried as `z * ESTIMATE_SCALE` to stay representable, and read back with
/// the inverse factor.
pub const ESTIMATE_SCALE: f32 = 0.2;

/// MSCN-style set features of a query.
#[derive(Debug, Clone)]
pub struct QueryFeatures {
    /// `[N, N]` matrix: first `|T_q|` rows are relation one-hots, rest zero.
    pub rel_matrix: Tensor,
    /// `[N, 1]` mask of valid rows.
    pub rel_mask: Tensor,
    /// `[M, M]` matrix of join one-hots.
    pub join_matrix: Tensor,
    /// `[M, 1]` mask of valid rows.
    pub join_mask: Tensor,
}

/// Featurized plan node (tree mirrors the physical plan).
#[derive(Debug, Clone)]
pub struct FeatNode {
    /// Constant middle segment `[1, N + tabert_dim + 6]`:
    /// relation one-hot sum ‖ TaBERT representation ‖ operator one-hot.
    pub mid: Tensor,
    /// For leaves: normalized EXPLAIN estimates `[1, 3]`.
    pub leaf_est: Option<Tensor>,
    /// Normalized ground-truth (card, cost, time) of this node, when known
    /// (training QEPs); drives the auxiliary per-node loss.
    pub truth: Option<[f32; 3]>,
    pub children: Vec<FeatNode>,
}

impl FeatNode {
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(FeatNode::count).sum::<usize>()
    }
}

/// A fully featurized QEP ready for the encoders.
#[derive(Debug, Clone)]
pub struct FeaturizedQep {
    pub query: QueryFeatures,
    pub plan: FeatNode,
    /// Normalized root targets (training only).
    pub target: Option<[f32; 3]>,
    /// Template label carried through for latent-space analysis.
    pub template: String,
}

/// Per-query featurization cache for the MCTS hot loop.
///
/// Candidate plans of one query share almost all featurization work: the
/// constant `[rel one-hot sum ‖ TaBERT repr]` prefix of a node depends only
/// on the *set* of aliases under it, and a leaf's EXPLAIN estimate depends
/// only on `(alias, scan op)` — scan estimates are context-independent. Both
/// are memoized here, keyed by a `u64` alias bitmask (bit = index of the
/// alias in `query.relations`). Leaf masks have exactly one bit and join
/// masks at least two, so leaves and joins can never collide.
///
/// Only exact for queries with at most 64 relations; callers fall back to
/// [`Featurizer::featurize`] beyond that.
pub struct PlanFeatCache {
    sql: String,
    /// alias → bit index, in `query.relations` order.
    alias_bits: HashMap<String, u32, FnvBuild>,
    /// bit index → alias (for mask iteration).
    aliases: Vec<String>,
    /// subtree alias-bitmask → `[rel one-hot sum ‖ TaBERT repr]` prefix.
    mid_prefix: HashMap<u64, Vec<f32>, FnvBuild>,
    /// `(alias bit, scan-op one-hot index)` → normalized, scaled estimates.
    leaf_est: HashMap<(u32, usize), Tensor, FnvBuild>,
}

impl PlanFeatCache {
    pub fn new(query: &Query) -> Self {
        let mut alias_bits = HashMap::default();
        let mut aliases = Vec::with_capacity(query.relations.len());
        for (i, rel) in query.relations.iter().enumerate() {
            alias_bits.insert(rel.alias.clone(), i as u32);
            aliases.push(rel.alias.clone());
        }
        Self {
            sql: query.to_sql(),
            alias_bits,
            aliases,
            mid_prefix: HashMap::default(),
            leaf_est: HashMap::default(),
        }
    }

    /// Whether the bitmask representation is exact for `query`.
    pub fn supports(query: &Query) -> bool {
        query.relations.len() <= 64
    }
}

/// Per-session featurization state: the TaBERT encoding cache and the
/// filtered-column cache. Owned by exactly one thread at a time (a worker's
/// [`crate::session::PlannerSession`], or the model's fallback session), so
/// no locks are needed on the featurization hot path.
#[derive(Default)]
pub struct FeatSession {
    /// (table, query-bucket) → TaBERT encoding.
    pub tabert: TabertCache,
    /// Filtered-column representations keyed by `table.col:op:value`.
    filtered: HashMap<String, Vec<f32>, FnvBuild>,
}

impl FeatSession {
    pub fn new() -> Self {
        Self::default()
    }
}

/// The featurizer. Shares the read-only [`Database`] via `Arc` and owns the
/// immutable TabSim instance; all mutable caches live in a caller-owned
/// [`FeatSession`], so the featurizer itself is `Send + Sync` and a fitted
/// model can serve predictions from many threads at once.
pub struct Featurizer {
    pub db: Arc<Database>,
    pub tabert: TabSim,
}

impl Featurizer {
    pub fn new(db: Arc<Database>, tabert: TabSim) -> Self {
        Self { db, tabert }
    }

    /// The cost/cardinality estimator over the shared database. `Explain` is
    /// a thin borrow wrapper, so building one per call is free.
    fn explain(&self) -> Explain<'_> {
        Explain::new(&self.db)
    }

    /// Total simulated TaBERT time spent so far (Fig. 8 right).
    pub fn tabert_ms(&self) -> f64 {
        self.tabert.simulated_ms()
    }

    /// Build the MSCN set features of a query.
    pub fn query_features(&self, query: &Query) -> QueryFeatures {
        let n = self.db.catalog.num_tables().max(1);
        let m = self.db.catalog.num_joins().max(1);
        let mut rel_matrix = Tensor::zeros(n, n);
        let mut rel_mask = Tensor::zeros(n, 1);
        for (row, rel) in query.relations.iter().take(n).enumerate() {
            if let Some(idx) = self.db.catalog.table_idx(&rel.table) {
                rel_matrix.set(row, idx, 1.0);
                rel_mask.set(row, 0, 1.0);
            }
        }
        let mut join_matrix = Tensor::zeros(m, m);
        let mut join_mask = Tensor::zeros(m, 1);
        for (row, j) in query.joins.iter().take(m).enumerate() {
            let idx = self.join_one_hot(query, j);
            join_matrix.set(row, idx, 1.0);
            join_mask.set(row, 0, 1.0);
        }
        QueryFeatures { rel_matrix, rel_mask, join_matrix, join_mask }
    }

    /// One-hot id of a join predicate: the FK-edge index when the predicate
    /// is a schema edge, otherwise a stable hash bucket.
    fn join_one_hot(&self, query: &Query, j: &qpseeker_engine::query::JoinPred) -> usize {
        let m = self.db.catalog.num_joins().max(1);
        let lt = query.table_of(&j.left.alias).unwrap_or(&j.left.alias);
        let rt = query.table_of(&j.right.alias).unwrap_or(&j.right.alias);
        match self.db.catalog.join_idx(lt, &j.left.column, rt, &j.right.column) {
            Some(i) => i,
            None => {
                let key = format!("{lt}.{}={rt}.{}", j.left.column, j.right.column);
                (fnv(key.as_bytes()) % m as u64) as usize
            }
        }
    }

    /// Featurize a full QEP. `truths` supplies the per-node ground truth in
    /// postorder (from execution) for training; pass `None` at inference.
    pub fn featurize(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plan: &PlanNode,
        truths: Option<&qpseeker_engine::executor::ExecutionResult>,
        norm: &TargetNormalizer,
        template: &str,
    ) -> FeaturizedQep {
        if let Some(t) = truths {
            assert!(
                !t.timed_out && t.nodes.len() == plan.len(),
                "cannot featurize a timed-out execution (query {}): per-node \
                 ground truth is incomplete; filter such QEPs from the workload",
                query.id
            );
        }
        let query_feats = self.query_features(query);
        let estimates = self.explain().explain(query, plan);
        let sql = query.to_sql();
        let mut postorder_idx = 0usize;
        let plan_feats =
            self.feat_node(sess, query, plan, &estimates, truths, norm, &sql, &mut postorder_idx);
        let target = truths.map(|t| norm.encode([t.rows as f64, t.cost, t.time_ms]));
        FeaturizedQep { query: query_feats, plan: plan_feats, target, template: template.into() }
    }

    #[allow(clippy::too_many_arguments)]
    fn feat_node(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        node: &PlanNode,
        estimates: &[qpseeker_engine::explain::NodeEstimate],
        truths: Option<&qpseeker_engine::executor::ExecutionResult>,
        norm: &TargetNormalizer,
        sql: &str,
        postorder_idx: &mut usize,
    ) -> FeatNode {
        // Children first (postorder indexing must match Explain/Executor).
        let children: Vec<FeatNode> = match node {
            PlanNode::Scan { .. } => Vec::new(),
            PlanNode::Join { left, right, .. } => vec![
                self.feat_node(sess, query, left, estimates, truths, norm, sql, postorder_idx),
                self.feat_node(sess, query, right, estimates, truths, norm, sql, postorder_idx),
            ],
        };
        let my_idx = *postorder_idx;
        *postorder_idx += 1;

        let n_tables = self.db.catalog.num_tables().max(1);
        let tdim = self.tabert.dim();

        // (d) relation one-hot sum over the subtree.
        let mut rel_enc = vec![0.0f32; n_tables];
        for alias in node.aliases() {
            let table = query.table_of(&alias).unwrap_or(&alias);
            if let Some(idx) = self.db.catalog.table_idx(table) {
                rel_enc[idx] += 1.0;
            }
        }

        // (c) TaBERT representation.
        let data_repr: Vec<f32> = match node {
            PlanNode::Scan { alias, table, filters, .. } => {
                let _ = alias;
                match filters.first() {
                    Some(f) => self.filtered_column_repr(sess, table, f),
                    None => self.tabert.encode_table(&mut sess.tabert, &self.db, table, sql).cls,
                }
            }
            PlanNode::Join { .. } => {
                // Mean pooling over the [CLS] of each joined relation.
                let mut acc = vec![0.0f32; tdim];
                let aliases = node.aliases();
                for alias in &aliases {
                    let table = query.table_of(alias).unwrap_or(alias).to_string();
                    let cls = self.tabert.encode_table(&mut sess.tabert, &self.db, &table, sql).cls;
                    for (a, c) in acc.iter_mut().zip(&cls) {
                        *a += c / aliases.len() as f32;
                    }
                }
                acc
            }
        };

        // (b) operator one-hot.
        let mut op_one_hot = vec![0.0f32; PhysicalOp::COUNT];
        op_one_hot[node.physical_op().one_hot_index()] = 1.0;

        let mut mid = Vec::with_capacity(n_tables + tdim + PhysicalOp::COUNT);
        mid.extend_from_slice(&rel_enc);
        mid.extend_from_slice(&data_repr);
        mid.extend_from_slice(&op_one_hot);

        // (a) leaf estimates from EXPLAIN, normalized like the targets.
        let leaf_est = if children.is_empty() {
            let e = estimates[my_idx];
            let enc = norm.encode([e.rows, e.cost, e.time_ms]);
            Some(Tensor::row(enc.iter().map(|v| v * ESTIMATE_SCALE).collect()))
        } else {
            None
        };

        let truth = truths.map(|t| {
            let p = &t.nodes[my_idx];
            norm.encode([p.rows as f64, p.cost, p.time_ms])
        });

        FeatNode { mid: Tensor::row(mid), leaf_est, truth, children }
    }

    /// Representation of a filtered column (paper §4.2(c)): TabSim encoding
    /// of the column restricted to the rows matching the predicate. Cached
    /// per session.
    fn filtered_column_repr(&self, sess: &mut FeatSession, table: &str, f: &Filter) -> Vec<f32> {
        let key = format!("{table}.{}:{:?}:{}", f.col.column, f.op, f.value);
        if let Some(hit) = sess.filtered.get(&key) {
            return hit.clone();
        }
        let t = self.db.table(table).expect("table exists");
        let col = &t.col(&f.col.column).data;
        let matching: Vec<u32> = (0..t.n_rows() as u32)
            .filter(|&i| eval_filter(f.op, col.num(i as usize), f.value))
            .collect();
        let repr =
            self.tabert.encode_column_filtered(&self.db, table, &f.col.column, &matching).vector;
        sess.filtered.insert(key, repr.clone());
        repr
    }

    /// Featurize one candidate plan of `query` through a [`PlanFeatCache`],
    /// reusing the `[rel ‖ TaBERT]` prefixes and leaf estimates computed for
    /// earlier candidates of the same query. Produces a [`FeatNode`] tree
    /// numerically identical to [`Featurizer::featurize`]'s (with no truth
    /// labels — this is an inference-only path).
    pub fn featurize_plan_fast(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plan: &PlanNode,
        norm: &TargetNormalizer,
        cache: &mut PlanFeatCache,
    ) -> FeatNode {
        debug_assert!(PlanFeatCache::supports(query), "fall back to featurize() beyond 64 rels");
        self.fast_node(sess, query, plan, norm, cache).0
    }

    /// Featurize a batch of candidate plans of one query into `out`
    /// (cleared first), sharing the [`PlanFeatCache`] across all of them.
    /// After the first candidate warms the cache, each additional plan costs
    /// only prefix lookups + op one-hot assembly — the per-plan trees are
    /// exactly what K [`Self::featurize_plan_fast`] calls would produce, so
    /// batched scoring stays bitwise equal to scalar scoring.
    pub fn featurize_batch_into(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plans: &[&PlanNode],
        norm: &TargetNormalizer,
        cache: &mut PlanFeatCache,
        out: &mut Vec<FeatNode>,
    ) {
        out.clear();
        out.reserve(plans.len());
        for plan in plans {
            out.push(self.featurize_plan_fast(sess, query, plan, norm, cache));
        }
    }

    fn fast_node(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        node: &PlanNode,
        norm: &TargetNormalizer,
        cache: &mut PlanFeatCache,
    ) -> (FeatNode, u64) {
        let n_tables = self.db.catalog.num_tables().max(1);
        match node {
            PlanNode::Scan { alias, table, filters, .. } => {
                let bit = cache.alias_bits.get(alias).copied().unwrap_or(0);
                let mask = 1u64 << (bit as u64 % 64);
                if !cache.mid_prefix.contains_key(&mask) {
                    let mut prefix = Vec::with_capacity(n_tables + self.tabert.dim());
                    prefix.resize(n_tables, 0.0);
                    if let Some(idx) = self.db.catalog.table_idx(table) {
                        prefix[idx] += 1.0;
                    }
                    let repr = match filters.first() {
                        Some(f) => self.filtered_column_repr(sess, table, f),
                        None => self.tabert.encode_table_cls(
                            &mut sess.tabert,
                            &self.db,
                            table,
                            &cache.sql,
                        ),
                    };
                    prefix.extend_from_slice(&repr);
                    cache.mid_prefix.insert(mask, prefix);
                }
                let op_idx = node.physical_op().one_hot_index();
                let est = cache
                    .leaf_est
                    .entry((bit, op_idx))
                    .or_insert_with(|| {
                        // Scan estimates are context-independent, so the
                        // single-node plan yields the same NodeEstimate the
                        // full-plan EXPLAIN would.
                        let e = self.explain().explain(query, node)[0];
                        let enc = norm.encode([e.rows, e.cost, e.time_ms]);
                        Tensor::row(enc.iter().map(|v| v * ESTIMATE_SCALE).collect())
                    })
                    .clone();
                let mid = self.finish_mid(&cache.mid_prefix[&mask], op_idx);
                (FeatNode { mid, leaf_est: Some(est), truth: None, children: Vec::new() }, mask)
            }
            PlanNode::Join { left, right, .. } => {
                let (lf, lm) = self.fast_node(sess, query, left, norm, cache);
                let (rf, rm) = self.fast_node(sess, query, right, norm, cache);
                let mask = lm | rm;
                if !cache.mid_prefix.contains_key(&mask) {
                    // Aliases in sorted order, matching PlanNode::aliases()'
                    // BTreeSet iteration so float accumulation is identical.
                    let mut aliases: Vec<&str> = (0..64)
                        .filter(|b| mask & (1u64 << b) != 0)
                        .filter_map(|b| cache.aliases.get(b as usize).map(String::as_str))
                        .collect();
                    aliases.sort_unstable();
                    let mut prefix = Vec::with_capacity(n_tables + self.tabert.dim());
                    prefix.resize(n_tables, 0.0);
                    let mut acc = vec![0.0f32; self.tabert.dim()];
                    for alias in &aliases {
                        let table = query.table_of(alias).unwrap_or(alias);
                        if let Some(idx) = self.db.catalog.table_idx(table) {
                            prefix[idx] += 1.0;
                        }
                        let cls = self.tabert.encode_table_cls(
                            &mut sess.tabert,
                            &self.db,
                            table,
                            &cache.sql,
                        );
                        for (a, c) in acc.iter_mut().zip(&cls) {
                            *a += c / aliases.len() as f32;
                        }
                    }
                    prefix.extend_from_slice(&acc);
                    cache.mid_prefix.insert(mask, prefix);
                }
                let op_idx = node.physical_op().one_hot_index();
                let mid = self.finish_mid(&cache.mid_prefix[&mask], op_idx);
                (FeatNode { mid, leaf_est: None, truth: None, children: vec![lf, rf] }, mask)
            }
        }
    }

    /// Append the operator one-hot to a cached `[rel ‖ TaBERT]` prefix.
    fn finish_mid(&self, prefix: &[f32], op_idx: usize) -> Tensor {
        let mut mid = Vec::with_capacity(prefix.len() + PhysicalOp::COUNT);
        mid.extend_from_slice(prefix);
        let start = mid.len();
        mid.resize(start + PhysicalOp::COUNT, 0.0);
        mid[start + op_idx] = 1.0;
        Tensor::row(mid)
    }
}

#[inline]
fn eval_filter(op: CmpOp, lhs: f64, rhs: f64) -> bool {
    op.eval(lhs, rhs)
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::executor::Executor;
    use qpseeker_engine::plan::{JoinOp, ScanOp};
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_tabert::TabertConfig;

    fn setup() -> (Arc<Database>, Query, PlanNode) {
        let db = Arc::new(imdb::generate(0.05, 4));
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        q.filters = vec![Filter {
            col: ColRef::new("title", "production_year"),
            op: CmpOp::Gt,
            value: 2000.0,
        }];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        (db, q, plan)
    }

    fn norm() -> TargetNormalizer {
        TargetNormalizer::fit(&[[10.0, 5.0, 1.0], [1000.0, 80.0, 9.0], [50.0, 20.0, 3.0]])
    }

    #[test]
    fn query_features_shapes_and_masks() {
        let (db, q, _) = setup();
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let qf = f.query_features(&q);
        let n = db.catalog.num_tables();
        let m = db.catalog.num_joins();
        assert_eq!(qf.rel_matrix.shape(), (n, n));
        assert_eq!(qf.join_matrix.shape(), (m, m));
        assert_eq!(qf.rel_mask.sum(), 2.0); // two relations
        assert_eq!(qf.join_mask.sum(), 1.0); // one join
                                             // Each valid row is a one-hot.
        assert_eq!(qf.rel_matrix.row_slice(0).iter().sum::<f32>(), 1.0);
        assert_eq!(qf.rel_matrix.row_slice(1).iter().sum::<f32>(), 1.0);
        assert_eq!(qf.rel_matrix.row_slice(2).iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn fk_join_gets_schema_one_hot() {
        let (db, q, _) = setup();
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let qf = f.query_features(&q);
        // movie_info.movie_id = title.id is FK edge 0 in the imdb catalog.
        let expected = db.catalog.join_idx("movie_info", "movie_id", "title", "id").unwrap();
        assert_eq!(qf.join_matrix.get(0, expected), 1.0);
    }

    #[test]
    fn featurized_plan_structure_mirrors_plan() {
        let (db, q, plan) = setup();
        let truth = Executor::new(&db).execute(&plan);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let n = norm();
        let mut sess = FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, Some(&truth), &n, "t0");
        assert_eq!(fq.plan.count(), 3);
        assert_eq!(fq.plan.children.len(), 2);
        // Leaves carry EXPLAIN estimates; the join does not.
        assert!(fq.plan.children[0].leaf_est.is_some());
        assert!(fq.plan.children[1].leaf_est.is_some());
        assert!(fq.plan.leaf_est.is_none());
        // Every node carries normalized truth.
        assert!(fq.plan.truth.is_some());
        assert!(fq.target.is_some());
        // Mid width = N + tabert + 6.
        let expect = db.catalog.num_tables() + 64 + 6;
        assert_eq!(fq.plan.mid.cols(), expect);
    }

    #[test]
    fn join_node_relation_encoding_sums_subtree() {
        let (db, q, plan) = setup();
        let truth = Executor::new(&db).execute(&plan);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let n = norm();
        let mut sess = FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, Some(&truth), &n, "t0");
        let n_tables = db.catalog.num_tables();
        let rel_part: f32 = fq.plan.mid.data()[..n_tables].iter().sum();
        assert_eq!(rel_part, 2.0, "join node should encode both relations");
        let leaf_rel: f32 = fq.plan.children[0].mid.data()[..n_tables].iter().sum();
        assert_eq!(leaf_rel, 1.0);
    }

    #[test]
    fn filtered_leaf_differs_from_unfiltered() {
        let (db, q, plan) = setup();
        let truth = Executor::new(&db).execute(&plan);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let n = norm();
        let mut sess = FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, Some(&truth), &n, "t0");
        // title leaf has a filter, movie_info leaf does not; their TaBERT
        // segments must differ (different tables anyway) — stronger: same
        // table with vs without filter.
        let mut q2 = q.clone();
        q2.filters.clear();
        let plan2 = PlanNode::join(
            &q2,
            JoinOp::HashJoin,
            PlanNode::scan(&q2, "title", ScanOp::SeqScan),
            PlanNode::scan(&q2, "movie_info", ScanOp::SeqScan),
        );
        let truth2 = Executor::new(&db).execute(&plan2);
        let fq2 = f.featurize(&mut sess, &q2, &plan2, Some(&truth2), &n, "t0");
        let n_tables = db.catalog.num_tables();
        let seg =
            |fqx: &FeaturizedQep| fqx.plan.children[0].mid.data()[n_tables..n_tables + 64].to_vec();
        assert_ne!(seg(&fq), seg(&fq2));
    }

    #[test]
    fn inference_featurization_needs_no_truth() {
        let (db, q, plan) = setup();
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let n = norm();
        let mut sess = FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, None, &n, "t0");
        assert!(fq.target.is_none());
        assert!(fq.plan.truth.is_none());
        assert!(fq.plan.children[0].leaf_est.is_some(), "EXPLAIN estimates still available");
    }

    #[test]
    fn operator_one_hot_is_set() {
        let (db, q, plan) = setup();
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let n = norm();
        let mut sess = FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, None, &n, "t0");
        let n_tables = db.catalog.num_tables();
        let op_seg = &fq.plan.mid.data()[n_tables + 64..];
        assert_eq!(op_seg.len(), 6);
        assert_eq!(op_seg.iter().sum::<f32>(), 1.0);
        assert_eq!(op_seg[PhysicalOp::Join(JoinOp::HashJoin).one_hot_index()], 1.0);
    }
}
