//! Monte Carlo Tree Search planning (§5.2).
//!
//! Vanilla MCTS over the left-deep plan space, bottom-up: start from a base
//! relation and apply one join at a time until every relation is present.
//! Nodes are scored with UCT (`r/n + C·sqrt(ln t / n)`), where a node's
//! reward counts how often it lies on the best plan found so far; rollouts
//! complete the plan randomly, and completed plans are evaluated with
//! QPSeeker's learned cost model (least predicted execution time wins).
//! Planning stops at a wall-clock budget (paper: 200 ms) or a simulation
//! cap, whichever comes first.

use crate::model::QPSeeker;
use qpseeker_engine::inject::LeftDeepSpec;
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

use std::time::Instant;

/// One plan-construction step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Choose the first relation and its scan operator.
    Start { alias: String, scan: ScanOp },
    /// Join one more relation onto the prefix.
    Extend { alias: String, scan: ScanOp, join: JoinOp },
}

/// MCTS configuration.
#[derive(Debug, Clone)]
pub struct MctsConfig {
    /// Wall-clock planning budget in milliseconds (paper: 200 ms).
    pub budget_ms: f64,
    /// Hard cap on simulations (determinism for tests; usize::MAX to disable).
    pub max_simulations: usize,
    /// UCT exploration coefficient `C ∈ [0, 1]` (paper: 0.5).
    pub exploration: f64,
    pub seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self { budget_ms: 200.0, max_simulations: 10_000, exploration: 0.5, seed: 0xacc5 }
    }
}

/// Planning outcome.
#[derive(Debug)]
pub struct MctsResult {
    pub plan: PlanNode,
    /// Model-predicted runtime of the chosen plan.
    pub predicted_ms: f64,
    pub simulations: usize,
    /// Distinct complete plans evaluated by the cost model.
    pub plans_evaluated: usize,
    /// True when the search consumed its full time budget.
    pub budget_exhausted: bool,
}

struct TreeNode {
    visits: f64,
    reward: f64,
    /// Insertion-ordered so UCT tie-breaking is deterministic.
    children: Vec<(Action, usize)>,
    untried: Vec<Action>,
    expanded: bool,
}

/// The MCTS planner. Owns the search tree for one query.
pub struct MctsPlanner {
    cfg: MctsConfig,
}

impl MctsPlanner {
    pub fn new(cfg: MctsConfig) -> Self {
        Self { cfg }
    }

    /// Plan `query` using `model` as the evaluation function.
    pub fn plan(&self, model: &mut QPSeeker<'_>, query: &Query) -> MctsResult {
        assert!(!query.relations.is_empty(), "cannot plan an empty query");
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ fnv(query.id.as_bytes()));

        // Single relation: evaluate the three scan choices directly.
        if query.relations.len() == 1 {
            let alias = query.relations[0].alias.clone();
            let mut best: Option<(PlanNode, f64)> = None;
            let mut evaluated = 0;
            for op in ScanOp::ALL {
                let plan = PlanNode::scan(query, &alias, op);
                let t = model.predict_runtime_ms(query, &plan);
                evaluated += 1;
                if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                    best = Some((plan, t));
                }
            }
            let (plan, predicted_ms) = best.expect("scan ops non-empty");
            return MctsResult {
                plan,
                predicted_ms,
                simulations: evaluated,
                plans_evaluated: evaluated,
                budget_exhausted: false,
            };
        }

        let mut nodes: Vec<TreeNode> = vec![TreeNode {
            visits: 0.0,
            reward: 0.0,
            children: Vec::new(),
            untried: Vec::new(),
            expanded: false,
        }];
        let mut eval_cache: HashMap<Vec<Action>, f64> = HashMap::new();
        let mut best: Option<(Vec<Action>, f64)> = None;
        let mut simulations = 0usize;
        let mut budget_exhausted = false;

        while simulations < self.cfg.max_simulations {
            if start.elapsed().as_secs_f64() * 1000.0 > self.cfg.budget_ms {
                budget_exhausted = true;
                break;
            }
            simulations += 1;

            // ---- Selection + Expansion ----
            let mut path: Vec<usize> = vec![0];
            let mut actions: Vec<Action> = Vec::new();
            loop {
                let node_idx = *path.last().expect("path non-empty");
                if !nodes[node_idx].expanded {
                    let acts = legal_actions(query, &actions);
                    nodes[node_idx].untried = acts;
                    nodes[node_idx].expanded = true;
                }
                if actions.len() == query.relations.len() {
                    break; // complete plan reached inside the tree
                }
                if !nodes[node_idx].untried.is_empty() {
                    // Expansion: take one untried action at random.
                    let i = rng.gen_range(0..nodes[node_idx].untried.len());
                    let action = nodes[node_idx].untried.swap_remove(i);
                    let child = nodes.len();
                    nodes.push(TreeNode {
                        visits: 0.0,
                        reward: 0.0,
                        children: Vec::new(),
                        untried: Vec::new(),
                        expanded: false,
                    });
                    nodes[node_idx].children.push((action.clone(), child));
                    actions.push(action);
                    path.push(child);
                    break;
                }
                // Fully expanded: UCT descent.
                let parent_visits = nodes[node_idx].visits.max(1.0);
                let mut best_child: Option<(f64, Action, usize)> = None;
                for (a, c) in nodes[node_idx].children.clone() {
                    let child = &nodes[c];
                    let score = if child.visits == 0.0 {
                        f64::INFINITY
                    } else {
                        child.reward / child.visits
                            + self.cfg.exploration * (parent_visits.ln() / child.visits).sqrt()
                    };
                    if best_child.as_ref().map(|(s, _, _)| score > *s).unwrap_or(true) {
                        best_child = Some((score, a, c));
                    }
                }
                match best_child {
                    Some((_, a, c)) => {
                        actions.push(a);
                        path.push(c);
                    }
                    None => break, // dead end (disconnected query)
                }
            }

            // ---- Rollout ----
            let mut rollout = actions.clone();
            while rollout.len() < query.relations.len() {
                let acts = legal_actions(query, &rollout);
                if acts.is_empty() {
                    break;
                }
                rollout.push(acts[rng.gen_range(0..acts.len())].clone());
            }
            if rollout.len() != query.relations.len() {
                continue; // disconnected: cannot finish from here
            }

            // ---- Evaluation ----
            let t = match eval_cache.get(&rollout) {
                Some(&t) => t,
                None => {
                    let spec = to_spec(&rollout);
                    let plan = spec.compile(query).expect("rollout builds a valid plan");
                    let t = model.predict_runtime_ms(query, &plan);
                    eval_cache.insert(rollout.clone(), t);
                    t
                }
            };
            if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                best = Some((rollout.clone(), t));
            }

            // ---- Backpropagation ----
            // Reward = 1 when the node's action prefix lies on the best plan.
            let best_seq = &best.as_ref().expect("best set above").0;
            for (depth, &node_idx) in path.iter().enumerate() {
                nodes[node_idx].visits += 1.0;
                if depth <= best_seq.len()
                    && actions[..depth] == best_seq[..depth.min(best_seq.len())]
                {
                    nodes[node_idx].reward += 1.0;
                }
            }
        }

        let (best_seq, predicted_ms) = best.unwrap_or_else(|| {
            // Budget hit before any complete rollout: greedy completion.
            let mut seq = Vec::new();
            while seq.len() < query.relations.len() {
                let acts = legal_actions(query, &seq);
                seq.push(acts.first().expect("connected query").clone());
            }
            (seq, f64::INFINITY)
        });
        let plan = to_spec(&best_seq).compile(query).expect("best plan is valid");
        MctsResult {
            plan,
            predicted_ms,
            simulations,
            plans_evaluated: eval_cache.len(),
            budget_exhausted,
        }
    }
}

/// Legal actions from a partial action sequence: connected extensions only.
fn legal_actions(query: &Query, actions: &[Action]) -> Vec<Action> {
    let mut out = Vec::new();
    if actions.is_empty() {
        for r in &query.relations {
            for scan in ScanOp::ALL {
                out.push(Action::Start { alias: r.alias.clone(), scan });
            }
        }
        return out;
    }
    let joined: BTreeSet<String> = actions
        .iter()
        .map(|a| match a {
            Action::Start { alias, .. } | Action::Extend { alias, .. } => alias.clone(),
        })
        .collect();
    for alias in query.neighbors(&joined) {
        for scan in ScanOp::ALL {
            for join in JoinOp::ALL {
                out.push(Action::Extend { alias: alias.clone(), scan, join });
            }
        }
    }
    out
}

fn to_spec(actions: &[Action]) -> LeftDeepSpec {
    let mut scans = Vec::with_capacity(actions.len());
    let mut joins = Vec::with_capacity(actions.len().saturating_sub(1));
    for a in actions {
        match a {
            Action::Start { alias, scan } => scans.push((alias.clone(), *scan)),
            Action::Extend { alias, scan, join } => {
                scans.push((alias.clone(), *scan));
                joins.push(*join);
            }
        }
    }
    LeftDeepSpec { scans, joins }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    fn fitted_model(db: &qpseeker_storage::Database) -> QPSeeker<'_> {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 16, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut m = QPSeeker::new(db, ModelConfig::small());
        m.fit(&refs);
        m
    }

    fn three_way(db: &qpseeker_storage::Database) -> Query {
        let _ = db;
        let mut q = Query::new("mcts-q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q
    }

    #[test]
    fn produces_valid_left_deep_plan() {
        let db = imdb::generate(0.05, 1);
        let mut model = fitted_model(&db);
        let q = three_way(&db);
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 500.0,
            max_simulations: 60,
            ..Default::default()
        });
        let res = planner.plan(&mut model, &q);
        assert!(res.plan.validate(&q).is_ok());
        assert!(res.plan.is_left_deep());
        assert!(res.simulations > 0);
        assert!(res.plans_evaluated > 0);
        assert!(res.predicted_ms.is_finite());
    }

    #[test]
    fn deterministic_with_simulation_cap() {
        let db = imdb::generate(0.05, 1);
        let q = three_way(&db);
        let cfg = MctsConfig { budget_ms: 1e9, max_simulations: 40, ..Default::default() };
        let mut m1 = fitted_model(&db);
        let r1 = MctsPlanner::new(cfg.clone()).plan(&mut m1, &q);
        let mut m2 = fitted_model(&db);
        let r2 = MctsPlanner::new(cfg).plan(&mut m2, &q);
        assert_eq!(r1.plan, r2.plan);
        assert_eq!(r1.simulations, r2.simulations);
    }

    #[test]
    fn single_relation_query_picks_a_scan() {
        let db = imdb::generate(0.05, 1);
        let mut model = fitted_model(&db);
        let mut q = Query::new("single");
        q.relations = vec![RelRef::new("title")];
        let res = MctsPlanner::new(MctsConfig::default()).plan(&mut model, &q);
        assert!(matches!(res.plan, PlanNode::Scan { .. }));
        assert_eq!(res.plans_evaluated, 3);
    }

    #[test]
    fn budget_cuts_off_search() {
        let db = imdb::generate(0.05, 1);
        let mut model = fitted_model(&db);
        let q = three_way(&db);
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 1.0, // 1ms: will be exhausted almost immediately
            max_simulations: usize::MAX,
            ..Default::default()
        });
        let res = planner.plan(&mut model, &q);
        assert!(res.budget_exhausted);
        assert!(res.plan.validate(&q).is_ok(), "still returns the best plan found so far");
    }

    #[test]
    fn more_simulations_never_worsen_predicted_time() {
        let db = imdb::generate(0.05, 1);
        let q = three_way(&db);
        let mut m1 = fitted_model(&db);
        let few = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 5,
            ..Default::default()
        })
        .plan(&mut m1, &q);
        let mut m2 = fitted_model(&db);
        let many = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 100,
            ..Default::default()
        })
        .plan(&mut m2, &q);
        assert!(many.predicted_ms <= few.predicted_ms + 1e-9);
    }

    #[test]
    fn legal_actions_respect_connectivity() {
        let db = imdb::generate(0.05, 1);
        let q = three_way(&db);
        let start = legal_actions(&q, &[]);
        assert_eq!(start.len(), 3 * 3); // 3 relations x 3 scan ops
        let after = legal_actions(
            &q,
            &[Action::Start { alias: "movie_info".into(), scan: ScanOp::SeqScan }],
        );
        // Only title is adjacent to movie_info.
        assert!(after
            .iter()
            .all(|a| matches!(a, Action::Extend { alias, .. } if alias == "title")));
        assert_eq!(after.len(), 3 * 3); // 1 relation x 3 scans x 3 joins
    }
}
