//! Monte Carlo Tree Search planning (§5.2).
//!
//! Vanilla MCTS over the left-deep plan space, bottom-up: start from a base
//! relation and apply one join at a time until every relation is present.
//! Nodes are scored with UCT (`r/n + C·sqrt(ln t / n)`), where a node's
//! reward counts how often it lies on the best plan found so far; rollouts
//! complete the plan randomly, and completed plans are evaluated with
//! QPSeeker's learned cost model (least predicted execution time wins).
//! Planning stops at a wall-clock budget (paper: 200 ms) or a simulation
//! cap, whichever comes first.

use crate::featurize::FeatSession;
use crate::model::{Prediction, QPSeeker, QueryContext};
use crate::session::PlannerSession;
use qpseeker_engine::inject::LeftDeepSpec;
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use std::time::Instant;

/// One plan-construction step. Relations are interned as indices into
/// `query.relations`, so actions are `Copy` and the hot loop never touches a
/// `String`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Choose the first relation and its scan operator.
    Start { rel: u32, scan: ScanOp },
    /// Join one more relation onto the prefix.
    Extend { rel: u32, scan: ScanOp, join: JoinOp },
}

impl Action {
    fn rel(self) -> u32 {
        match self {
            Action::Start { rel, .. } | Action::Extend { rel, .. } => rel,
        }
    }

    /// Compact signature: `rel << 4 | scan << 2 | join`. Used to key the
    /// evaluation cache with a `Vec<u64>` instead of owned `String`s. The
    /// join field is 0..=2 for `Extend` and 3 for `Start`, so the packing is
    /// injective.
    fn pack(self) -> u64 {
        match self {
            Action::Start { rel, scan } => (rel as u64) << 4 | (op_idx_scan(scan) as u64) << 2 | 3,
            Action::Extend { rel, scan, join } => {
                (rel as u64) << 4 | (op_idx_scan(scan) as u64) << 2 | op_idx_join(join) as u64
            }
        }
    }
}

fn op_idx_scan(s: ScanOp) -> u8 {
    match s {
        ScanOp::SeqScan => 0,
        ScanOp::IndexScan => 1,
        ScanOp::BitmapIndexScan => 2,
    }
}

fn op_idx_join(j: JoinOp) -> u8 {
    match j {
        JoinOp::HashJoin => 0,
        JoinOp::MergeJoin => 1,
        JoinOp::NestedLoopJoin => 2,
    }
}

/// Precomputed join connectivity of one query: `adj[i]` is the bitmask of
/// relations sharing a join predicate with relation `i`. Supports up to 64
/// relations (the IMDb/JOB regime is ≤ 17).
struct QueryIndex {
    n: usize,
    adj: Vec<u64>,
}

impl QueryIndex {
    fn new(query: &Query) -> Self {
        let n = query.relations.len();
        assert!(n <= 64, "MCTS bitmask connectivity supports at most 64 relations");
        let idx_of = |alias: &str| query.relations.iter().position(|r| r.alias == alias);
        let mut adj = vec![0u64; n];
        for j in &query.joins {
            if let (Some(l), Some(r)) = (idx_of(&j.left.alias), idx_of(&j.right.alias)) {
                if l != r {
                    adj[l] |= 1 << r;
                    adj[r] |= 1 << l;
                }
            }
        }
        Self { n, adj }
    }

    /// Relations reachable from the joined set, as a bitmask.
    fn frontier(&self, joined: u64) -> u64 {
        let mut reach = 0u64;
        let mut rest = joined;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            reach |= self.adj[i];
        }
        reach & !joined
    }
}

/// MCTS configuration.
#[derive(Debug, Clone)]
pub struct MctsConfig {
    /// Wall-clock planning budget in milliseconds (paper: 200 ms).
    pub budget_ms: f64,
    /// Hard cap on simulations (determinism for tests; usize::MAX to disable).
    pub max_simulations: usize,
    /// UCT exploration coefficient `C ∈ [0, 1]` (paper: 0.5).
    pub exploration: f64,
    pub seed: u64,
    /// Completed rollouts per batched cost-model evaluation. Rollouts are
    /// queued (deduped by packed action signature) and scored `batch_eval`
    /// at a time in one batched forward pass; `<= 1` evaluates every rollout
    /// immediately (the scalar path). Predictions are bitwise identical
    /// either way — batching changes only *when* UCT backups land, never
    /// what a plan scores.
    pub batch_eval: usize,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self {
            budget_ms: 200.0,
            max_simulations: 10_000,
            exploration: 0.5,
            seed: 0xacc5,
            batch_eval: 16,
        }
    }
}

/// Planning outcome.
#[derive(Debug)]
pub struct MctsResult {
    pub plan: PlanNode,
    /// Model-predicted runtime of the chosen plan.
    pub predicted_ms: f64,
    pub simulations: usize,
    /// Distinct complete plans evaluated by the cost model.
    pub plans_evaluated: usize,
    /// True when the search consumed its full time budget.
    pub budget_exhausted: bool,
}

struct TreeNode {
    visits: f64,
    reward: f64,
    /// Insertion-ordered so UCT tie-breaking is deterministic.
    children: Vec<(Action, usize)>,
    untried: Vec<Action>,
    expanded: bool,
    /// The subtree below this node is fully enumerated (every reachable
    /// complete plan has been evaluated), so descending into it again can
    /// never surface a new plan. UCT skips exhausted children, which keeps
    /// the simulation budget pointed at plans the cost model has not scored
    /// yet instead of re-walking the incumbent best path.
    exhausted: bool,
}

impl TreeNode {
    fn fresh() -> Self {
        Self {
            visits: 0.0,
            reward: 0.0,
            children: Vec::new(),
            untried: Vec::new(),
            expanded: false,
            exhausted: false,
        }
    }
}

/// A completed rollout waiting in the batched-evaluation queue: the tree
/// path to back up once the score lands, and the full action sequence. The
/// in-tree prefix `actions` is always a prefix of `rollout`
/// (`path.len() == actions.len() + 1`), so deferred backpropagation needs
/// no separate copy of `actions`.
#[derive(Default)]
struct Waiter {
    path: Vec<usize>,
    rollout: Vec<Action>,
}

/// One distinct plan awaiting batched evaluation, with every rollout that
/// produced it. Queued plans are deduped by packed action signature so a
/// flush never scores the same plan twice.
#[derive(Default)]
struct Pending {
    key: Vec<u64>,
    waiters: Vec<Waiter>,
}

/// Reusable MCTS search state, cleared at the start of every
/// [`MctsPlanner::plan_with_session`] call: the tree arena, the per-query
/// evaluation cache, and the hot-loop buffers. Lives in a
/// [`PlannerSession`] so a serving worker reuses the allocations across
/// every query it handles.
#[derive(Default)]
pub struct MctsScratch {
    nodes: Vec<TreeNode>,
    eval_cache: HashMap<Vec<u64>, f64>,
    path: Vec<usize>,
    actions: Vec<Action>,
    rollout: Vec<Action>,
    acts_buf: Vec<Action>,
    key_buf: Vec<u64>,
    /// Rollouts queued for the next batched evaluation, deduped by key.
    pending: Vec<Pending>,
    /// Recycled `Pending`/`Waiter`/cache-key allocations. `key_pool` is
    /// refilled from the previous query's drained eval cache, so a steady
    /// stream of queries allocates no new key vectors.
    pending_pool: Vec<Pending>,
    waiter_pool: Vec<Waiter>,
    key_pool: Vec<Vec<u64>>,
    /// Best complete action sequence found so far (scratch for what used to
    /// be a per-improvement `rollout.clone()`).
    best_seq: Vec<Action>,
    plans_buf: Vec<PlanNode>,
    preds_buf: Vec<Prediction>,
}

impl MctsScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// The MCTS planner. Owns the search tree for one query.
pub struct MctsPlanner {
    cfg: MctsConfig,
}

impl MctsPlanner {
    pub fn new(cfg: MctsConfig) -> Self {
        Self { cfg }
    }

    /// Plan `query` using `model` as the evaluation function, through the
    /// model's internal fallback session. Convenience wrapper over
    /// [`Self::plan_with_session`] for single-threaded callers; serving
    /// workers pass their own session to keep the hot path lock-free.
    pub fn plan(&self, model: &QPSeeker, query: &Query) -> MctsResult {
        let mut sess = model.lock_fallback_session();
        self.plan_with_session(model, query, &mut sess)
    }

    /// Plan `query` using `model` as the evaluation function, with all
    /// mutable state in `sess`. The query is encoded exactly once (via
    /// [`QPSeeker::query_context`]); every rollout evaluation reuses that
    /// embedding and only pays for the plan side.
    pub fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut PlannerSession,
    ) -> MctsResult {
        assert!(!query.relations.is_empty(), "cannot plan an empty query");
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ fnv(query.id.as_bytes()));
        let mut ctx = model.query_context(query);
        let feat_sess = &mut sess.feat;

        // Single relation: evaluate the three scan choices directly.
        if query.relations.len() == 1 {
            let alias = query.relations[0].alias.clone();
            let mut best: Option<(PlanNode, f64)> = None;
            let mut evaluated = 0;
            for op in ScanOp::ALL {
                let plan = PlanNode::scan(query, &alias, op);
                let t = model.predict_with_context_in(feat_sess, query, &plan, &mut ctx).runtime_ms;
                evaluated += 1;
                if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                    best = Some((plan, t));
                }
            }
            let (plan, predicted_ms) = best.expect("scan ops non-empty");
            return MctsResult {
                plan,
                predicted_ms,
                simulations: evaluated,
                plans_evaluated: evaluated,
                budget_exhausted: false,
            };
        }

        let qi = QueryIndex::new(query);
        // Per-query state cleared on entry; allocations carry over between
        // queries handled by the same session.
        let MctsScratch {
            nodes,
            eval_cache,
            path,
            actions,
            rollout,
            acts_buf,
            key_buf,
            pending,
            pending_pool,
            waiter_pool,
            key_pool,
            best_seq,
            plans_buf,
            preds_buf,
        } = &mut sess.mcts;
        nodes.clear();
        nodes.push(TreeNode::fresh());
        // Drain (not clear) so the previous query's key allocations feed
        // this query's cache inserts.
        key_pool.extend(eval_cache.drain().map(|(k, _)| k));
        pending.clear();
        best_seq.clear();
        let mut best_t: Option<f64> = None;
        let mut simulations = 0usize;
        let mut budget_exhausted = false;

        while simulations < self.cfg.max_simulations {
            if start.elapsed().as_secs_f64() * 1000.0 > self.cfg.budget_ms {
                budget_exhausted = true;
                break;
            }
            simulations += 1;

            // ---- Selection + Expansion ----
            path.clear();
            path.push(0);
            actions.clear();
            let mut joined = 0u64;
            loop {
                let node_idx = *path.last().expect("path non-empty");
                if !nodes[node_idx].expanded {
                    legal_actions_into(&qi, actions, joined, acts_buf);
                    nodes[node_idx].untried = acts_buf.clone();
                    nodes[node_idx].expanded = true;
                }
                if actions.len() == qi.n {
                    break; // complete plan reached inside the tree
                }
                if !nodes[node_idx].untried.is_empty() {
                    // Expansion: take one untried action at random.
                    let i = rng.gen_range(0..nodes[node_idx].untried.len());
                    let action = nodes[node_idx].untried.swap_remove(i);
                    let child = nodes.len();
                    nodes.push(TreeNode::fresh());
                    nodes[node_idx].children.push((action, child));
                    actions.push(action);
                    joined |= 1 << action.rel();
                    path.push(child);
                    break;
                }
                // Fully expanded: UCT descent over child indices; `Action`
                // is `Copy`, so no per-step clone of the child list.
                // Exhausted subtrees hold no unevaluated plans and are
                // skipped.
                let parent_visits = nodes[node_idx].visits.max(1.0);
                let mut best_child: Option<(f64, Action, usize)> = None;
                for &(a, c) in &nodes[node_idx].children {
                    let child = &nodes[c];
                    if child.exhausted {
                        continue;
                    }
                    let score = if child.visits == 0.0 {
                        f64::INFINITY
                    } else {
                        child.reward / child.visits
                            + self.cfg.exploration * (parent_visits.ln() / child.visits).sqrt()
                    };
                    if best_child.as_ref().map(|(s, _, _)| score > *s).unwrap_or(true) {
                        best_child = Some((score, a, c));
                    }
                }
                match best_child {
                    Some((_, a, c)) => {
                        actions.push(a);
                        joined |= 1 << a.rel();
                        path.push(c);
                    }
                    None => break, // dead end or fully enumerated subtree
                }
            }

            // ---- Rollout ----
            rollout.clear();
            rollout.extend_from_slice(actions);
            let mut roll_joined = joined;
            while rollout.len() < qi.n {
                legal_actions_into(&qi, rollout, roll_joined, acts_buf);
                if acts_buf.is_empty() {
                    break;
                }
                let a = acts_buf[rng.gen_range(0..acts_buf.len())];
                roll_joined |= 1 << a.rel();
                rollout.push(a);
            }
            if rollout.len() != qi.n {
                continue; // disconnected: cannot finish from here
            }

            // ---- Evaluation ----
            // A cache hit backs up immediately. With batching enabled, a
            // miss joins the pending queue (deduped by packed signature)
            // and its backup is deferred until the queue flushes through
            // one batched forward pass; scores are bitwise identical to
            // the scalar path either way.
            key_buf.clear();
            key_buf.extend(rollout.iter().map(|a| a.pack()));
            if let Some(&t) = eval_cache.get(key_buf.as_slice()) {
                apply_eval(nodes, best_seq, &mut best_t, rollout, path, t, true);
            } else if self.cfg.batch_eval <= 1 {
                let spec = to_spec(query, rollout);
                let plan = spec.compile(query).expect("rollout builds a valid plan");
                let t = model.predict_with_context_in(feat_sess, query, &plan, &mut ctx).runtime_ms;
                let mut key = key_pool.pop().unwrap_or_default();
                key.clear();
                key.extend_from_slice(key_buf);
                eval_cache.insert(key, t);
                apply_eval(nodes, best_seq, &mut best_t, rollout, path, t, true);
            } else {
                // Virtual loss: count the visit now (reward comes at flush
                // time) so UCT stops re-selecting a path whose score is
                // already in flight — without it a large fraction of the
                // simulations between flushes duplicate queued rollouts.
                for &ni in path.iter() {
                    nodes[ni].visits += 1.0;
                }
                let mut w = waiter_pool.pop().unwrap_or_default();
                w.path.clear();
                w.path.extend_from_slice(path);
                w.rollout.clear();
                w.rollout.extend_from_slice(rollout);
                match pending.iter_mut().find(|p| p.key == *key_buf) {
                    Some(p) => p.waiters.push(w),
                    None => {
                        let mut p = pending_pool.pop().unwrap_or_default();
                        let mut key = key_pool.pop().unwrap_or_default();
                        key.clear();
                        key.extend_from_slice(key_buf);
                        p.key = key;
                        p.waiters.push(w);
                        pending.push(p);
                    }
                }
                if pending.len() >= self.cfg.batch_eval {
                    flush_pending(
                        model,
                        query,
                        feat_sess,
                        &mut ctx,
                        pending,
                        pending_pool,
                        waiter_pool,
                        eval_cache,
                        nodes,
                        best_seq,
                        &mut best_t,
                        plans_buf,
                        preds_buf,
                    );
                }
            }

            // ---- Exhaustion propagation (bottom-up along the path) ----
            // A terminal node and a dead end both have an empty `untried`
            // and no unexhausted children; an interior node becomes
            // exhausted once every child is.
            for &node_idx in path.iter().rev() {
                let n = &nodes[node_idx];
                if n.expanded
                    && n.untried.is_empty()
                    && n.children.iter().all(|&(_, c)| nodes[c].exhausted)
                {
                    nodes[node_idx].exhausted = true;
                } else {
                    break;
                }
            }
            if nodes[0].exhausted {
                // The whole left-deep plan space has been scored; further
                // simulations cannot find anything new.
                break;
            }
        }

        // Score whatever is still queued (budget cut-offs and exhaustion
        // exits land here with a partial batch).
        flush_pending(
            model,
            query,
            feat_sess,
            &mut ctx,
            pending,
            pending_pool,
            waiter_pool,
            eval_cache,
            nodes,
            best_seq,
            &mut best_t,
            plans_buf,
            preds_buf,
        );

        if best_t.is_none() {
            // Budget hit before any complete rollout: greedy completion.
            best_seq.clear();
            let mut seq_joined = 0u64;
            while best_seq.len() < qi.n {
                legal_actions_into(&qi, best_seq, seq_joined, acts_buf);
                let a = *acts_buf.first().expect("connected query");
                seq_joined |= 1 << a.rel();
                best_seq.push(a);
            }
        }
        let plan = to_spec(query, best_seq).compile(query).expect("best plan is valid");
        MctsResult {
            plan,
            predicted_ms: best_t.unwrap_or(f64::INFINITY),
            simulations,
            plans_evaluated: eval_cache.len(),
            budget_exhausted,
        }
    }
}

/// Record one scored rollout: update the incumbent best, then back the
/// score up the tree path. Reward = 1 when the node's action prefix lies
/// on the best plan; the in-tree prefix equals `rollout[..depth]` for
/// every depth on `path`, so the waiter needs no separate `actions` copy.
/// `count_visit` is false for deferred (batched) backups, whose visit was
/// already recorded as a virtual loss at enqueue time.
fn apply_eval(
    nodes: &mut [TreeNode],
    best_seq: &mut Vec<Action>,
    best_t: &mut Option<f64>,
    rollout: &[Action],
    path: &[usize],
    t: f64,
    count_visit: bool,
) {
    if best_t.map(|bt| t < bt).unwrap_or(true) {
        *best_t = Some(t);
        best_seq.clear();
        best_seq.extend_from_slice(rollout);
    }
    for (depth, &node_idx) in path.iter().enumerate() {
        if count_visit {
            nodes[node_idx].visits += 1.0;
        }
        if depth <= best_seq.len() && rollout[..depth] == best_seq[..depth.min(best_seq.len())] {
            nodes[node_idx].reward += 1.0;
        }
    }
}

/// Compile every queued plan, score them all in one batched forward pass
/// ([`QPSeeker::predict_batch_with_context_in`]), scatter the results into
/// the eval cache, and run the deferred backups in queue order. All
/// allocations (pendings, waiters, cache keys) are recycled into pools.
#[allow(clippy::too_many_arguments)]
fn flush_pending(
    model: &QPSeeker,
    query: &Query,
    feat_sess: &mut FeatSession,
    ctx: &mut QueryContext,
    pending: &mut Vec<Pending>,
    pending_pool: &mut Vec<Pending>,
    waiter_pool: &mut Vec<Waiter>,
    eval_cache: &mut HashMap<Vec<u64>, f64>,
    nodes: &mut [TreeNode],
    best_seq: &mut Vec<Action>,
    best_t: &mut Option<f64>,
    plans_buf: &mut Vec<PlanNode>,
    preds_buf: &mut Vec<Prediction>,
) {
    if pending.is_empty() {
        return;
    }
    plans_buf.clear();
    for p in pending.iter() {
        let spec = to_spec(query, &p.waiters[0].rollout);
        plans_buf.push(spec.compile(query).expect("rollout builds a valid plan"));
    }
    let plan_refs: Vec<&PlanNode> = plans_buf.iter().collect();
    model.predict_batch_with_context_in(feat_sess, query, &plan_refs, ctx, preds_buf);
    debug_assert_eq!(preds_buf.len(), pending.len());
    for (p, pred) in pending.iter_mut().zip(preds_buf.iter()) {
        let t = pred.runtime_ms;
        eval_cache.insert(std::mem::take(&mut p.key), t);
        for w in p.waiters.drain(..) {
            apply_eval(nodes, best_seq, best_t, &w.rollout, &w.path, t, false);
            waiter_pool.push(w);
        }
    }
    pending_pool.append(pending);
}

/// Legal actions from a partial action sequence into `out` (cleared first):
/// connected extensions only, in relation-index order so the search is
/// deterministic.
fn legal_actions_into(qi: &QueryIndex, actions: &[Action], joined: u64, out: &mut Vec<Action>) {
    out.clear();
    if actions.is_empty() {
        for rel in 0..qi.n as u32 {
            for scan in ScanOp::ALL {
                out.push(Action::Start { rel, scan });
            }
        }
        return;
    }
    let mut frontier = qi.frontier(joined);
    while frontier != 0 {
        let rel = frontier.trailing_zeros();
        frontier &= frontier - 1;
        for scan in ScanOp::ALL {
            for join in JoinOp::ALL {
                out.push(Action::Extend { rel, scan, join });
            }
        }
    }
}

fn to_spec(query: &Query, actions: &[Action]) -> LeftDeepSpec {
    let mut scans = Vec::with_capacity(actions.len());
    let mut joins = Vec::with_capacity(actions.len().saturating_sub(1));
    for a in actions {
        let alias = query.relations[a.rel() as usize].alias.clone();
        match a {
            Action::Start { scan, .. } => scans.push((alias, *scan)),
            Action::Extend { scan, join, .. } => {
                scans.push((alias, *scan));
                joins.push(*join);
            }
        }
    }
    LeftDeepSpec { scans, joins }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    fn fitted_model(db: &std::sync::Arc<qpseeker_storage::Database>) -> QPSeeker {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 16, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut m = QPSeeker::new(db, ModelConfig::small());
        m.fit(&refs).expect("training succeeds");
        m
    }

    fn three_way(db: &qpseeker_storage::Database) -> Query {
        let _ = db;
        let mut q = Query::new("mcts-q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q
    }

    #[test]
    fn produces_valid_left_deep_plan() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 500.0,
            max_simulations: 60,
            ..Default::default()
        });
        let res = planner.plan(&model, &q);
        assert!(res.plan.validate(&q).is_ok());
        assert!(res.plan.is_left_deep());
        assert!(res.simulations > 0);
        assert!(res.plans_evaluated > 0);
        assert!(res.predicted_ms.is_finite());
    }

    #[test]
    fn deterministic_with_simulation_cap() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let cfg = MctsConfig { budget_ms: 1e9, max_simulations: 40, ..Default::default() };
        let m1 = fitted_model(&db);
        let r1 = MctsPlanner::new(cfg.clone()).plan(&m1, &q);
        let m2 = fitted_model(&db);
        let r2 = MctsPlanner::new(cfg).plan(&m2, &q);
        assert_eq!(r1.plan, r2.plan);
        assert_eq!(r1.simulations, r2.simulations);
    }

    #[test]
    fn single_relation_query_picks_a_scan() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let mut q = Query::new("single");
        q.relations = vec![RelRef::new("title")];
        let res = MctsPlanner::new(MctsConfig::default()).plan(&model, &q);
        assert!(matches!(res.plan, PlanNode::Scan { .. }));
        assert_eq!(res.plans_evaluated, 3);
    }

    #[test]
    fn budget_cuts_off_search() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 1.0, // 1ms: will be exhausted almost immediately
            max_simulations: usize::MAX,
            ..Default::default()
        });
        let res = planner.plan(&model, &q);
        assert!(res.budget_exhausted);
        assert!(res.plan.validate(&q).is_ok(), "still returns the best plan found so far");
    }

    #[test]
    fn more_simulations_never_worsen_predicted_time() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let m1 = fitted_model(&db);
        let few = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 5,
            ..Default::default()
        })
        .plan(&m1, &q);
        let m2 = fitted_model(&db);
        let many = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 100,
            ..Default::default()
        })
        .plan(&m2, &q);
        assert!(many.predicted_ms <= few.predicted_ms + 1e-9);
    }

    #[test]
    fn batched_and_scalar_eval_agree_on_exhausted_space() {
        // Two relations: 54 left-deep plans, so both runs fully enumerate
        // the space. Batching changes evaluation *timing*, never scores,
        // so the argmin (and its bitwise predicted time) must match.
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let mut q = Query::new("two-way");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let cfg = MctsConfig { budget_ms: 1e9, max_simulations: 10_000, ..Default::default() };
        let m1 = fitted_model(&db);
        let scalar = MctsPlanner::new(MctsConfig { batch_eval: 1, ..cfg.clone() }).plan(&m1, &q);
        let m2 = fitted_model(&db);
        let batched = MctsPlanner::new(MctsConfig { batch_eval: 8, ..cfg }).plan(&m2, &q);
        assert_eq!(scalar.plans_evaluated, 54);
        assert_eq!(batched.plans_evaluated, 54);
        assert_eq!(scalar.plan, batched.plan);
        assert_eq!(scalar.predicted_ms.to_bits(), batched.predicted_ms.to_bits());
    }

    #[test]
    fn legal_actions_respect_connectivity() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let qi = QueryIndex::new(&q);
        let mut acts = Vec::new();
        legal_actions_into(&qi, &[], 0, &mut acts);
        assert_eq!(acts.len(), 3 * 3); // 3 relations x 3 scan ops
                                       // movie_info is relation index 1; title (index 0) is its only neighbor.
        let start = Action::Start { rel: 1, scan: ScanOp::SeqScan };
        legal_actions_into(&qi, &[start], 1 << 1, &mut acts);
        assert!(acts.iter().all(|a| matches!(a, Action::Extend { rel: 0, .. })));
        assert_eq!(acts.len(), 3 * 3); // 1 relation x 3 scans x 3 joins
    }

    #[test]
    fn action_pack_is_injective_over_ops() {
        let mut seen = std::collections::HashSet::new();
        for rel in 0..4u32 {
            for scan in ScanOp::ALL {
                assert!(seen.insert(Action::Start { rel, scan }.pack()));
                for join in JoinOp::ALL {
                    assert!(seen.insert(Action::Extend { rel, scan, join }.pack()));
                }
            }
        }
    }
}
