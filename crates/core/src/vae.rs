//! The Cost Modeler (§4.4): a β-VAE over the joint (query ‖ plan) embedding.
//!
//! The encoder halves the width over `vae_layers` hidden layers down to
//! `2·latent` (first half mean, second half log-variance, Fig. 4); the
//! decoder mirrors it back up; a final linear head maps the reconstruction
//! to the three normalized targets (cardinality, cost, runtime).

use crate::config::ModelConfig;
use qpseeker_nn::prelude::*;

#[derive(Debug, Clone)]
pub struct CostModeler {
    pub encoder: Mlp,
    pub decoder: Mlp,
    /// Reconstruction → 3 target estimates.
    pub head: Linear,
    pub latent: usize,
}

/// One forward pass through the VAE.
pub struct VaeOutput {
    pub mu: Var,
    pub logvar: Var,
    pub z: Var,
    pub reconstruction: Var,
    /// `[batch, 3]` normalized target predictions.
    pub predictions: Var,
}

impl CostModeler {
    pub fn new(store: &mut ParamStore, init: &mut Initializer, cfg: &ModelConfig) -> Self {
        let enc_dims = cfg.vae_encoder_dims();
        let dec_dims = cfg.vae_decoder_dims();
        Self {
            encoder: Mlp::new(
                store,
                init,
                "vae.enc",
                &enc_dims,
                Activation::Relu,
                Activation::Identity,
            ),
            decoder: Mlp::new(
                store,
                init,
                "vae.dec",
                &dec_dims,
                Activation::Relu,
                Activation::Identity,
            ),
            head: Linear::new(store, init, "vae.head", *dec_dims.last().expect("dims"), 3),
            latent: cfg.vae_latent,
        }
    }

    /// Forward with explicit noise (`eps`: `[batch, latent]`, standard
    /// normal for training, zeros for deterministic inference).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var, eps: Tensor) -> VaeOutput {
        let h = self.encoder.forward(g, store, x);
        let mu = g.slice_cols(h, 0, self.latent);
        let logvar_raw = g.slice_cols(h, self.latent, 2 * self.latent);
        // Soft-bound the log-variance to [-8, 8] for stability.
        let logvar_t = g.tanh(logvar_raw);
        let logvar = g.scale(logvar_t, 8.0);
        let eps_v = g.constant(eps);
        let z = g.reparameterize(mu, logvar, eps_v);
        let reconstruction = self.decoder.forward(g, store, z);
        let predictions = self.head.forward(g, store, reconstruction);
        VaeOutput { mu, logvar, z, reconstruction, predictions }
    }

    /// Tape-free deterministic inference (`eps = 0` ⇒ `z = mu`): returns the
    /// `[rows, 3]` predictions (from `sc` — recycle when done) and the mean
    /// latent code.
    pub fn forward_inference(
        &self,
        store: &ParamStore,
        x: &Tensor,
        sc: &mut ScratchArena,
    ) -> (Tensor, Vec<f32>) {
        let h = self.encoder.forward_inference(store, x, sc); // [rows, 2*latent]
        let mut mu = sc.take(h.rows(), self.latent);
        for r in 0..h.rows() {
            mu.row_slice_mut(r).copy_from_slice(&h.row_slice(r)[..self.latent]);
        }
        sc.recycle(h);
        // With zero noise the reparameterization is the identity on mu, so
        // the log-variance head is never evaluated here.
        let reconstruction = self.decoder.forward_inference(store, &mu, sc);
        let predictions = self.head.forward_inference(store, &reconstruction, sc);
        sc.recycle(reconstruction);
        let mu_vec = mu.data().to_vec();
        sc.recycle(mu);
        (predictions, mu_vec)
    }

    /// Batched [`Self::forward_inference`] without the per-call `mu`
    /// extraction: `x [K, joint_dim]` → predictions `[K, 3]` (from `sc` —
    /// recycle when done). Every op is the scalar path's op at `rows = K`,
    /// so row `p` is bitwise identical to scoring plan `p` alone.
    pub fn forward_inference_batch(
        &self,
        store: &ParamStore,
        x: &Tensor,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let h = self.encoder.forward_inference(store, x, sc); // [rows, 2*latent]
        let mut mu = sc.take(h.rows(), self.latent);
        for r in 0..h.rows() {
            mu.row_slice_mut(r).copy_from_slice(&h.row_slice(r)[..self.latent]);
        }
        sc.recycle(h);
        let reconstruction = self.decoder.forward_inference(store, &mu, sc);
        sc.recycle(mu);
        let predictions = self.head.forward_inference(store, &reconstruction, sc);
        sc.recycle(reconstruction);
        predictions
    }

    /// Sampled tape-free inference for risk-aware scoring: `x [K,
    /// joint_dim]` candidates × `eps [S, latent]` seeded standard-normal
    /// draws → predictions `[S·K, 3]`, sample-major (row `s·K + k` is
    /// candidate `k` under sample `s` — from `sc`, recycle when done).
    ///
    /// Unlike [`Self::forward_inference`] the log-variance head *is*
    /// evaluated: `z = mu + exp(0.5 · logvar) ∘ eps_s` with the same
    /// tanh-bounded log-variance the training path uses. The
    /// reparameterization is elementwise (no GEMM), and the decoder/head
    /// GEMMs are row-wise bitwise equal at any batch size, so candidate
    /// `k`'s rows are bitwise identical whether it is scored alone or in a
    /// batch — the determinism the risk scorer's mean/σ relies on.
    pub fn forward_inference_sampled(
        &self,
        store: &ParamStore,
        x: &Tensor,
        eps: &Tensor,
        sc: &mut ScratchArena,
    ) -> Tensor {
        assert_eq!(eps.cols(), self.latent, "eps must be [samples, latent]");
        let h = self.encoder.forward_inference(store, x, sc); // [K, 2*latent]
        let k = h.rows();
        let s = eps.rows();
        let mut z = sc.take(s * k, self.latent);
        for r in 0..k {
            let hr = h.row_slice(r);
            for si in 0..s {
                let er = eps.row_slice(si);
                let zr = z.row_slice_mut(si * k + r);
                for j in 0..self.latent {
                    let mu = hr[j];
                    let logvar = 8.0 * hr[self.latent + j].tanh();
                    zr[j] = mu + (0.5 * logvar).exp() * er[j];
                }
            }
        }
        sc.recycle(h);
        let reconstruction = self.decoder.forward_inference(store, &z, sc);
        sc.recycle(z);
        let predictions = self.head.forward_inference(store, &reconstruction, sc);
        sc.recycle(reconstruction);
        predictions
    }

    /// [`Self::forward_inference_sampled`] generalized to a *per-row* eps
    /// block: row `r` of `x` is sampled against `eps_of[r]` (`[S, latent]`,
    /// same `S` for every row). This is the broker-fused risk path — rows
    /// from different queries carry their own seeded draws through one
    /// batched pass. Output stays sample-major (`[S*K, 3]`, row `si*K + r`
    /// for row `r`'s sample `si`), and the per-(row, sample) arithmetic is
    /// identical to the single-eps entry, so each row's samples are bitwise
    /// equal to a per-request call with its own eps.
    pub fn forward_inference_sampled_multi(
        &self,
        store: &ParamStore,
        x: &Tensor,
        eps_of: &[&Tensor],
        sc: &mut ScratchArena,
    ) -> Tensor {
        let k = x.rows();
        assert_eq!(eps_of.len(), k, "one eps block per row");
        let s = eps_of[0].rows();
        for eps in eps_of {
            assert_eq!(eps.rows(), s, "eps blocks must agree on sample count");
            assert_eq!(eps.cols(), self.latent, "eps must be [samples, latent]");
        }
        let h = self.encoder.forward_inference(store, x, sc); // [K, 2*latent]
        let mut z = sc.take(s * k, self.latent);
        for (r, eps_r) in eps_of.iter().enumerate() {
            let hr = h.row_slice(r);
            for si in 0..s {
                let er = eps_r.row_slice(si);
                let zr = z.row_slice_mut(si * k + r);
                for j in 0..self.latent {
                    let mu = hr[j];
                    let logvar = 8.0 * hr[self.latent + j].tanh();
                    zr[j] = mu + (0.5 * logvar).exp() * er[j];
                }
            }
        }
        sc.recycle(h);
        let reconstruction = self.decoder.forward_inference(store, &z, sc);
        sc.recycle(z);
        let predictions = self.head.forward_inference(store, &reconstruction, sc);
        sc.recycle(reconstruction);
        predictions
    }

    /// The paper's loss (formula 5) plus prediction MSE:
    /// `pred_mse + recon_mse + β · KL` with KL averaged per latent element
    /// so that the paper's β ∈ {100, 200, 300} stays in a workable range.
    pub fn loss(
        &self,
        g: &mut Graph,
        out: &VaeOutput,
        x: Var,
        targets: Var,
        beta: f64,
    ) -> (Var, Var, Var, Var) {
        let recon = g.mse(out.reconstruction, x);
        let pred = g.mse(out.predictions, targets);
        let kl_sum = g.kl_standard_normal(out.mu, out.logvar);
        // Per-element KL (divide by latent width) keeps β≈100 comparable to
        // the MSE scale.
        let kl = g.scale(kl_sum, 1.0 / self.latent as f32);
        let weighted_kl = g.scale(kl, beta as f32 * 1e-3);
        let s1 = g.add(recon, pred);
        let total = g.add(s1, weighted_kl);
        (total, recon, pred, kl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cfg: &ModelConfig) -> (ParamStore, CostModeler) {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(1);
        let vae = CostModeler::new(&mut store, &mut init, cfg);
        (store, vae)
    }

    #[test]
    fn forward_shapes() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut g = Graph::new();
        let mut init = Initializer::new(2);
        let x = g.constant(init.normal(4, cfg.joint_dim(), 1.0));
        let eps = init.standard_normal(4, cfg.vae_latent);
        let out = vae.forward(&mut g, &store, x, eps);
        assert_eq!(g.value(out.mu).shape(), (4, cfg.vae_latent));
        assert_eq!(g.value(out.logvar).shape(), (4, cfg.vae_latent));
        assert_eq!(g.value(out.z).shape(), (4, cfg.vae_latent));
        assert_eq!(g.value(out.reconstruction).shape(), (4, cfg.joint_dim()));
        assert_eq!(g.value(out.predictions).shape(), (4, 3));
    }

    #[test]
    fn logvar_is_bounded() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut g = Graph::new();
        let mut init = Initializer::new(3);
        let x = g.constant(init.normal(2, cfg.joint_dim(), 50.0)); // extreme inputs
        let out = vae.forward(&mut g, &store, x, Tensor::zeros(2, cfg.vae_latent));
        for &v in g.value(out.logvar).data() {
            assert!((-8.0..=8.0).contains(&v));
        }
    }

    #[test]
    fn zero_eps_makes_inference_deterministic() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut init = Initializer::new(4);
        let xt = init.normal(1, cfg.joint_dim(), 1.0);
        let run = |store: &ParamStore| {
            let mut g = Graph::new();
            let x = g.constant(xt.clone());
            let out = vae.forward(&mut g, store, x, Tensor::zeros(1, cfg.vae_latent));
            g.value(out.predictions).data().to_vec()
        };
        assert_eq!(run(&store), run(&store));
    }

    #[test]
    fn batched_vae_inference_bitwise_equals_scalar() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut init = Initializer::new(8);
        let x = init.normal(5, cfg.joint_dim(), 1.0);
        let mut sc = ScratchArena::new();
        let batched = vae.forward_inference_batch(&store, &x, &mut sc);
        assert_eq!(batched.shape(), (5, 3));
        for r in 0..5 {
            let row = Tensor::from_vec(1, cfg.joint_dim(), x.row_slice(r).to_vec());
            let (single, _mu) = vae.forward_inference(&store, &row, &mut sc);
            assert_eq!(batched.row_slice(r), single.data(), "row {r} differs");
            sc.recycle(single);
        }
    }

    #[test]
    fn sampled_inference_with_zero_eps_matches_mean_path() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut init = Initializer::new(9);
        let x = init.normal(3, cfg.joint_dim(), 1.0);
        let mut sc = ScratchArena::new();
        let mean = vae.forward_inference_batch(&store, &x, &mut sc);
        let eps = Tensor::zeros(2, cfg.vae_latent);
        let sampled = vae.forward_inference_sampled(&store, &x, &eps, &mut sc);
        assert_eq!(sampled.shape(), (2 * 3, 3));
        for s in 0..2 {
            for k in 0..3 {
                assert_eq!(sampled.row_slice(s * 3 + k), mean.row_slice(k), "sample {s} row {k}");
            }
        }
    }

    #[test]
    fn sampled_inference_batched_bitwise_equals_scalar() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut init = Initializer::new(10);
        let x = init.normal(4, cfg.joint_dim(), 1.0);
        let eps = Initializer::new(11).standard_normal(3, cfg.vae_latent);
        let mut sc = ScratchArena::new();
        let batched = vae.forward_inference_sampled(&store, &x, &eps, &mut sc);
        assert_eq!(batched.shape(), (3 * 4, 3));
        for k in 0..4 {
            let row = Tensor::from_vec(1, cfg.joint_dim(), x.row_slice(k).to_vec());
            let single = vae.forward_inference_sampled(&store, &row, &eps, &mut sc);
            for s in 0..3 {
                assert_eq!(
                    batched.row_slice(s * 4 + k),
                    single.row_slice(s),
                    "candidate {k} sample {s} differs"
                );
            }
            sc.recycle(single);
        }
    }

    #[test]
    fn loss_components_nonnegative_and_beta_scales_kl() {
        let cfg = ModelConfig::small();
        let (store, vae) = setup(&cfg);
        let mut init = Initializer::new(5);
        let xt = init.normal(3, cfg.joint_dim(), 1.0);
        let tt = init.normal(3, 3, 1.0);
        let eval = |beta: f64, store: &ParamStore| -> (f32, f32) {
            let mut g = Graph::new();
            let x = g.constant(xt.clone());
            let t = g.constant(tt.clone());
            let eps = Initializer::new(6).standard_normal(3, cfg.vae_latent);
            let out = vae.forward(&mut g, store, x, eps);
            let (total, _recon, _pred, kl) = vae.loss(&mut g, &out, x, t, beta);
            (g.value(total).get(0, 0), g.value(kl).get(0, 0))
        };
        let (t100, kl100) = eval(100.0, &store);
        let (t300, kl300) = eval(300.0, &store);
        assert!(t100 > 0.0 && kl100 >= 0.0);
        assert_eq!(kl100, kl300, "raw KL independent of beta");
        assert!(t300 >= t100, "larger beta weights KL more");
    }

    #[test]
    fn vae_trains_to_reduce_loss() {
        let cfg = ModelConfig::small();
        let (mut store, vae) = setup(&cfg);
        let mut init = Initializer::new(7);
        let xt = init.normal(8, cfg.joint_dim(), 1.0);
        let tt = init.normal(8, 3, 1.0);
        let mut opt = Adam::new(1e-3);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..60 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.constant(xt.clone());
            let t = g.constant(tt.clone());
            let eps = Initializer::new(100 + step).standard_normal(8, cfg.vae_latent);
            let out = vae.forward(&mut g, &store, x, eps);
            let (total, _, _, _) = vae.loss(&mut g, &out, x, t, 100.0);
            last = g.backward(total, &mut store);
            if first.is_none() {
                first = Some(last);
            }
            opt.step(&mut store);
        }
        assert!(
            last < 0.7 * first.unwrap(),
            "VAE loss should drop: {} -> {}",
            first.unwrap(),
            last
        );
    }
}
