//! Fingerprinted plan cache — the prepared-statement fast path.
//!
//! Repeated traffic is the norm in production planners: the same query
//! template arrives thousands of times with identical structure. The cache
//! maps a **normalized query-graph fingerprint** to the plan MCTS chose and
//! the runtime it predicted, so a repeat skips the search entirely. The
//! fingerprint ([`query_fingerprint`]) is a Weisfeiler–Lehman-style hash of
//! the join graph: invariant to join-predicate ordering, filter ordering and
//! consistent alias renaming, but sensitive to any structural change (an
//! extra filter, a different join column, another relation).
//!
//! Safety over speed:
//!
//! * a fingerprint hit is confirmed against the stored query's actual
//!   relation/join/filter sets before the plan is served, so a hash
//!   collision (or an alias-renamed twin whose stored plan would not
//!   validate verbatim) degrades to a miss, never to a wrong plan;
//! * every entry is stamped with the **publication epoch** of the model that
//!   produced it, the tenant's **stats version**, and the **search-strategy
//!   stamp** (strategy kind, beam width, risk λ and sample count) it was
//!   planned under. A lookup passes the epoch the request resolved from the
//!   [`crate::registry::ModelCell`], the current stats version and the
//!   request's strategy stamp; any mismatch is a miss. Model hot-swaps,
//!   rollbacks, registry evictions (which keep epochs monotonic per tenant),
//!   stats refreshes and strategy or λ changes therefore invalidate stale
//!   entries *implicitly* — there is no purge to order against the swap,
//!   hence no window in which an old plan can be served against a new model
//!   (or a risk-neutral plan against a risk-averse request).
//!
//! The map is sharded by key hash; each shard is an independently locked
//! LRU. Lock hold times are a hash probe or an O(capacity) eviction scan.

use crate::fnv::FnvBuild;
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// FNV-1a over a byte slice (local helper; the offset basis/prime match
/// [`crate::durable::fnv64`]).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Combine hash words order-dependently.
fn combine(words: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Combine a multiset of hash words order-independently (sort, then fold).
fn combine_sorted(mut words: Vec<u64>) -> u64 {
    words.sort_unstable();
    combine(&words)
}

/// Weisfeiler–Lehman refinement rounds. Three rounds separate every
/// non-isomorphic join graph in the ≤ 18-relation regime the workloads
/// generate; symmetric graphs that survive refinement are disambiguated by
/// the exact-match confirmation on lookup, never served wrongly.
const WL_ROUNDS: usize = 3;

/// Normalized fingerprint of a query's join graph.
///
/// Aliases never enter the hash — each relation's label is grown from its
/// base table, its filter multiset, and (per refinement round) the labels of
/// its join neighbors with the join columns on both ends. Join predicates
/// hash commutatively (left/right swap is the same edge) and all multisets
/// are sorted before folding, so the fingerprint is invariant to:
///
/// * the order of `query.joins`, `query.filters` and `query.relations`,
/// * the orientation of each join predicate,
/// * consistently renaming aliases (`t1`→`x`, `t2`→`y`, ...).
pub fn query_fingerprint(query: &Query) -> u64 {
    let n = query.relations.len();
    // Round-0 label: base table + this alias's filter multiset.
    let mut labels: Vec<u64> = query
        .relations
        .iter()
        .map(|r| {
            let filters = combine_sorted(
                query
                    .filters
                    .iter()
                    .filter(|f| f.col.alias == r.alias)
                    .map(|f| {
                        combine(&[fnv(f.col.column.as_bytes()), f.op as u64, f.value.to_bits()])
                    })
                    .collect(),
            );
            combine(&[fnv(r.table.as_bytes()), filters])
        })
        .collect();

    let idx_of = |alias: &str| query.relations.iter().position(|r| r.alias == alias);
    for _ in 0..WL_ROUNDS {
        let next: Vec<u64> = query
            .relations
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut edges: Vec<u64> = Vec::new();
                for j in &query.joins {
                    let (local, remote) = if j.left.alias == r.alias {
                        (&j.left, &j.right)
                    } else if j.right.alias == r.alias {
                        (&j.right, &j.left)
                    } else {
                        continue;
                    };
                    let Some(k) = idx_of(&remote.alias) else { continue };
                    edges.push(combine(&[
                        fnv(local.column.as_bytes()),
                        fnv(remote.column.as_bytes()),
                        labels[k],
                    ]));
                }
                combine(&[labels[i], combine_sorted(edges)])
            })
            .collect();
        labels = next;
    }

    // Fold: relation-label multiset + commutative edge multiset.
    let rel_part = combine_sorted(labels.clone());
    let edge_part = combine_sorted(
        query
            .joins
            .iter()
            .filter_map(|j| {
                let (l, r) = (idx_of(&j.left.alias)?, idx_of(&j.right.alias)?);
                let mut ends = [
                    combine(&[labels[l], fnv(j.left.column.as_bytes())]),
                    combine(&[labels[r], fnv(j.right.column.as_bytes())]),
                ];
                ends.sort_unstable();
                Some(combine(&ends))
            })
            .collect(),
    );
    combine(&[n as u64, rel_part, edge_part])
}

/// One cached planning result.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    pub plan: PlanNode,
    /// The model's runtime prediction for the plan, exactly as MCTS
    /// reported it on the caching run.
    pub predicted_ms: f64,
    /// Publication epoch of the model that produced the plan.
    pub epoch: u64,
    /// Tenant stats version the plan was costed under.
    pub stats_version: u64,
    /// Search-strategy stamp ([`crate::search::strategy::StrategyConfig::
    /// cache_stamp`]) the plan was found under: strategy kind, beam width
    /// and risk (λ, samples). A λ = 0.5 plan is a different artifact than
    /// the λ = 0 plan of the same query — a lookup under a different
    /// strategy must miss, never serve the foreign plan.
    pub strategy: u64,
}

struct Entry {
    /// Exact query the entry was built from; a fingerprint hit must match
    /// it structurally before the plan is served (collision/rename guard).
    query: Query,
    cached: CachedPlan,
    last_used: u64,
}

/// True when `a` and `b` are the same query for plan-reuse purposes: same
/// relation list (order included — MCTS action numbering follows it), same
/// join-predicate multiset, same filter multiset. Predicate *ordering* is
/// deliberately ignored: the stored plan embeds its own predicate order and
/// remains valid, and MCTS plan choice does not depend on predicate order.
fn same_query(a: &Query, b: &Query) -> bool {
    if a.relations != b.relations
        || a.joins.len() != b.joins.len()
        || a.filters.len() != b.filters.len()
    {
        return false;
    }
    let mut bj: Vec<&qpseeker_engine::query::JoinPred> = b.joins.iter().collect();
    for j in &a.joins {
        match bj.iter().position(|x| *x == j) {
            Some(k) => {
                bj.swap_remove(k);
            }
            None => return false,
        }
    }
    let mut bf: Vec<&qpseeker_engine::query::Filter> = b.filters.iter().collect();
    for f in &a.filters {
        match bf.iter().position(|x| *x == f) {
            Some(k) => {
                bf.swap_remove(k);
            }
            None => return false,
        }
    }
    true
}

/// Monotonic cache statistics (atomics: shards update them lock-free).
#[derive(Debug, Default)]
struct CacheStatsInner {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    /// Fingerprint matched but the epoch or stats version was stale.
    stale_rejects: AtomicU64,
    /// Fingerprint matched but the structural confirmation failed.
    mismatch_rejects: AtomicU64,
}

/// Snapshot of [`PlanCache`] statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub stale_rejects: u64,
    pub mismatch_rejects: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} (rate {:.1}%) inserted={} evicted={} invalidated={} stale={} mismatched={}",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.insertions,
            self.evictions,
            self.invalidations,
            self.stale_rejects,
            self.mismatch_rejects,
        )
    }
}

/// One shard's table: `(tenant hash, fingerprint)` → entry.
type Shard = HashMap<(u64, u64), Entry, FnvBuild>;

/// Sharded fingerprint → plan cache (see module docs for the invalidation
/// protocol). Keys are `(tenant, fingerprint)`; shard choice hashes both so
/// one tenant's hot templates spread across locks.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    stats: CacheStatsInner,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl PlanCache {
    /// A cache of `shards` independently locked maps, each holding at most
    /// `per_shard_capacity` entries (LRU within the shard). Both floors at 1.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::default())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
            tick: AtomicU64::new(0),
            stats: CacheStatsInner::default(),
        }
    }

    fn key(&self, tenant: &str, fp: u64) -> (u64, u64) {
        (fnv(tenant.as_bytes()), fp)
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<HashMap<(u64, u64), Entry, FnvBuild>> {
        let h = combine(&[key.0, key.1]);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn lock<'a>(
        m: &'a Mutex<HashMap<(u64, u64), Entry, FnvBuild>>,
    ) -> MutexGuard<'a, HashMap<(u64, u64), Entry, FnvBuild>> {
        // Entries are replaced whole under the lock; a panicking inserter
        // cannot leave a torn entry, so poison recovery is safe.
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look up `query` for `tenant`. `epoch` is the publication epoch of the
    /// model the caller resolved for this request; `stats_version` the
    /// tenant's current statistics version; `strategy` the request's search
    /// strategy stamp. Returns the cached plan only if it was produced at
    /// exactly that `(epoch, stats_version, strategy)` and the stored query
    /// matches structurally.
    pub fn lookup(
        &self,
        tenant: &str,
        query: &Query,
        fp: u64,
        epoch: u64,
        stats_version: u64,
        strategy: u64,
    ) -> Option<CachedPlan> {
        let key = self.key(tenant, fp);
        let mut map = Self::lock(self.shard(key));
        let Some(entry) = map.get_mut(&key) else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if entry.cached.epoch != epoch
            || entry.cached.stats_version != stats_version
            || entry.cached.strategy != strategy
        {
            // Stale: drop it now so the slot is free for the fresh plan.
            map.remove(&key);
            self.stats.stale_rejects.fetch_add(1, Ordering::Relaxed);
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if !same_query(&entry.query, query) {
            self.stats.mismatch_rejects.fetch_add(1, Ordering::Relaxed);
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.cached.clone())
    }

    /// Insert a freshly planned result. The entry is stamped with the epoch
    /// and stats version the *request* planned under; if a swap landed since,
    /// the entry is already stale and every future lookup rejects it.
    pub fn insert(&self, tenant: &str, query: &Query, fp: u64, cached: CachedPlan) {
        let key = self.key(tenant, fp);
        let mut map = Self::lock(self.shard(key));
        if map.len() >= self.per_shard_capacity && !map.contains_key(&key) {
            // Evict the shard's least-recently-used entry.
            if let Some(&victim) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k) {
                map.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Entry { query: query.clone(), cached, last_used });
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry belonging to `tenant`. Epoch stamping already makes
    /// stale entries unservable; this frees their memory eagerly (registry
    /// eviction calls it so an evicted tenant holds no cache residue).
    pub fn invalidate_tenant(&self, tenant: &str) {
        let t = fnv(tenant.as_bytes());
        for shard in &self.shards {
            let mut map = Self::lock(shard);
            let before = map.len();
            map.retain(|k, _| k.0 != t);
            let dropped = (before - map.len()) as u64;
            if dropped > 0 {
                self.stats.invalidations.fetch_add(dropped, Ordering::Relaxed);
            }
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut map = Self::lock(shard);
            let dropped = map.len() as u64;
            map.clear();
            self.stats.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
            stale_rejects: self.stats.stale_rejects.load(Ordering::Relaxed),
            mismatch_rejects: self.stats.mismatch_rejects.load(Ordering::Relaxed),
        }
    }
}

/// Cache context one serving lane carries: the shared cache plus the
/// tenant identity and stats version its lookups are scoped to.
#[derive(Debug, Clone)]
pub struct PlanCacheCtx {
    pub cache: std::sync::Arc<PlanCache>,
    pub tenant: String,
    pub stats_version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::plan::ScanOp;
    use qpseeker_engine::query::{CmpOp, ColRef, Filter, JoinPred, Query, RelRef};

    fn three_way() -> Query {
        let mut q = Query::new("q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("cast_info")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("cast_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q.filters = vec![Filter {
            col: ColRef::new("title", "production_year"),
            op: CmpOp::Gt,
            value: 2000.0,
        }];
        q
    }

    fn rename(q: &Query, map: &[(&str, &str)]) -> Query {
        let sub = |a: &str| -> String {
            map.iter()
                .find(|(from, _)| *from == a)
                .map(|(_, to)| to.to_string())
                .unwrap_or_else(|| a.to_string())
        };
        let mut out = q.clone();
        for r in &mut out.relations {
            r.alias = sub(&r.alias);
        }
        for j in &mut out.joins {
            j.left.alias = sub(&j.left.alias);
            j.right.alias = sub(&j.right.alias);
        }
        for f in &mut out.filters {
            f.col.alias = sub(&f.col.alias);
        }
        out
    }

    #[test]
    fn fingerprint_invariant_to_predicate_order_and_orientation() {
        let q = three_way();
        let fp = query_fingerprint(&q);
        let mut shuffled = q.clone();
        shuffled.joins.reverse();
        assert_eq!(query_fingerprint(&shuffled), fp, "join order must not matter");
        let mut flipped = q.clone();
        let j = &mut flipped.joins[0];
        std::mem::swap(&mut j.left, &mut j.right);
        assert_eq!(query_fingerprint(&flipped), fp, "join orientation must not matter");
        let mut rels = q.clone();
        rels.relations.rotate_left(1);
        assert_eq!(query_fingerprint(&rels), fp, "relation order must not matter");
    }

    #[test]
    fn fingerprint_invariant_to_alias_renaming() {
        let q = three_way();
        let renamed = rename(&q, &[("title", "t"), ("movie_info", "mi"), ("cast_info", "ci")]);
        assert_eq!(query_fingerprint(&renamed), query_fingerprint(&q));
    }

    #[test]
    fn fingerprint_separates_structural_changes() {
        let q = three_way();
        let fp = query_fingerprint(&q);
        let mut extra_filter = q.clone();
        extra_filter.filters.push(Filter {
            col: ColRef::new("movie_info", "info_type_id"),
            op: CmpOp::Eq,
            value: 3.0,
        });
        assert_ne!(query_fingerprint(&extra_filter), fp);
        let mut other_value = q.clone();
        other_value.filters[0].value = 1990.0;
        assert_ne!(query_fingerprint(&other_value), fp);
        let mut other_col = q.clone();
        other_col.joins[0].left.column = "info_type_id".into();
        assert_ne!(query_fingerprint(&other_col), fp);
        let mut fewer = q.clone();
        fewer.joins.pop();
        fewer.relations.pop();
        assert_ne!(query_fingerprint(&fewer), fp);
    }

    fn plan_for(q: &Query) -> PlanNode {
        let mut node = PlanNode::scan(q, &q.relations[0].alias, ScanOp::SeqScan);
        for r in &q.relations[1..] {
            node = PlanNode::Join {
                op: qpseeker_engine::plan::JoinOp::HashJoin,
                left: Box::new(node),
                right: Box::new(PlanNode::scan(q, &r.alias, ScanOp::SeqScan)),
                preds: q.joins.iter().filter(|j| j.touches(&r.alias)).cloned().collect(),
            };
        }
        node
    }

    #[test]
    fn hit_requires_matching_epoch_and_stats_version() {
        let cache = PlanCache::new(4, 16);
        let q = three_way();
        let fp = query_fingerprint(&q);
        let cached = CachedPlan {
            plan: plan_for(&q),
            predicted_ms: 1.5,
            epoch: 3,
            stats_version: 1,
            strategy: 0,
        };
        cache.insert("tenant-a", &q, fp, cached);
        assert!(cache.lookup("tenant-a", &q, fp, 3, 1, 0).is_some());
        assert!(cache.lookup("tenant-a", &q, fp, 4, 1, 0).is_none(), "new epoch: stale");
        // The stale probe evicted the entry; re-insert to test stats skew.
        let cached = CachedPlan {
            plan: plan_for(&q),
            predicted_ms: 1.5,
            epoch: 3,
            stats_version: 1,
            strategy: 0,
        };
        cache.insert("tenant-a", &q, fp, cached);
        assert!(cache.lookup("tenant-a", &q, fp, 3, 2, 0).is_none(), "stats refresh: stale");
        let s = cache.stats();
        assert_eq!(s.stale_rejects, 2);
    }

    #[test]
    fn strategy_switch_never_returns_a_foreign_plan() {
        use crate::search::strategy::{StrategyConfig, StrategyKind};
        let cache = PlanCache::new(4, 16);
        let q = three_way();
        let fp = query_fingerprint(&q);
        let mcts = StrategyConfig::default().cache_stamp();
        let beam = StrategyConfig { kind: StrategyKind::Beam, ..Default::default() }.cache_stamp();
        let risky = StrategyConfig { risk_lambda: 0.5, ..Default::default() }.cache_stamp();
        assert_ne!(mcts, beam);
        assert_ne!(mcts, risky);
        cache.insert(
            "a",
            &q,
            fp,
            CachedPlan {
                plan: plan_for(&q),
                predicted_ms: 1.0,
                epoch: 0,
                stats_version: 0,
                strategy: mcts,
            },
        );
        // Same (tenant, epoch, stats) under a different strategy or λ must
        // miss — the cached plan belongs to the other strategy's search.
        assert!(cache.lookup("a", &q, fp, 0, 0, beam).is_none(), "beam must not see mcts plan");
        let s = cache.stats();
        assert_eq!(s.stale_rejects, 1);
        // The stale probe evicted the entry; re-insert under λ = 0.5 and
        // confirm the λ = 0 request misses too.
        cache.insert(
            "a",
            &q,
            fp,
            CachedPlan {
                plan: plan_for(&q),
                predicted_ms: 1.0,
                epoch: 0,
                stats_version: 0,
                strategy: risky,
            },
        );
        assert!(cache.lookup("a", &q, fp, 0, 0, mcts).is_none(), "λ=0 must not see λ=0.5 plan");
        cache.insert(
            "a",
            &q,
            fp,
            CachedPlan {
                plan: plan_for(&q),
                predicted_ms: 1.0,
                epoch: 0,
                stats_version: 0,
                strategy: risky,
            },
        );
        assert!(cache.lookup("a", &q, fp, 0, 0, risky).is_some(), "matching stamp still hits");
    }

    #[test]
    fn tenants_do_not_share_entries() {
        let cache = PlanCache::new(4, 16);
        let q = three_way();
        let fp = query_fingerprint(&q);
        cache.insert(
            "a",
            &q,
            fp,
            CachedPlan {
                plan: plan_for(&q),
                predicted_ms: 1.0,
                epoch: 0,
                stats_version: 0,
                strategy: 0,
            },
        );
        assert!(cache.lookup("b", &q, fp, 0, 0, 0).is_none());
        assert!(cache.lookup("a", &q, fp, 0, 0, 0).is_some());
        cache.invalidate_tenant("a");
        assert!(cache.lookup("a", &q, fp, 0, 0, 0).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn structural_mismatch_on_fingerprint_hit_degrades_to_miss() {
        let cache = PlanCache::new(1, 16);
        let q = three_way();
        let fp = query_fingerprint(&q);
        cache.insert(
            "a",
            &q,
            fp,
            CachedPlan {
                plan: plan_for(&q),
                predicted_ms: 1.0,
                epoch: 0,
                stats_version: 0,
                strategy: 0,
            },
        );
        // An alias-renamed twin shares the fingerprint but its stored plan
        // names the old aliases — must degrade to a miss, not a wrong plan.
        let renamed = rename(&q, &[("title", "t")]);
        assert_eq!(query_fingerprint(&renamed), fp);
        assert!(cache.lookup("a", &renamed, fp, 0, 0, 0).is_none());
        assert_eq!(cache.stats().mismatch_rejects, 1);
    }

    #[test]
    fn lru_eviction_respects_per_shard_capacity() {
        let cache = PlanCache::new(1, 2);
        let mk = |year: f64| {
            let mut q = three_way();
            q.filters[0].value = year;
            q
        };
        for year in [1990.0, 1991.0, 1992.0] {
            let q = mk(year);
            let fp = query_fingerprint(&q);
            cache.insert(
                "a",
                &q,
                fp,
                CachedPlan {
                    plan: plan_for(&q),
                    predicted_ms: 1.0,
                    epoch: 0,
                    stats_version: 0,
                    strategy: 0,
                },
            );
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest entry (1990) was the LRU victim.
        let q0 = mk(1990.0);
        assert!(cache.lookup("a", &q0, query_fingerprint(&q0), 0, 0, 0).is_none());
        let q2 = mk(1992.0);
        assert!(cache.lookup("a", &q2, query_fingerprint(&q2), 0, 0, 0).is_some());
    }
}
