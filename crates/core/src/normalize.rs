//! Target normalization: `ln(1+x)` + z-score per target (cardinality, cost,
//! runtime). The same transform is applied to the EXPLAIN estimates that the
//! plan encoder consumes, so inputs and outputs share one scale.

use serde::{Deserialize, Serialize};

/// Index conventions for the 3 target values.
pub const CARD: usize = 0;
pub const COST: usize = 1;
pub const TIME: usize = 2;

/// Per-target log-space normalizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetNormalizer {
    pub mean: [f64; 3],
    pub std: [f64; 3],
}

impl TargetNormalizer {
    /// Fit from raw (cardinality, cost, runtime) triples.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn fit(targets: &[[f64; 3]]) -> Self {
        assert!(!targets.is_empty(), "cannot fit normalizer on empty targets");
        let n = targets.len() as f64;
        let mut mean = [0.0; 3];
        for t in targets {
            for (m, &v) in mean.iter_mut().zip(t) {
                *m += v.max(0.0).ln_1p() / n;
            }
        }
        let mut var = [0.0; 3];
        for t in targets {
            for i in 0..3 {
                let d = t[i].max(0.0).ln_1p() - mean[i];
                var[i] += d * d / n;
            }
        }
        // Floor the stds: near-constant training targets would otherwise
        // turn slightly-off EXPLAIN estimates into astronomical z-scores.
        let std = var.map(|v| v.sqrt().max(0.05));
        Self { mean, std }
    }

    /// Raw → normalized (f32 for the network). Z-scores are clamped to
    /// ±10: estimates far outside the training distribution must not blow
    /// up the encoder inputs.
    pub fn encode(&self, raw: [f64; 3]) -> [f32; 3] {
        let mut out = [0.0f32; 3];
        for i in 0..3 {
            let z = (raw[i].max(0.0).ln_1p() - self.mean[i]) / self.std[i];
            out[i] = z.clamp(-10.0, 10.0) as f32;
        }
        out
    }

    /// Normalized → raw (clamped to ≥ 0). NaN inputs stay NaN — `max(0.0)`
    /// must not launder a poisoned prediction into a plausible zero, or the
    /// serving watchdog can never catch it.
    pub fn decode(&self, norm: [f32; 3]) -> [f64; 3] {
        let mut out = [0.0f64; 3];
        for i in 0..3 {
            let ln1p = norm[i] as f64 * self.std[i] + self.mean[i];
            out[i] = if ln1p.is_nan() {
                f64::NAN
            } else {
                (ln1p.clamp(-10.0, 60.0).exp() - 1.0).max(0.0)
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<[f64; 3]> {
        (1..100).map(|i| [i as f64 * 10.0, i as f64 * 3.0, i as f64 * 0.5]).collect()
    }

    #[test]
    fn round_trip() {
        let n = TargetNormalizer::fit(&samples());
        for raw in [[5.0, 2.0, 0.1], [1000.0, 300.0, 50.0], [0.0, 0.0, 0.0]] {
            let dec = n.decode(n.encode(raw));
            for i in 0..3 {
                assert!(
                    (dec[i] - raw[i]).abs() < 1e-2 * (1.0 + raw[i]),
                    "target {i}: {} vs {}",
                    dec[i],
                    raw[i]
                );
            }
        }
    }

    #[test]
    fn normalized_training_set_is_standardized() {
        let s = samples();
        let n = TargetNormalizer::fit(&s);
        let encoded: Vec<[f32; 3]> = s.iter().map(|&t| n.encode(t)).collect();
        for i in 0..3 {
            let mean: f32 = encoded.iter().map(|e| e[i]).sum::<f32>() / encoded.len() as f32;
            let var: f32 = encoded.iter().map(|e| (e[i] - mean) * (e[i] - mean)).sum::<f32>()
                / encoded.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn decode_propagates_nan() {
        let n = TargetNormalizer::fit(&samples());
        let d = n.decode([f32::NAN, 0.0, f32::NAN]);
        assert!(d[0].is_nan(), "NaN must survive decode for watchdog detection");
        assert!(d[1].is_finite());
        assert!(d[2].is_nan());
    }

    #[test]
    fn decode_is_monotone() {
        let n = TargetNormalizer::fit(&samples());
        let lo = n.decode([-1.0, -1.0, -1.0]);
        let mid = n.decode([0.0, 0.0, 0.0]);
        let hi = n.decode([1.0, 1.0, 1.0]);
        for i in 0..3 {
            assert!(lo[i] < mid[i] && mid[i] < hi[i]);
        }
    }

    #[test]
    fn degenerate_constant_targets_do_not_blow_up() {
        let n = TargetNormalizer::fit(&vec![[5.0, 5.0, 5.0]; 10]);
        let e = n.encode([5.0, 5.0, 5.0]);
        assert!(e.iter().all(|v| v.is_finite()));
        let d = n.decode(e);
        assert!((d[0] - 5.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "empty targets")]
    fn empty_fit_panics() {
        TargetNormalizer::fit(&[]);
    }
}
