//! Latent-space visualization: exact t-SNE (for Fig. 5) and a silhouette
//! score quantifying how well QEPs cluster by query template.

/// t-SNE configuration.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    pub perplexity: f64,
    pub iterations: usize,
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of iterations.
    pub exaggeration: f64,
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self { perplexity: 15.0, iterations: 400, learning_rate: 10.0, exaggeration: 1.0, seed: 7 }
    }
}

/// Project high-dimensional points to 2-d with exact (O(n²)) t-SNE.
///
/// # Panics
/// Panics when fewer than 3 points are given.
pub fn tsne(points: &[Vec<f32>], cfg: &TsneConfig) -> Vec<[f64; 2]> {
    let n = points.len();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let p = joint_probabilities(points, cfg.perplexity);

    // Deterministic small random init.
    let mut state = cfg.seed ^ 0x9e3779b97f4a7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        ((z ^ (z >> 31)) >> 40) as f64 / (1u64 << 24) as f64 - 0.5
    };
    let mut y: Vec<[f64; 2]> = (0..n).map(|_| [next() * 1e-2, next() * 1e-2]).collect();
    let mut vel: Vec<[f64; 2]> = vec![[0.0; 2]; n];
    // Per-coordinate adaptive gains (van der Maaten's reference scheme):
    // grow when gradient and velocity agree in direction, shrink otherwise.
    let mut gains: Vec<[f64; 2]> = vec![[1.0; 2]; n];

    let exag_iters = cfg.iterations / 4;
    for iter in 0..cfg.iterations {
        let exag = if iter < exag_iters { cfg.exaggeration } else { 1.0 };
        // Student-t affinities in the embedding.
        let mut q = vec![0.0f64; n * n];
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                q_sum += 2.0 * w;
            }
        }
        let q_sum = q_sum.max(1e-12);
        // Gradient.
        let momentum = if iter < exag_iters { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let pij = p[i * n + j] * exag;
                let qij = (w / q_sum).max(1e-12);
                let mult = 4.0 * (pij - qij) * w;
                grad[0] += mult * (y[i][0] - y[j][0]);
                grad[1] += mult * (y[i][1] - y[j][1]);
            }
            for d in 0..2 {
                gains[i][d] = if grad[d].signum() != vel[i][d].signum() {
                    (gains[i][d] + 0.2).min(10.0)
                } else {
                    (gains[i][d] * 0.8).max(0.01)
                };
                vel[i][d] = momentum * vel[i][d] - cfg.learning_rate * gains[i][d] * grad[d];
                y[i][d] += vel[i][d];
            }
        }
    }
    y
}

/// Symmetric joint probabilities with per-point sigma found by binary
/// search to match the target perplexity.
fn joint_probabilities(points: &[Vec<f32>], perplexity: f64) -> Vec<f64> {
    let n = points.len();
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| ((a - b) as f64) * ((a - b) as f64))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }
    let target_entropy = perplexity.min((n - 1) as f64).max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let (mut lo, mut hi) = (1e-12f64, 1e12f64);
        let mut beta = 1.0; // 1 / (2 sigma²)
        for _ in 0..50 {
            let mut sum = 0.0;
            let mut h = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = (-d2[i * n + j] * beta).exp();
                sum += w;
            }
            let sum = sum.max(1e-300);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pj = (-d2[i * n + j] * beta).exp() / sum;
                if pj > 1e-12 {
                    h -= pj * pj.ln();
                }
            }
            if (h - target_entropy).abs() < 1e-4 {
                break;
            }
            if h > target_entropy {
                lo = beta;
                beta = if hi >= 1e12 { beta * 2.0 } else { (beta + hi) / 2.0 };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if i != j {
                let w = (-d2[i * n + j] * beta).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            p[i * n + j] /= sum;
        }
    }
    // Symmetrize and normalize.
    let mut joint = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    joint
}

/// Mean silhouette coefficient of a labeled point set (1 = perfectly
/// separated clusters, 0 = overlapping, negative = misassigned). Used to
/// quantify Fig. 5's "QEPs from the same template cluster together".
pub fn silhouette(points: &[Vec<f32>], labels: &[usize]) -> f64 {
    assert_eq!(points.len(), labels.len());
    let n = points.len();
    assert!(n >= 2, "silhouette needs at least 2 points");
    let dist = |a: &[f32], b: &[f32]| -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt()
    };
    let n_labels = labels.iter().max().expect("non-empty") + 1;
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let mut sums = vec![0.0f64; n_labels];
        let mut counts = vec![0usize; n_labels];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += dist(&points[i], &points[j]);
            counts[labels[j]] += 1;
        }
        let own = labels[i];
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..n_labels)
            .filter(|&l| l != own && counts[l] > 0)
            .map(|l| sums[l] / counts[l] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue; // only one cluster present
        }
        total += (b - a) / a.max(b);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs in 8-d.
    fn blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        for c in 0..3 {
            for _ in 0..15 {
                let mut p = vec![0.0f32; 8];
                for (d, v) in p.iter_mut().enumerate() {
                    *v = if d % 3 == c { 10.0 } else { 0.0 } + next();
                }
                points.push(p);
                labels.push(c);
            }
        }
        (points, labels)
    }

    #[test]
    fn tsne_output_shape_and_finiteness() {
        let (points, _) = blobs();
        let y = tsne(&points, &TsneConfig { iterations: 100, ..Default::default() });
        assert_eq!(y.len(), points.len());
        assert!(y.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    #[test]
    fn tsne_preserves_blob_structure() {
        let (points, labels) = blobs();
        let y = tsne(&points, &TsneConfig { iterations: 250, ..Default::default() });
        let y32: Vec<Vec<f32>> = y.iter().map(|p| vec![p[0] as f32, p[1] as f32]).collect();
        let s = silhouette(&y32, &labels);
        assert!(s > 0.4, "embedded blobs should stay separated: silhouette {s}");
    }

    #[test]
    fn tsne_is_deterministic() {
        let (points, _) = blobs();
        let cfg = TsneConfig { iterations: 50, ..Default::default() };
        let a = tsne(&points, &cfg);
        let b = tsne(&points, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn silhouette_of_separated_blobs_is_high() {
        let (points, labels) = blobs();
        let s = silhouette(&points, &labels);
        assert!(s > 0.8, "true-space silhouette {s}");
    }

    #[test]
    fn silhouette_of_random_labels_is_low() {
        let (points, _) = blobs();
        let random_labels: Vec<usize> = (0..points.len()).map(|i| i % 3).collect();
        let s = silhouette(&points, &random_labels);
        assert!(s < 0.2, "random-label silhouette {s}");
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn tsne_rejects_tiny_input() {
        tsne(&[vec![0.0], vec![1.0]], &TsneConfig::default());
    }
}
