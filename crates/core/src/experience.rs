//! The experience write-ahead log: the durable record of every plan the
//! serving loop executed and what actually happened.
//!
//! Closing the plan→execute→observe→retrain loop (Neo/Bao-style) starts
//! with never losing or corrupting an observation. [`ExperienceWal`] is an
//! append-only, segmented log where every record is sealed in the same
//! versioned FNV-64 envelope the checkpoint and snapshot paths use
//! ([`crate::durable::seal_envelope`]), one envelope per line. Appends go
//! through the deterministic fault-injection hooks ([`FaultInjector`]) so
//! chaos tests can tear or kill any individual append; recovery scans
//! segments in order, keeps the longest valid record prefix, truncates a
//! torn tail in place, and quarantines anything after the tear as
//! `*.corrupt` — a record either survives whole or not at all, and sequence
//! numbers are verified contiguous so a lost-or-duplicated record is a typed
//! error ([`CoreError::ExperienceGap`]), never silent.
//!
//! Each record carries the full [`Qep`] (query, chosen plan, observed
//! execution profile), not just fingerprints: the background trainer
//! fine-tunes directly from the drained log, with the fingerprints serving
//! audit and dedup.

use crate::durable::{fnv64, fsync_dir, open_envelope, seal_envelope, write_atomic};
use crate::error::CoreError;
use qpseeker_storage::{DurableFault, FaultInjector};
use qpseeker_workloads::Qep;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Envelope format version for experience records.
pub const WAL_VERSION: u64 = 1;

/// Which planner produced the executed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperienceDisposition {
    /// The neural (MCTS) path served the plan.
    Neural,
    /// The classical optimizer served it (fallback, breaker-open, no model).
    Classical,
}

/// One observed execution: what was planned, what the model predicted, and
/// what the executor actually measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperienceRecord {
    /// Position in the log (contiguous from 0; verified on recovery).
    pub seq: u64,
    /// FNV-64 over the serialized query (audit/dedup key).
    pub query_fp: u64,
    /// FNV-64 over the serialized chosen plan.
    pub plan_sig: u64,
    /// Which planner produced the plan.
    pub disposition: ExperienceDisposition,
    /// The model's runtime prediction for the plan (neural path only).
    pub predicted_ms: Option<f64>,
    /// Query, chosen plan and the observed execution profile — exactly the
    /// shape the trainer consumes.
    pub qep: Qep,
}

impl ExperienceRecord {
    /// Observed executor runtime (virtual milliseconds).
    pub fn observed_ms(&self) -> f64 {
        self.qep.truth.time_ms
    }

    /// Observed output cardinality.
    pub fn observed_rows(&self) -> u64 {
        self.qep.truth.rows
    }
}

/// Append-only, segmented, checksummed experience log.
///
/// Segments are named `exp-<first_seq:08>.wal`; a new segment starts every
/// `records_per_segment` appends. Each line is one sealed record; appends
/// are fsynced, and segment creation fsyncs the directory so the new entry
/// itself is durable.
#[derive(Debug)]
pub struct ExperienceWal {
    dir: PathBuf,
    records_per_segment: usize,
    faults: Option<FaultInjector>,
    records: Vec<ExperienceRecord>,
    /// Records already written into the currently-open segment.
    current_len: usize,
    current_path: Option<PathBuf>,
    /// Torn/corrupt lines dropped during the last recovery scan.
    tail_dropped: usize,
    /// Later segments quarantined during the last recovery scan.
    quarantined: usize,
}

impl ExperienceWal {
    /// Open (creating if needed) the log at `dir`, running recovery: the
    /// longest valid prefix of records is loaded, a torn tail is truncated
    /// in place, and segments past a tear are quarantined as `*.corrupt`.
    pub fn open(dir: impl Into<PathBuf>, records_per_segment: usize) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CoreError::Io {
            op: "create dir",
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut wal = Self {
            dir,
            records_per_segment: records_per_segment.max(1),
            faults: None,
            records: Vec::new(),
            current_len: 0,
            current_path: None,
            tail_dropped: 0,
            quarantined: 0,
        };
        wal.recover()?;
        Ok(wal)
    }

    /// Arm deterministic durable-path faults on the append path (chaos
    /// testing). Recovery itself always runs unfaulted — it models the
    /// restart after the simulated kill, not the kill itself.
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Directory this log persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All recovered + appended records, in sequence order.
    pub fn records(&self) -> &[ExperienceRecord] {
        &self.records
    }

    /// Records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Torn/corrupt lines dropped by the last recovery scan.
    pub fn tail_dropped(&self) -> usize {
        self.tail_dropped
    }

    /// Segments quarantined by the last recovery scan.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    fn segment_path(&self, first_seq: u64) -> PathBuf {
        self.dir.join(format!("exp-{first_seq:08}.wal"))
    }

    /// Segment files on disk, sorted by ascending first sequence number.
    fn list_segments(&self) -> Result<Vec<(u64, PathBuf)>, CoreError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| CoreError::Io {
            op: "read dir",
            path: self.dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::Io {
                op: "read dir",
                path: self.dir.display().to_string(),
                message: e.to_string(),
            })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_prefix("exp-").and_then(|r| r.strip_suffix(".wal")) else {
                continue; // *.corrupt quarantine or foreign file
            };
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Build and append one record, assigning the next sequence number.
    /// Returns the assigned sequence on success. With armed faults the
    /// append may be torn (a partial line reaches disk) or die at a crash
    /// point; both surface as the transient [`CoreError::InjectedCrash`] and
    /// leave the in-memory log unchanged — exactly what a killed process
    /// would find on restart.
    pub fn log(
        &mut self,
        disposition: ExperienceDisposition,
        predicted_ms: Option<f64>,
        qep: Qep,
    ) -> Result<u64, CoreError> {
        let seq = self.records.len() as u64;
        let query_fp = fnv64(&serde_json::to_string(&qep.query)?);
        let plan_sig = fnv64(&serde_json::to_string(&qep.plan)?);
        let rec = ExperienceRecord { seq, query_fp, plan_sig, disposition, predicted_ms, qep };
        self.append(rec)?;
        Ok(seq)
    }

    fn append(&mut self, rec: ExperienceRecord) -> Result<(), CoreError> {
        let payload = serde_json::to_string(&rec)?;
        let mut line = seal_envelope(&payload, WAL_VERSION);
        line.push('\n');

        // Roll to a fresh segment when the current one is full (or none is
        // open yet).
        let new_segment =
            self.current_path.is_none() || self.current_len >= self.records_per_segment;
        let path = if new_segment {
            self.segment_path(rec.seq)
        } else {
            self.current_path.clone().expect("segment open")
        };
        let site = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();

        if let Some(fi) = &self.faults {
            match fi.durable_fault(&site, line.len()) {
                Some(DurableFault::CrashPoint) => {
                    return Err(CoreError::InjectedCrash { site, seq: fi.durable_writes() - 1 });
                }
                Some(DurableFault::TornWrite { keep_bytes }) => {
                    // A partial line reaches the tail of the segment, then
                    // the process "dies". Recovery must drop exactly it.
                    let mut f = open_append(&path)?;
                    f.write_all(&line.as_bytes()[..keep_bytes])
                        .map_err(|e| append_err(&path, e))?;
                    let _ = f.sync_data();
                    return Err(CoreError::InjectedCrash { site, seq: fi.durable_writes() - 1 });
                }
                None => {}
            }
        }

        let mut f = open_append(&path)?;
        f.write_all(line.as_bytes()).map_err(|e| append_err(&path, e))?;
        f.sync_data().map_err(|e| append_err(&path, e))?;
        if new_segment {
            // The new directory entry must survive a crash too.
            fsync_dir(&self.dir)?;
            self.current_path = Some(path);
            self.current_len = 0;
        }
        self.current_len += 1;
        self.records.push(rec);
        Ok(())
    }

    /// Recovery scan: walk segments in order, verify every line's envelope,
    /// parse, and check sequence contiguity. The first invalid line ends the
    /// log: its segment is truncated to the valid prefix (rewritten
    /// atomically, or removed when nothing valid remains) and every later
    /// segment is quarantined — records past a tear have no trustworthy
    /// ordering. A valid record that *skips* a sequence number is
    /// [`CoreError::ExperienceGap`]: that is real corruption (a lost
    /// record with an intact successor), not a torn tail.
    fn recover(&mut self) -> Result<(), CoreError> {
        self.records.clear();
        self.tail_dropped = 0;
        self.quarantined = 0;
        self.current_path = None;
        self.current_len = 0;

        let segments = self.list_segments()?;
        let mut torn_at: Option<usize> = None; // index into `segments`
        'scan: for (si, (_, path)) in segments.iter().enumerate() {
            let text = fs::read_to_string(path).map_err(|e| CoreError::Io {
                op: "read segment",
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let mut valid_lines = 0usize;
            for line in text.split_inclusive('\n') {
                let line = line.trim_end_matches('\n');
                if line.is_empty() {
                    continue;
                }
                let rec: ExperienceRecord = match open_envelope(line, WAL_VERSION)
                    .and_then(|p| serde_json::from_str(p).map_err(CoreError::from))
                {
                    Ok(r) => r,
                    Err(_) => {
                        // Torn/corrupt line: truncate here, drop the rest.
                        let dropped_here =
                            text.lines().filter(|l| !l.is_empty()).count() - valid_lines;
                        self.tail_dropped += dropped_here;
                        self.truncate_segment(path, &text, valid_lines)?;
                        torn_at = Some(si);
                        break 'scan;
                    }
                };
                let expected = self.records.len() as u64;
                if rec.seq != expected {
                    return Err(CoreError::ExperienceGap { expected, found: rec.seq });
                }
                self.records.push(rec);
                valid_lines += 1;
            }
            // Fully-valid segment: it may be the open tail.
            self.current_path = Some(path.clone());
            self.current_len = valid_lines;
        }

        if let Some(si) = torn_at {
            // Everything after the tear is untrustworthy: quarantine it.
            for (_, path) in &segments[si + 1..] {
                let mut name =
                    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                name.push_str(".corrupt");
                fs::rename(path, self.dir.join(name)).map_err(|e| CoreError::Io {
                    op: "quarantine",
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                self.quarantined += 1;
            }
        }
        Ok(())
    }

    /// Rewrite `path` with only its first `keep_lines` valid lines (atomic),
    /// or remove it entirely when nothing valid remains.
    fn truncate_segment(
        &mut self,
        path: &Path,
        text: &str,
        keep_lines: usize,
    ) -> Result<(), CoreError> {
        if keep_lines == 0 {
            fs::remove_file(path).map_err(|e| CoreError::Io {
                op: "remove torn segment",
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            fsync_dir(&self.dir)?;
            // The previous fully-valid segment (if any) stays the open tail.
            return Ok(());
        }
        let kept: String = text.lines().filter(|l| !l.is_empty()).take(keep_lines).fold(
            String::new(),
            |mut s, l| {
                s.push_str(l);
                s.push('\n');
                s
            },
        );
        // Recovery is the restart path: never fault-inject it.
        write_atomic(path, &kept, None)?;
        self.current_path = Some(path.to_path_buf());
        self.current_len = keep_lines;
        Ok(())
    }
}

fn open_append(path: &Path) -> Result<fs::File, CoreError> {
    fs::OpenOptions::new().create(true).append(true).open(path).map_err(|e| append_err(path, e))
}

fn append_err(path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Io { op: "append", path: path.display().to_string(), message: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::executor::Executor;
    use qpseeker_engine::optimizer::PgOptimizer;
    use qpseeker_storage::FaultConfig;
    use qpseeker_workloads::{synthetic, SyntheticConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("qps-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_qeps() -> &'static Vec<Qep> {
        static QEPS: OnceLock<Vec<Qep>> = OnceLock::new();
        QEPS.get_or_init(|| {
            let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.03, 2));
            let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 6, seed: 11 });
            w.qeps
        })
    }

    fn log_n(wal: &mut ExperienceWal, n: usize) {
        let qeps = sample_qeps();
        for i in 0..n {
            let qep = qeps[i % qeps.len()].clone();
            wal.log(ExperienceDisposition::Neural, Some(1.0 + i as f64), qep).unwrap();
        }
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let dir = scratch("roundtrip");
        let mut wal = ExperienceWal::open(&dir, 4).unwrap();
        log_n(&mut wal, 10);
        assert_eq!(wal.len(), 10);
        drop(wal);
        let wal = ExperienceWal::open(&dir, 4).unwrap();
        assert_eq!(wal.len(), 10);
        assert_eq!(wal.tail_dropped(), 0);
        for (i, r) in wal.records().iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.predicted_ms, Some(1.0 + i as f64));
            assert_eq!(r.observed_rows(), r.qep.truth.rows);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_at_the_configured_size() {
        let dir = scratch("rotate");
        let mut wal = ExperienceWal::open(&dir, 3).unwrap();
        log_n(&mut wal, 8);
        let segs: Vec<String> = {
            let mut v: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            v.sort();
            v
        };
        assert_eq!(segs, ["exp-00000000.wal", "exp-00000003.wal", "exp-00000006.wal"]);
        // Appends continue into the open tail after reopen.
        drop(wal);
        let mut wal = ExperienceWal::open(&dir, 3).unwrap();
        log_n(&mut wal, 1);
        assert_eq!(wal.len(), 9);
        drop(wal);
        let wal = ExperienceWal::open(&dir, 3).unwrap();
        assert_eq!(wal.len(), 9, "tail append after reopen must land in the open segment");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let dir = scratch("torn");
        let mut wal = ExperienceWal::open(&dir, 100).unwrap();
        log_n(&mut wal, 5);
        drop(wal);
        // Tear the tail by hand: append garbage half-line.
        let seg = dir.join("exp-00000000.wal");
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"{\"version\":1,\"checksum\":\"dead").unwrap();
        drop(f);
        let wal = ExperienceWal::open(&dir, 100).unwrap();
        assert_eq!(wal.len(), 5, "valid prefix survives");
        assert_eq!(wal.tail_dropped(), 1);
        // The truncation is durable: a second recovery sees a clean log.
        drop(wal);
        let wal = ExperienceWal::open(&dir, 100).unwrap();
        assert_eq!(wal.tail_dropped(), 0);
        assert_eq!(wal.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_mid_history_quarantines_later_segments() {
        let dir = scratch("midcorrupt");
        let mut wal = ExperienceWal::open(&dir, 2).unwrap();
        log_n(&mut wal, 6); // segments at 0, 2, 4
        drop(wal);
        // Flip a byte inside the middle segment's first record.
        let seg = dir.join("exp-00000002.wal");
        let mut text = fs::read_to_string(&seg).unwrap();
        let flip = text.find("payload").unwrap() + 30;
        text.replace_range(flip..flip + 1, "~");
        fs::write(&seg, text).unwrap();
        let wal = ExperienceWal::open(&dir, 2).unwrap();
        assert_eq!(wal.len(), 2, "log ends at the corruption point");
        assert!(wal.tail_dropped() >= 1);
        assert_eq!(wal.quarantined(), 1, "the segment after the tear is quarantined");
        assert!(dir.join("exp-00000004.wal.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gap_is_a_typed_error() {
        let dir = scratch("gap");
        let mut wal = ExperienceWal::open(&dir, 2).unwrap();
        log_n(&mut wal, 4); // segments at 0 and 2
        drop(wal);
        // Losing a whole *interior* segment leaves an intact successor with
        // skipped sequence numbers: real corruption, not a torn tail.
        fs::remove_file(dir.join("exp-00000000.wal")).unwrap();
        let err = ExperienceWal::open(&dir, 2).unwrap_err();
        assert!(
            matches!(err, CoreError::ExperienceGap { expected: 0, found: 2 }),
            "expected ExperienceGap, got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_leaves_a_recoverable_prefix() {
        let qeps = sample_qeps();
        for kill_at in 0..6u64 {
            let dir = scratch(&format!("kill{kill_at}"));
            let fi = FaultInjector::new(FaultConfig {
                crash_after_writes: Some(kill_at),
                ..FaultConfig::default()
            });
            let mut wal = ExperienceWal::open(&dir, 3).unwrap().with_faults(Some(fi));
            let mut ok = 0u64;
            for i in 0..6 {
                let qep = qeps[i % qeps.len()].clone();
                match wal.log(ExperienceDisposition::Classical, None, qep) {
                    Ok(seq) => {
                        assert_eq!(seq, ok);
                        ok += 1;
                    }
                    Err(e) => {
                        assert!(e.is_transient(), "{e}");
                        break;
                    }
                }
            }
            assert_eq!(ok, kill_at.min(6), "crash point fires at append #{kill_at}");
            drop(wal);
            let wal = ExperienceWal::open(&dir, 3).unwrap();
            assert_eq!(wal.len() as u64, ok, "no lost or duplicated records");
            for (i, r) in wal.records().iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_append_sweep_recovers_the_exact_prefix() {
        let qeps = sample_qeps();
        let mut torn_seen = 0;
        for seed in 0..12u64 {
            let dir = scratch(&format!("sweep{seed}"));
            let fi = FaultInjector::new(FaultConfig {
                seed,
                torn_write_p: 0.25,
                ..FaultConfig::default()
            });
            let mut wal = ExperienceWal::open(&dir, 4).unwrap().with_faults(Some(fi));
            let mut shadow: Vec<u64> = Vec::new();
            for i in 0..10 {
                let qep = qeps[i % qeps.len()].clone();
                match wal.log(ExperienceDisposition::Neural, Some(i as f64), qep) {
                    Ok(seq) => shadow.push(seq),
                    Err(_) => {
                        torn_seen += 1;
                        break; // the "process" died
                    }
                }
            }
            drop(wal);
            let wal = ExperienceWal::open(&dir, 4).unwrap();
            // A tear that kept everything but the trailing newline leaves a
            // complete, valid record: durable but unacknowledged. Recovery
            // may commit at most that one extra record — never fewer than
            // the acknowledged prefix, never a gap or duplicate.
            assert!(
                wal.len() == shadow.len() || wal.len() == shadow.len() + 1,
                "seed {seed}: recovered {} vs acknowledged {}",
                wal.len(),
                shadow.len()
            );
            for (r, want) in wal.records().iter().zip(&shadow) {
                assert_eq!(r.seq, *want);
            }
            let _ = fs::remove_dir_all(&dir);
        }
        assert!(torn_seen > 0, "p=0.25 sweep never tore a write");
    }

    #[test]
    fn executed_truth_round_trips_through_the_log() {
        // The record's Qep is trainer-ready: truth comes from a real
        // execution and survives serialization bit-for-bit at the row level.
        let dir = scratch("truth");
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.03, 2));
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 3, seed: 5 });
        let q = w.qeps[0].query.clone();
        let plan = PgOptimizer::new(&db).plan(&q);
        let truth = Executor::new(&db).execute(&plan);
        let qep = Qep { query: q, plan, template: "online".into(), truth };
        let mut wal = ExperienceWal::open(&dir, 8).unwrap();
        wal.log(ExperienceDisposition::Neural, Some(12.5), qep.clone()).unwrap();
        drop(wal);
        let wal = ExperienceWal::open(&dir, 8).unwrap();
        let r = &wal.records()[0];
        assert_eq!(r.observed_rows(), qep.truth.rows);
        assert_eq!(r.observed_ms(), qep.truth.time_ms);
        assert_eq!(r.qep.truth.nodes.len(), qep.truth.nodes.len());
        let _ = fs::remove_dir_all(&dir);
    }
}
