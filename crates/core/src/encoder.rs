//! The Query Encoder (§4.1) and Plan Encoder (§4.2).

use crate::config::ModelConfig;
use crate::featurize::{FeatNode, QueryFeatures};
use qpseeker_nn::prelude::*;

/// MSCN-style set encoder: relations and joins each go through an MLP
/// applied row-wise, masked mean pooling collapses each set, and the two
/// pooled vectors are concatenated into the query embedding.
#[derive(Debug, Clone)]
pub struct QueryEncoder {
    pub rel_mlp: Mlp,
    pub join_mlp: Mlp,
    out_dim: usize,
}

impl QueryEncoder {
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        cfg: &ModelConfig,
        n_tables: usize,
        n_joins: usize,
    ) -> Self {
        let mut rel_dims = vec![n_tables.max(1)];
        rel_dims.extend(std::iter::repeat_n(cfg.set_mlp_hidden, cfg.set_mlp_layers));
        rel_dims.push(cfg.set_mlp_out);
        let mut join_dims = vec![n_joins.max(1)];
        join_dims.extend(std::iter::repeat_n(cfg.set_mlp_hidden, cfg.set_mlp_layers));
        join_dims.push(cfg.set_mlp_out);
        Self {
            rel_mlp: Mlp::new(
                store,
                init,
                "query_enc.rel",
                &rel_dims,
                Activation::Relu,
                Activation::Relu,
            ),
            join_mlp: Mlp::new(
                store,
                init,
                "query_enc.join",
                &join_dims,
                Activation::Relu,
                Activation::Relu,
            ),
            out_dim: cfg.query_dim(),
        }
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Encode one query's set features → `[1, query_dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, feats: &QueryFeatures) -> Var {
        let rel = self.encode_set(g, store, &self.rel_mlp, &feats.rel_matrix, &feats.rel_mask);
        let join = self.encode_set(g, store, &self.join_mlp, &feats.join_matrix, &feats.join_mask);
        g.concat_cols(rel, join)
    }

    fn encode_set(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        mlp: &Mlp,
        matrix: &qpseeker_nn::tensor::Tensor,
        mask: &qpseeker_nn::tensor::Tensor,
    ) -> Var {
        let x = g.constant(matrix.clone());
        let m = g.constant(mask.clone());
        let h = mlp.forward(g, store, x); // [rows, out]
        let masked = g.mul_col_broadcast(h, m);
        let summed = g.sum_rows(masked); // [1, out]
        let count = mask.sum().max(1.0);
        g.scale(summed, 1.0 / count)
    }

    /// Tape-free [`Self::forward`]: identical math, scratch buffers instead
    /// of graph nodes. The result comes from `sc` — recycle it when done.
    pub fn forward_inference(
        &self,
        store: &ParamStore,
        feats: &QueryFeatures,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let rel = self.set_inference(store, &self.rel_mlp, &feats.rel_matrix, &feats.rel_mask, sc);
        let join =
            self.set_inference(store, &self.join_mlp, &feats.join_matrix, &feats.join_mask, sc);
        let mut out = sc.take(1, rel.cols() + join.cols());
        out.data_mut()[..rel.cols()].copy_from_slice(rel.data());
        out.data_mut()[rel.cols()..].copy_from_slice(join.data());
        sc.recycle(rel);
        sc.recycle(join);
        out
    }

    fn set_inference(
        &self,
        store: &ParamStore,
        mlp: &Mlp,
        matrix: &Tensor,
        mask: &Tensor,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let h = mlp.forward_inference(store, matrix, sc); // [rows, out]
        let mut pooled = sc.take(1, h.cols());
        for r in 0..h.rows() {
            let m = mask.get(r, 0);
            if m != 0.0 {
                for (p, v) in pooled.data_mut().iter_mut().zip(h.row_slice(r)) {
                    *p += v * m;
                }
            }
        }
        let inv = 1.0 / mask.sum().max(1.0);
        for p in pooled.data_mut() {
            *p *= inv;
        }
        sc.recycle(h);
        pooled
    }
}

/// Bottom-up LSTM-cell plan encoder. Each plan node is one LSTM step whose
/// input concatenates `[child data vectors | relation encoding | TaBERT |
/// op one-hot | estimates]`; children pass both their hidden/cell state
/// (averaged) and their output vectors (pooled into the parent's input).
#[derive(Debug, Clone)]
pub struct PlanEncoder {
    pub cell: LstmCell,
    data_dim: usize,
    out_dim: usize,
}

/// The encoder's result for one plan.
pub struct EncodedPlan {
    /// `[n_nodes, out_dim]` stacked node outputs, postorder.
    pub nodes: Var,
    /// The root node's output `[1, out_dim]`.
    pub root: Var,
    /// Per-node output vars in postorder (for the auxiliary node loss).
    pub node_vars: Vec<Var>,
}

impl PlanEncoder {
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        cfg: &ModelConfig,
        n_tables: usize,
    ) -> Self {
        let input_dim = cfg.node_input_dim(n_tables);
        Self {
            cell: LstmCell::new(store, init, "plan_enc.cell", input_dim, cfg.plan_node_out),
            data_dim: cfg.data_vec_dim(),
            out_dim: cfg.plan_node_out,
        }
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Encode a featurized plan tree.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, plan: &FeatNode) -> EncodedPlan {
        let mut node_vars = Vec::with_capacity(plan.count());
        let (root_state, _root_h) = self.encode_node(g, store, plan, &mut node_vars);
        let root = root_state.h;
        let nodes = g.stack_rows(&node_vars);
        EncodedPlan { nodes, root, node_vars }
    }

    fn encode_node(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        node: &FeatNode,
        out: &mut Vec<Var>,
    ) -> (LstmState, Var) {
        let (input, state_in) = if node.children.is_empty() {
            // Leaf: zero padding for the child-data slot, EXPLAIN estimates
            // in the estimate slot, zero initial LSTM state.
            let zeros = g.constant(Tensor::zeros(1, self.data_dim));
            let mid = g.constant(node.mid.clone());
            let est =
                g.constant(node.leaf_est.clone().expect("leaf featurization includes estimates"));
            let input = g.concat_cols_all(&[zeros, mid, est]);
            (input, self.cell.zero_state(g, 1))
        } else {
            let mut child_states = Vec::with_capacity(node.children.len());
            let mut child_hs = Vec::with_capacity(node.children.len());
            for c in &node.children {
                let (s, h) = self.encode_node(g, store, c, out);
                child_states.push(s);
                child_hs.push(h);
            }
            // Mean-pool children outputs: data part and estimate part.
            let stacked = g.stack_rows(&child_hs);
            let pooled = g.mean_rows(stacked); // [1, out_dim]
            let child_data = g.slice_cols(pooled, 0, self.data_dim);
            let child_est = g.slice_cols(pooled, self.data_dim, self.out_dim);
            let mid = g.constant(node.mid.clone());
            let input = g.concat_cols_all(&[child_data, mid, child_est]);
            // Averaged child state feeds the parent cell.
            let state = average_states(g, &child_states);
            (input, state)
        };
        let state_out = self.cell.step(g, store, input, state_in);
        out.push(state_out.h);
        (state_out, state_out.h)
    }

    /// Tape-free [`Self::forward`]: the `[n_nodes, out_dim]` postorder node
    /// outputs (root = last row), built entirely from scratch buffers. The
    /// result comes from `sc` — recycle it when done.
    pub fn forward_inference(
        &self,
        store: &ParamStore,
        plan: &FeatNode,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let mut nodes = sc.take(plan.count(), self.out_dim);
        let mut pos = 0usize;
        let root_state = self.node_inference(store, plan, &mut nodes, &mut pos, sc);
        root_state.recycle(sc);
        nodes
    }

    fn node_inference(
        &self,
        store: &ParamStore,
        node: &FeatNode,
        nodes: &mut Tensor,
        pos: &mut usize,
        sc: &mut ScratchArena,
    ) -> LstmStateBuf {
        let mid_cols = node.mid.cols();
        // The estimate slot is always out_dim - data_dim = 3 wide.
        let input_dim = self.data_dim + mid_cols + (self.out_dim - self.data_dim);
        let (input, state_in) = if node.children.is_empty() {
            let mut input = sc.take(1, input_dim);
            let est = node.leaf_est.as_ref().expect("leaf featurization includes estimates");
            let d = input.data_mut();
            d[self.data_dim..self.data_dim + mid_cols].copy_from_slice(node.mid.data());
            d[self.data_dim + mid_cols..].copy_from_slice(est.data());
            (input, self.cell.zero_state_buf(1, sc))
        } else {
            // Sum child h/c states in child order (matching the tape's
            // stack_rows + mean_rows accumulation), then scale to the mean.
            // The pooled h doubles as the parent's child-data/estimate input.
            let mut hsum = sc.take(1, self.out_dim);
            let mut csum = sc.take(1, self.out_dim);
            for c in &node.children {
                let s = self.node_inference(store, c, nodes, pos, sc);
                for (a, v) in hsum.data_mut().iter_mut().zip(s.h.data()) {
                    *a += v;
                }
                for (a, v) in csum.data_mut().iter_mut().zip(s.c.data()) {
                    *a += v;
                }
                s.recycle(sc);
            }
            let inv = 1.0 / node.children.len().max(1) as f32;
            for a in hsum.data_mut() {
                *a *= inv;
            }
            for a in csum.data_mut() {
                *a *= inv;
            }
            let mut input = sc.take(1, input_dim);
            let d = input.data_mut();
            d[..self.data_dim].copy_from_slice(&hsum.data()[..self.data_dim]);
            d[self.data_dim..self.data_dim + mid_cols].copy_from_slice(node.mid.data());
            d[self.data_dim + mid_cols..].copy_from_slice(&hsum.data()[self.data_dim..]);
            (input, LstmStateBuf { h: hsum, c: csum })
        };
        let out = self.cell.step_inference(store, &input, &state_in, sc);
        sc.recycle(input);
        state_in.recycle(sc);
        nodes.row_slice_mut(*pos).copy_from_slice(out.h.data());
        *pos += 1;
        out
    }

    /// Batched [`Self::forward_inference`] over `K` **shape-congruent** plans
    /// (same tree structure and feature widths — e.g. left-deep MCTS
    /// candidates for one query). Returns `[K * n_nodes, out_dim]` with plan
    /// `p`'s postorder rows at `p * n_nodes ..`, or `None` when the trees are
    /// not congruent (caller falls back to the scalar loop).
    ///
    /// Each tree position becomes ONE `rows = K` LSTM step instead of K
    /// single-row steps, so the cell's GEMMs amortize weight traffic across
    /// the whole batch. Row `p` is bitwise identical to the scalar path: the
    /// matmul kernel guarantees per-row reduction order, and every other op
    /// here (state pooling, gate math, input assembly) is row-independent.
    pub fn forward_inference_batch(
        &self,
        store: &ParamStore,
        plans: &[&FeatNode],
        sc: &mut ScratchArena,
    ) -> Option<Tensor> {
        let (first, rest) = plans.split_first()?;
        if !rest.iter().all(|p| congruent(first, p)) {
            return None;
        }
        let n_nodes = first.count();
        let mut out = sc.take(plans.len() * n_nodes, self.out_dim);
        let mut pos = 0usize;
        let root = self.batch_node_inference(store, plans, &mut out, n_nodes, &mut pos, sc);
        root.recycle(sc);
        Some(out)
    }

    /// One tree position for all K plans at once: `nodes_at[p]` is plan `p`'s
    /// node at this position. Mirrors [`Self::node_inference`] with `rows=K`.
    fn batch_node_inference(
        &self,
        store: &ParamStore,
        nodes_at: &[&FeatNode],
        out: &mut Tensor,
        n_nodes: usize,
        pos: &mut usize,
        sc: &mut ScratchArena,
    ) -> LstmStateBuf {
        let kn = nodes_at.len();
        let node0 = nodes_at[0];
        let mid_cols = node0.mid.cols();
        let input_dim = self.data_dim + mid_cols + (self.out_dim - self.data_dim);
        let (input, state_in) = if node0.children.is_empty() {
            let mut input = sc.take(kn, input_dim);
            for (r, nd) in nodes_at.iter().enumerate() {
                let est = nd.leaf_est.as_ref().expect("leaf featurization includes estimates");
                let d = input.row_slice_mut(r);
                d[self.data_dim..self.data_dim + mid_cols].copy_from_slice(nd.mid.data());
                d[self.data_dim + mid_cols..].copy_from_slice(est.data());
            }
            (input, self.cell.zero_state_buf(kn, sc))
        } else {
            let mut hsum = sc.take(kn, self.out_dim);
            let mut csum = sc.take(kn, self.out_dim);
            let mut child_col: Vec<&FeatNode> = Vec::with_capacity(kn);
            for ci in 0..node0.children.len() {
                child_col.clear();
                child_col.extend(nodes_at.iter().map(|nd| &nd.children[ci]));
                let s = self.batch_node_inference(store, &child_col, out, n_nodes, pos, sc);
                for (a, v) in hsum.data_mut().iter_mut().zip(s.h.data()) {
                    *a += v;
                }
                for (a, v) in csum.data_mut().iter_mut().zip(s.c.data()) {
                    *a += v;
                }
                s.recycle(sc);
            }
            let inv = 1.0 / node0.children.len().max(1) as f32;
            for a in hsum.data_mut() {
                *a *= inv;
            }
            for a in csum.data_mut() {
                *a *= inv;
            }
            let mut input = sc.take(kn, input_dim);
            for (r, nd) in nodes_at.iter().enumerate() {
                let d = input.row_slice_mut(r);
                let pooled = hsum.row_slice(r);
                d[..self.data_dim].copy_from_slice(&pooled[..self.data_dim]);
                d[self.data_dim..self.data_dim + mid_cols].copy_from_slice(nd.mid.data());
                d[self.data_dim + mid_cols..].copy_from_slice(&pooled[self.data_dim..]);
            }
            (input, LstmStateBuf { h: hsum, c: csum })
        };
        let out_state = self.cell.step_inference(store, &input, &state_in, sc);
        sc.recycle(input);
        state_in.recycle(sc);
        for r in 0..kn {
            out.row_slice_mut(r * n_nodes + *pos).copy_from_slice(out_state.h.row_slice(r));
        }
        *pos += 1;
        out_state
    }
}

/// Structural congruence: same tree shape and per-node feature widths, so the
/// K plans can share one batched LSTM step per tree position.
pub(crate) fn congruent(a: &FeatNode, b: &FeatNode) -> bool {
    a.children.len() == b.children.len()
        && a.mid.cols() == b.mid.cols()
        && a.leaf_est.is_some() == b.leaf_est.is_some()
        && a.children.iter().zip(&b.children).all(|(x, y)| congruent(x, y))
}

fn average_states(g: &mut Graph, states: &[LstmState]) -> LstmState {
    assert!(!states.is_empty());
    if states.len() == 1 {
        return states[0];
    }
    let hs: Vec<Var> = states.iter().map(|s| s.h).collect();
    let cs: Vec<Var> = states.iter().map(|s| s.c).collect();
    let hstack = g.stack_rows(&hs);
    let cstack = g.stack_rows(&cs);
    LstmState { h: g.mean_rows(hstack), c: g.mean_rows(cstack) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::Featurizer;
    use crate::normalize::TargetNormalizer;
    use qpseeker_engine::executor::Executor;
    use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
    use qpseeker_engine::query::{ColRef, JoinPred, Query, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_tabert::{TabSim, TabertConfig};

    fn setup() -> (std::sync::Arc<qpseeker_storage::Database>, Query, PlanNode) {
        let db = std::sync::Arc::new(imdb::generate(0.05, 4));
        let mut q = Query::new("q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::join(
                &q,
                JoinOp::HashJoin,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
            ),
            PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
        );
        (db, q, plan)
    }

    #[test]
    fn query_encoder_output_shape() {
        let (db, q, _) = setup();
        let cfg = ModelConfig::small();
        let mut store = ParamStore::new();
        let mut init = Initializer::new(0);
        let enc = QueryEncoder::new(
            &mut store,
            &mut init,
            &cfg,
            db.catalog.num_tables(),
            db.catalog.num_joins(),
        );
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let qf = f.query_features(&q);
        let mut g = Graph::new();
        let v = enc.forward(&mut g, &store, &qf);
        assert_eq!(g.value(v).shape(), (1, cfg.query_dim()));
        assert!(g.value(v).norm() > 0.0);
    }

    #[test]
    fn query_encoder_is_permutation_invariant() {
        // Set semantics: shuffling the relation order must not change the
        // embedding (mean pooling over one-hot rows).
        let (db, q, _) = setup();
        let cfg = ModelConfig::small();
        let mut store = ParamStore::new();
        let mut init = Initializer::new(0);
        let enc = QueryEncoder::new(
            &mut store,
            &mut init,
            &cfg,
            db.catalog.num_tables(),
            db.catalog.num_joins(),
        );
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let qf1 = f.query_features(&q);
        let mut q2 = q.clone();
        q2.relations.reverse();
        let qf2 = f.query_features(&q2);
        let mut g = Graph::new();
        let v1 = enc.forward(&mut g, &store, &qf1);
        let v2 = enc.forward(&mut g, &store, &qf2);
        let (a, b) = (g.value(v1).clone(), g.value(v2).clone());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn plan_encoder_shapes_and_node_count() {
        let (db, q, plan) = setup();
        let cfg = ModelConfig::small();
        let mut store = ParamStore::new();
        let mut init = Initializer::new(0);
        let penc = PlanEncoder::new(&mut store, &mut init, &cfg, db.catalog.num_tables());
        let truth = Executor::new(&db).execute(&plan);
        let norm = TargetNormalizer::fit(&[[1.0, 1.0, 1.0], [100.0, 50.0, 10.0]]);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let mut sess = crate::featurize::FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, Some(&truth), &norm, "t");
        let mut g = Graph::new();
        let enc = penc.forward(&mut g, &store, &fq.plan);
        assert_eq!(g.value(enc.nodes).shape(), (5, cfg.plan_node_out));
        assert_eq!(g.value(enc.root).shape(), (1, cfg.plan_node_out));
        assert_eq!(enc.node_vars.len(), 5);
    }

    #[test]
    fn different_operators_give_different_encodings() {
        let (db, q, _) = setup();
        let cfg = ModelConfig::small();
        let mut store = ParamStore::new();
        let mut init = Initializer::new(0);
        let penc = PlanEncoder::new(&mut store, &mut init, &cfg, db.catalog.num_tables());
        let norm = TargetNormalizer::fit(&[[1.0, 1.0, 1.0], [100.0, 50.0, 10.0]]);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let mut sess = crate::featurize::FeatSession::new();
        let mk = |op| {
            PlanNode::join(
                &q,
                op,
                PlanNode::join(
                    &q,
                    JoinOp::HashJoin,
                    PlanNode::scan(&q, "title", ScanOp::SeqScan),
                    PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
                ),
                PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
            )
        };
        let fa = f.featurize(&mut sess, &q, &mk(JoinOp::HashJoin), None, &norm, "t");
        let fb = f.featurize(&mut sess, &q, &mk(JoinOp::NestedLoopJoin), None, &norm, "t");
        let mut g = Graph::new();
        let ea = penc.forward(&mut g, &store, &fa.plan);
        let eb = penc.forward(&mut g, &store, &fb.plan);
        assert_ne!(g.value(ea.root).data(), g.value(eb.root).data());
    }

    #[test]
    fn batched_plan_encoding_bitwise_equals_scalar() {
        let (db, q, _) = setup();
        let cfg = ModelConfig::small();
        let mut store = ParamStore::new();
        let mut init = Initializer::new(0);
        let penc = PlanEncoder::new(&mut store, &mut init, &cfg, db.catalog.num_tables());
        let norm = TargetNormalizer::fit(&[[1.0, 1.0, 1.0], [100.0, 50.0, 10.0]]);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let mut sess = crate::featurize::FeatSession::new();
        // Three congruent left-deep candidates: different join orders and ops.
        let mk = |a: &str, b: &str, c: &str, op| {
            PlanNode::join(
                &q,
                op,
                PlanNode::join(
                    &q,
                    JoinOp::HashJoin,
                    PlanNode::scan(&q, a, ScanOp::SeqScan),
                    PlanNode::scan(&q, b, ScanOp::SeqScan),
                ),
                PlanNode::scan(&q, c, ScanOp::SeqScan),
            )
        };
        let feats: Vec<_> = [
            mk("title", "movie_info", "movie_keyword", JoinOp::HashJoin),
            mk("movie_info", "title", "movie_keyword", JoinOp::NestedLoopJoin),
            mk("movie_keyword", "title", "movie_info", JoinOp::MergeJoin),
        ]
        .iter()
        .map(|p| f.featurize(&mut sess, &q, p, None, &norm, "t").plan)
        .collect();
        let refs: Vec<&FeatNode> = feats.iter().collect();
        let mut sc = ScratchArena::new();
        let batched = penc
            .forward_inference_batch(&store, &refs, &mut sc)
            .expect("left-deep candidates are congruent");
        let n = feats[0].count();
        assert_eq!(batched.shape(), (3 * n, cfg.plan_node_out));
        for (p, fp) in feats.iter().enumerate() {
            let single = penc.forward_inference(&store, fp, &mut sc);
            for r in 0..n {
                assert_eq!(
                    batched.row_slice(p * n + r),
                    single.row_slice(r),
                    "plan {p} node {r}: batched encoding is not bitwise equal"
                );
            }
            sc.recycle(single);
        }
        // Non-congruent input (different node count) falls back to None.
        let bushy = PlanNode::scan(&q, "title", ScanOp::SeqScan);
        let fb = f.featurize(&mut sess, &q, &bushy, None, &norm, "t").plan;
        assert!(penc.forward_inference_batch(&store, &[&feats[0], &fb], &mut sc).is_none());
    }

    #[test]
    fn gradients_flow_to_both_encoders() {
        let (db, q, plan) = setup();
        let cfg = ModelConfig::small();
        let mut store = ParamStore::new();
        let mut init = Initializer::new(0);
        let qenc = QueryEncoder::new(
            &mut store,
            &mut init,
            &cfg,
            db.catalog.num_tables(),
            db.catalog.num_joins(),
        );
        let penc = PlanEncoder::new(&mut store, &mut init, &cfg, db.catalog.num_tables());
        let norm = TargetNormalizer::fit(&[[1.0, 1.0, 1.0], [100.0, 50.0, 10.0]]);
        let f = Featurizer::new(db.clone(), TabSim::new(TabertConfig::paper_default()));
        let mut sess = crate::featurize::FeatSession::new();
        let fq = f.featurize(&mut sess, &q, &plan, None, &norm, "t");
        store.zero_grads();
        let mut g = Graph::new();
        let qv = qenc.forward(&mut g, &store, &fq.query);
        let pv = penc.forward(&mut g, &store, &fq.plan);
        let cat = g.concat_cols(qv, pv.root);
        let loss = g.sum_all(cat);
        g.backward(loss, &mut store);
        assert!(store.grad(qenc.rel_mlp.layers[0].w).norm() > 0.0);
        assert!(store.grad(qenc.join_mlp.layers[0].w).norm() > 0.0);
        assert!(store.grad(penc.cell.w_ih).norm() > 0.0);
        assert!(store.grad(penc.cell.w_hh).norm() > 0.0);
    }
}
