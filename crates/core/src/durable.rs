//! Crash-safe persistence primitives: atomic file writes, the checksummed
//! envelope shared with [`crate::checkpoint`], and a rotating snapshot store
//! with corruption-quarantining recovery.
//!
//! The write protocol is write-to-temp → fsync → atomic rename → fsync of
//! the parent directory, so a crash at any point leaves either the old file
//! or the new file, never a torn mix. Because production filesystems do not
//! always keep that promise (and because chaos tests simulate ones that
//! don't), every payload is additionally sealed in the same versioned
//! FNV-64 envelope checkpoints use: a reader never trusts file contents the
//! checksum does not vouch for.
//!
//! [`SnapshotStore`] builds the durable-training layer on top: numbered
//! snapshots (`<prefix>-<seq>.snap`) with keep-N rotation, and a recovery
//! scan that returns the newest snapshot whose envelope verifies, renaming
//! corrupt candidates to `*.corrupt` (quarantine) so they are inspected
//! rather than silently retried. An empty directory is a fresh start
//! (`Ok(None)`); a directory where every candidate is corrupt is a typed
//! [`CoreError::NoValidSnapshot`], never a panic.

use crate::error::CoreError;
use qpseeker_storage::{DurableFault, FaultInjector};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Envelope format version for training snapshots (the checkpoint envelope
/// has its own constant; both share the wire format).
pub const SNAPSHOT_VERSION: u64 = 1;

/// FNV-1a over `s` (the envelope checksum).
pub fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Seal `payload` (itself JSON) in the versioned, checksummed envelope:
/// `{"version":V,"checksum":"<fnv64 hex>","payload":<payload>}`.
pub fn seal_envelope(payload: &str, version: u64) -> String {
    let checksum = fnv64(payload);
    format!("{{\"version\":{version},\"checksum\":\"{checksum:016x}\",\"payload\":{payload}}}")
}

/// Extract the raw payload substring from an envelope produced by
/// [`seal_envelope`]: everything after the `"payload":` key up to the
/// envelope's closing brace. Checksumming the raw bytes (rather than a
/// parsed re-serialization) means even flips that survive float rounding
/// are caught.
fn raw_payload(envelope: &str) -> Result<&str, CoreError> {
    const KEY: &str = "\"payload\":";
    let start = envelope
        .find(KEY)
        .ok_or_else(|| CoreError::CheckpointMalformed("missing payload field".into()))?
        + KEY.len();
    let end = envelope
        .rfind('}')
        .filter(|&e| e > start)
        .ok_or_else(|| CoreError::CheckpointMalformed("unterminated envelope".into()))?;
    Ok(&envelope[start..end])
}

/// Open an envelope, verifying the format version and the payload checksum.
/// Returns the raw payload substring on success.
///
/// # Errors
/// [`CoreError::CheckpointMalformed`] for unparseable input or a missing
/// envelope field, [`CoreError::CheckpointVersion`] for a version this build
/// does not read, [`CoreError::CheckpointCorrupted`] when the payload does
/// not match its recorded checksum (truncation, torn write, bit-rot).
pub fn open_envelope(envelope: &str, supported: u64) -> Result<&str, CoreError> {
    let parsed: serde_json::Value = serde_json::from_str(envelope)?;
    let version = parsed
        .get("version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| CoreError::CheckpointMalformed("missing version field".into()))?;
    if version != supported {
        return Err(CoreError::CheckpointVersion { found: version, supported });
    }
    let expected = parsed
        .get("checksum")
        .and_then(|v| v.as_str())
        .ok_or_else(|| CoreError::CheckpointMalformed("missing checksum field".into()))?
        .to_string();
    parsed
        .get("payload")
        .ok_or_else(|| CoreError::CheckpointMalformed("missing payload field".into()))?;
    let payload = raw_payload(envelope)?;
    let actual = format!("{:016x}", fnv64(payload));
    if actual != expected {
        return Err(CoreError::CheckpointCorrupted { expected, actual });
    }
    Ok(payload)
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Io { op, path: path.display().to_string(), message: e.to_string() }
}

/// Fsync a directory so a just-renamed (or just-created) entry inside it
/// survives power failure. On Unix an unsyncable directory is a real
/// durability hole — the rename itself can be lost — so failures are
/// reported as typed [`CoreError::Io`] errors rather than swallowed. On
/// platforms where directories cannot be opened for syncing the call is a
/// best-effort no-op.
pub fn fsync_dir(dir: &Path) -> Result<(), CoreError> {
    #[cfg(unix)]
    {
        let d = fs::File::open(dir).map_err(|e| io_err("open dir", dir, e))?;
        d.sync_all().map_err(|e| io_err("fsync dir", dir, e))?;
    }
    #[cfg(not(unix))]
    {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write `contents` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, fsync the directory. With an armed
/// [`FaultInjector`] the write may instead be torn (a truncated prefix
/// reaches the destination directly, simulating a non-atomic filesystem) or
/// die at a crash point; both surface as [`CoreError::InjectedCrash`] so
/// callers experience them exactly like a kill.
pub fn write_atomic(
    path: &Path,
    contents: &str,
    faults: Option<&FaultInjector>,
) -> Result<(), CoreError> {
    let site = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    if let Some(fi) = faults {
        match fi.durable_fault(&site, contents.len()) {
            Some(DurableFault::CrashPoint) => {
                return Err(CoreError::InjectedCrash { site, seq: fi.durable_writes() - 1 });
            }
            Some(DurableFault::TornWrite { keep_bytes }) => {
                // Simulate a filesystem without atomic rename: partial bytes
                // land in the destination itself, then the process "dies".
                fs::write(path, &contents.as_bytes()[..keep_bytes])
                    .map_err(|e| io_err("torn write", path, e))?;
                return Err(CoreError::InjectedCrash { site, seq: fi.durable_writes() - 1 });
            }
            None => {}
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(contents.as_bytes()).map_err(|e| io_err("write", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
    // Persist the rename itself: without the directory fsync the entry can
    // vanish on power failure even though the temp file's bytes were synced.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// A snapshot recovered from disk.
#[derive(Debug, Clone)]
pub struct RecoveredSnapshot {
    /// The snapshot's sequence number (for training: completed epochs).
    pub seq: u64,
    /// The verified raw payload (JSON).
    pub payload: String,
    /// Corrupt candidates quarantined while scanning down to this one.
    pub quarantined: usize,
}

/// Numbered, rotated, checksummed snapshot files in one directory.
///
/// Files are named `<prefix>-<seq:08>.snap`; rotation keeps the newest
/// `keep` of them. [`SnapshotStore::recover`] scans newest-first and returns
/// the first snapshot whose envelope verifies, quarantining corrupt ones as
/// `<name>.corrupt` along the way.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    prefix: String,
    keep: usize,
    faults: Option<FaultInjector>,
}

impl SnapshotStore {
    /// Open (creating if needed) a snapshot directory. `keep` is clamped to
    /// at least 2 so a torn newest snapshot always leaves a fallback.
    pub fn create(dir: impl Into<PathBuf>, prefix: &str, keep: usize) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;
        Ok(Self { dir, prefix: prefix.to_string(), keep: keep.max(2), faults: None })
    }

    /// Arm deterministic durable-path faults (chaos testing).
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}-{seq:08}.snap", self.prefix))
    }

    /// Snapshot files present on disk, sorted by ascending sequence number.
    fn list(&self) -> Result<Vec<(u64, PathBuf)>, CoreError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("read dir", &self.dir, e))?;
        let want_prefix = format!("{}-", self.prefix);
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", &self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_prefix(&want_prefix).and_then(|r| r.strip_suffix(".snap"))
            else {
                continue; // quarantined (*.corrupt), temp (*.tmp), or foreign
            };
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Seal `payload` in the snapshot envelope and write it atomically as
    /// sequence `seq`, then rotate old snapshots down to `keep`.
    pub fn write(&self, seq: u64, payload: &str) -> Result<PathBuf, CoreError> {
        let sealed = seal_envelope(payload, SNAPSHOT_VERSION);
        let path = self.path_of(seq);
        write_atomic(&path, &sealed, self.faults.as_ref())?;
        self.rotate()?;
        Ok(path)
    }

    fn rotate(&self) -> Result<(), CoreError> {
        let files = self.list()?;
        if files.len() > self.keep {
            for (_, path) in &files[..files.len() - self.keep] {
                fs::remove_file(path).map_err(|e| io_err("remove", path, e))?;
            }
        }
        Ok(())
    }

    /// Scan for the newest valid snapshot. Corrupt candidates (torn writes,
    /// bit-rot, version skew) are quarantined as `<name>.corrupt` and the
    /// scan falls back to the next-newest.
    ///
    /// Returns `Ok(None)` when the directory holds no snapshots at all (a
    /// fresh start) and [`CoreError::NoValidSnapshot`] when snapshots were
    /// present but every one was corrupt.
    pub fn recover(&self) -> Result<Option<RecoveredSnapshot>, CoreError> {
        let files = self.list()?;
        if files.is_empty() {
            return Ok(None);
        }
        let mut quarantined = 0usize;
        for (seq, path) in files.iter().rev() {
            match fs::read_to_string(path) {
                Ok(sealed) => match open_envelope(&sealed, SNAPSHOT_VERSION) {
                    Ok(payload) => {
                        return Ok(Some(RecoveredSnapshot {
                            seq: *seq,
                            payload: payload.to_string(),
                            quarantined,
                        }));
                    }
                    Err(_) => {
                        self.quarantine(path)?;
                        quarantined += 1;
                    }
                },
                Err(_) => {
                    self.quarantine(path)?;
                    quarantined += 1;
                }
            }
        }
        Err(CoreError::NoValidSnapshot { dir: self.dir.display().to_string(), quarantined })
    }

    fn quarantine(&self, path: &Path) -> Result<(), CoreError> {
        let mut name =
            path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        name.push_str(".corrupt");
        fs::rename(path, self.dir.join(name)).map_err(|e| io_err("quarantine", path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::FaultConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch directory per test (no tempfile crate in the tree).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("qps-durable-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn envelope_round_trips_and_rejects_tampering() {
        let payload = r#"{"a":1,"b":[1.5,2.25]}"#;
        let sealed = seal_envelope(payload, 3);
        assert_eq!(open_envelope(&sealed, 3).unwrap(), payload);
        assert!(matches!(
            open_envelope(&sealed, 4),
            Err(CoreError::CheckpointVersion { found: 3, supported: 4 })
        ));
        let tampered = sealed.replace("2.25", "2.26");
        assert!(matches!(open_envelope(&tampered, 3), Err(CoreError::CheckpointCorrupted { .. })));
        assert!(open_envelope(&sealed[..sealed.len() / 2], 3).is_err());
    }

    #[test]
    fn write_atomic_persists_and_replaces() {
        let dir = scratch("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic(&path, "first", None).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second", None).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No temp residue after a clean protocol run.
        assert!(!dir.join("state.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_point_fault_surfaces_as_injected_crash_and_leaves_no_file() {
        let dir = scratch("crash");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let fi = FaultInjector::new(FaultConfig {
            crash_after_writes: Some(0),
            ..FaultConfig::default()
        });
        let err = write_atomic(&path, "payload", Some(&fi)).unwrap_err();
        assert!(matches!(err, CoreError::InjectedCrash { seq: 0, .. }), "{err}");
        assert!(err.is_transient());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_leaves_a_truncated_destination() {
        let dir = scratch("torn");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let fi = FaultInjector::new(FaultConfig {
            seed: 5,
            torn_write_p: 1.0,
            ..FaultConfig::default()
        });
        let contents = "x".repeat(256);
        let err = write_atomic(&path, &contents, Some(&fi)).unwrap_err();
        assert!(matches!(err, CoreError::InjectedCrash { .. }), "{err}");
        let on_disk = fs::read_to_string(&path).unwrap();
        assert!(on_disk.len() < contents.len(), "torn write must truncate");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_the_newest_n() {
        let dir = scratch("rotate");
        let store = SnapshotStore::create(&dir, "epoch", 3).unwrap();
        for seq in 1..=5 {
            store.write(seq, &format!(r#"{{"epoch":{seq}}}"#)).unwrap();
        }
        let names: Vec<String> = {
            let mut v: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            v.sort();
            v
        };
        assert_eq!(names, ["epoch-00000003.snap", "epoch-00000004.snap", "epoch-00000005.snap"]);
        let rec = store.recover().unwrap().expect("snapshots exist");
        assert_eq!(rec.seq, 5);
        assert_eq!(rec.payload, r#"{"epoch":5}"#);
        assert_eq!(rec.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_falls_back_past_a_torn_newest_snapshot() {
        let dir = scratch("fallback");
        let store = SnapshotStore::create(&dir, "epoch", 4).unwrap();
        store.write(1, r#"{"epoch":1}"#).unwrap();
        store.write(2, r#"{"epoch":2}"#).unwrap();
        // Tear the newest snapshot by hand (as a non-atomic crash would).
        let newest = dir.join("epoch-00000003.snap");
        let sealed = seal_envelope(r#"{"epoch":3}"#, SNAPSHOT_VERSION);
        fs::write(&newest, &sealed[..sealed.len() / 2]).unwrap();
        let rec = store.recover().unwrap().expect("a valid snapshot remains");
        assert_eq!(rec.seq, 2, "recovery must fall back to the newest valid snapshot");
        assert_eq!(rec.quarantined, 1);
        assert!(!newest.exists(), "torn snapshot is quarantined away");
        assert!(dir.join("epoch-00000003.snap.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_recovers_to_fresh_start() {
        let dir = scratch("empty");
        let store = SnapshotStore::create(&dir, "epoch", 3).unwrap();
        assert!(store.recover().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_directory_is_a_typed_error() {
        let dir = scratch("allcorrupt");
        let store = SnapshotStore::create(&dir, "epoch", 3).unwrap();
        for seq in 1..=3u64 {
            fs::write(store.path_of(seq), "garbage, not an envelope").unwrap();
        }
        let err = store.recover().unwrap_err();
        assert!(
            matches!(err, CoreError::NoValidSnapshot { quarantined: 3, .. }),
            "expected NoValidSnapshot, got {err}"
        );
        // Every candidate was quarantined, none deleted.
        let corrupt = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".corrupt"))
            .count();
        assert_eq!(corrupt, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_ignores_quarantined_and_temp_files() {
        let dir = scratch("ignore");
        let store = SnapshotStore::create(&dir, "epoch", 3).unwrap();
        store.write(7, r#"{"epoch":7}"#).unwrap();
        fs::write(dir.join("epoch-00000009.snap.corrupt"), "junk").unwrap();
        fs::write(dir.join("epoch-00000010.tmp"), "junk").unwrap();
        let rec = store.recover().unwrap().expect("valid snapshot exists");
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
