//! Monte Carlo Tree Search planning (§5.2).
//!
//! Vanilla MCTS over the left-deep plan space, bottom-up: start from a base
//! relation and apply one join at a time until every relation is present.
//! Nodes are scored with UCT (`r/n + C·sqrt(ln t / n)`), where a node's
//! reward counts how often it lies on the best plan found so far; rollouts
//! complete the plan randomly, and completed plans are evaluated with
//! QPSeeker's learned cost model (least predicted execution time wins).
//! Planning stops at a wall-clock budget (paper: 200 ms) or a simulation
//! cap, whichever comes first.

//! # Root-parallel search (`parallel_sims >= 1`)
//!
//! The classic mode grows one tree per query. Root-parallel mode instead
//! decomposes the query into independent **units** — one per root action
//! `Start { rel, scan }`, in the same fixed order the classic expansion
//! enumerates them — and runs a complete subtree search per unit, each with
//! its own seed and an equal slice of the simulation budget derived from the
//! *unit index*, never from the thread that happens to run it. Worker threads
//! pull unit indices off an atomic cursor; merging is a fixed-order argmin
//! over unit results (strict `<`, earliest unit wins ties). Because no state
//! is shared between units, the chosen plan and its predicted time are
//! bitwise identical for any `parallel_sims >= 1` — thread count changes
//! wall-clock, never the answer.

use super::strategy::{Evaluator, RiskParams, SearchStrategy};
use super::{fnv, op_idx_join, op_idx_scan, QueryIndex};
use crate::featurize::FeatSession;
use crate::fnv::FnvBuild;
use crate::model::{Prediction, QPSeeker, QueryContext};
use crate::session::{PlannerSession, PlannerShard};
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::{JoinPred, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use std::time::Instant;

/// One plan-construction step. Relations are interned as indices into
/// `query.relations`, so actions are `Copy` and the hot loop never touches a
/// `String`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Choose the first relation and its scan operator.
    Start { rel: u32, scan: ScanOp },
    /// Join one more relation onto the prefix.
    Extend { rel: u32, scan: ScanOp, join: JoinOp },
}

impl Action {
    fn rel(self) -> u32 {
        match self {
            Action::Start { rel, .. } | Action::Extend { rel, .. } => rel,
        }
    }

    /// Compact signature: `rel << 4 | scan << 2 | join`. Used to key the
    /// evaluation cache with a `Vec<u64>` instead of owned `String`s. The
    /// join field is 0..=2 for `Extend` and 3 for `Start`, so the packing is
    /// injective.
    fn pack(self) -> u64 {
        match self {
            Action::Start { rel, scan } => (rel as u64) << 4 | (op_idx_scan(scan) as u64) << 2 | 3,
            Action::Extend { rel, scan, join } => {
                (rel as u64) << 4 | (op_idx_scan(scan) as u64) << 2 | op_idx_join(join) as u64
            }
        }
    }
}

/// Per-query prebuilt plan pieces. The search evaluates thousands of
/// complete plans per query, and materializing each one through
/// `LeftDeepSpec::compile` re-derived aliases, tables, filters, and join
/// predicates from strings every time (dozens of heap allocations plus a
/// full validation walk per plan). This assembler does that derivation once
/// per query — one ready-to-clone scan leaf per (relation, scan op), and
/// per relation the join predicates touching it in `query.joins` order —
/// so assembling a plan is one clone per node plus a bitmask filter.
///
/// Output is structurally identical to `compile` on the equivalent spec
/// (same predicate order, same pushed-down filters); validation is skipped
/// because the search only emits connected, duplicate-free sequences.
struct PlanAssembler {
    /// `scans[rel][op_idx_scan(op)]` — prebuilt scan leaf to clone.
    scans: Vec<[PlanNode; 3]>,
    /// `preds[rel]` — `(other_rel, predicate)` for every join predicate
    /// touching `rel`, in `query.joins` order.
    preds: Vec<Vec<(u32, JoinPred)>>,
}

impl PlanAssembler {
    fn new(query: &Query) -> Self {
        let scans = query
            .relations
            .iter()
            .map(|r| {
                ScanOp::ALL.map(|op| {
                    PlanNode::try_scan(query, &r.alias, op).expect("query relation has a table")
                })
            })
            .collect();
        let idx_of = |alias: &str| query.relations.iter().position(|r| r.alias == alias);
        let mut preds: Vec<Vec<(u32, JoinPred)>> = vec![Vec::new(); query.relations.len()];
        for j in &query.joins {
            if let (Some(l), Some(r)) = (idx_of(&j.left.alias), idx_of(&j.right.alias)) {
                if l != r {
                    preds[l].push((r as u32, j.clone()));
                    preds[r].push((l as u32, j.clone()));
                }
            }
        }
        Self { scans, preds }
    }

    /// Assemble the left-deep plan for a complete action sequence.
    fn build(&self, actions: &[Action]) -> PlanNode {
        self.assemble(actions, true)
    }

    /// Assemble a plan for fast-path **evaluation only**: identical tree,
    /// operators, aliases, and pushed-down filters, but empty join
    /// predicate lists. The fast featurization path
    /// ([`crate::featurize::Featurizer::featurize_plan_fast`]) reads node
    /// shape, operators, scan aliases/tables, and leaf filters — never
    /// `preds` — so predictions are bitwise identical to the full build
    /// while skipping roughly half its allocations (every `JoinPred` is
    /// four `String` clones). Guarded by the
    /// `eval_plan_scores_match_full_build` test; callers must fall back to
    /// [`Self::build`] when the query context takes the slow (tape) path,
    /// whose EXPLAIN walk does cost join predicates.
    fn build_for_eval(&self, actions: &[Action]) -> PlanNode {
        self.assemble(actions, false)
    }

    fn assemble(&self, actions: &[Action], with_preds: bool) -> PlanNode {
        let scan = |a: Action| {
            let (rel, op) = match a {
                Action::Start { rel, scan } | Action::Extend { rel, scan, .. } => (rel, scan),
            };
            self.scans[rel as usize][op_idx_scan(op) as usize].clone()
        };
        let first = *actions.first().expect("non-empty action sequence");
        let mut plan = scan(first);
        let mut joined = 1u64 << first.rel();
        for &a in &actions[1..] {
            let (rel, join) = match a {
                Action::Extend { rel, join, .. } => (rel, join),
                Action::Start { .. } => unreachable!("Start actions only open a sequence"),
            };
            let preds = if with_preds {
                self.preds[rel as usize]
                    .iter()
                    .filter(|&&(other, _)| joined >> other & 1 == 1)
                    .map(|(_, p)| p.clone())
                    .collect()
            } else {
                Vec::new()
            };
            plan =
                PlanNode::Join { op: join, left: Box::new(plan), right: Box::new(scan(a)), preds };
            joined |= 1 << rel;
        }
        plan
    }
}

/// MCTS configuration.
#[derive(Debug, Clone)]
pub struct MctsConfig {
    /// Wall-clock planning budget in milliseconds (paper: 200 ms).
    pub budget_ms: f64,
    /// Hard cap on simulations (determinism for tests; usize::MAX to disable).
    pub max_simulations: usize,
    /// UCT exploration coefficient `C ∈ [0, 1]` (paper: 0.5).
    pub exploration: f64,
    pub seed: u64,
    /// Completed rollouts per batched cost-model evaluation. Rollouts are
    /// queued (deduped by packed action signature) and scored `batch_eval`
    /// at a time in one batched forward pass; `<= 1` evaluates every rollout
    /// immediately (the scalar path). Predictions are bitwise identical
    /// either way — batching changes only *when* UCT backups land, never
    /// what a plan scores.
    ///
    /// Deprecated alias: prefer the unified
    /// [`StrategyConfig::batch_eval`](crate::search::strategy::StrategyConfig::batch_eval),
    /// which overrides this field when set. Kept for checkpoint/config
    /// compatibility and for direct `MctsPlanner` construction.
    pub batch_eval: usize,
    /// Simulation shards for root-parallel in-query search. `0` keeps the
    /// classic single-tree algorithm; `>= 1` decomposes the query into one
    /// independent subtree search per root action and runs them on up to
    /// this many threads. The chosen plan is bitwise identical for every
    /// shard count `>= 1` (see the module docs); `1` is the sequential
    /// execution of the same decomposition.
    pub parallel_sims: usize,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self {
            budget_ms: 200.0,
            max_simulations: 10_000,
            exploration: 0.5,
            seed: 0xacc5,
            batch_eval: 16,
            parallel_sims: 0,
        }
    }
}

/// Planning outcome.
#[derive(Debug)]
pub struct MctsResult {
    pub plan: PlanNode,
    /// Model-predicted runtime of the chosen plan.
    pub predicted_ms: f64,
    pub simulations: usize,
    /// Distinct complete plans evaluated by the cost model.
    pub plans_evaluated: usize,
    /// True when the search consumed its full time budget.
    pub budget_exhausted: bool,
}

struct TreeNode {
    visits: f64,
    reward: f64,
    /// Insertion-ordered so UCT tie-breaking is deterministic.
    children: Vec<(Action, usize)>,
    untried: Vec<Action>,
    expanded: bool,
    /// The subtree below this node is fully enumerated (every reachable
    /// complete plan has been evaluated), so descending into it again can
    /// never surface a new plan. UCT skips exhausted children, which keeps
    /// the simulation budget pointed at plans the cost model has not scored
    /// yet instead of re-walking the incumbent best path.
    exhausted: bool,
}

impl TreeNode {
    /// A fresh node drawing its (empty) vectors from the scratch pools, so
    /// a steady stream of simulations re-uses the previous query's node
    /// allocations instead of growing new ones.
    fn fresh(
        untried_pool: &mut Vec<Vec<Action>>,
        children_pool: &mut Vec<Vec<(Action, usize)>>,
    ) -> Self {
        Self {
            visits: 0.0,
            reward: 0.0,
            children: children_pool.pop().unwrap_or_default(),
            untried: untried_pool.pop().unwrap_or_default(),
            expanded: false,
            exhausted: false,
        }
    }
}

/// A completed rollout waiting in the batched-evaluation queue: the tree
/// path to back up once the score lands, and the full action sequence. The
/// in-tree prefix `actions` is always a prefix of `rollout`
/// (`path.len() == actions.len() + 1`), so deferred backpropagation needs
/// no separate copy of `actions`.
#[derive(Default)]
struct Waiter {
    path: Vec<usize>,
    rollout: Vec<Action>,
}

/// One distinct plan awaiting batched evaluation, with every rollout that
/// produced it. Queued plans are deduped by packed action signature so a
/// flush never scores the same plan twice.
#[derive(Default)]
struct Pending {
    key: Vec<u64>,
    waiters: Vec<Waiter>,
}

/// Reusable MCTS search state, cleared at the start of every
/// [`MctsPlanner::plan_with_session`] call: the tree arena, the per-query
/// evaluation cache, and the hot-loop buffers. Lives in a
/// [`PlannerSession`] so a serving worker reuses the allocations across
/// every query it handles.
#[derive(Default)]
pub struct MctsScratch {
    nodes: Vec<TreeNode>,
    eval_cache: HashMap<Vec<u64>, f64, FnvBuild>,
    path: Vec<usize>,
    actions: Vec<Action>,
    rollout: Vec<Action>,
    acts_buf: Vec<Action>,
    key_buf: Vec<u64>,
    /// Rollouts queued for the next batched evaluation, deduped by key.
    pending: Vec<Pending>,
    /// Recycled `Pending`/`Waiter`/cache-key/tree-node allocations.
    /// `key_pool` is refilled from the previous query's drained eval cache
    /// and the node pools from its drained tree, so a steady stream of
    /// queries allocates no new key or node vectors.
    pending_pool: Vec<Pending>,
    waiter_pool: Vec<Waiter>,
    key_pool: Vec<Vec<u64>>,
    untried_pool: Vec<Vec<Action>>,
    children_pool: Vec<Vec<(Action, usize)>>,
    /// Best complete action sequence found so far (scratch for what used to
    /// be a per-improvement `rollout.clone()`).
    best_seq: Vec<Action>,
    plans_buf: Vec<PlanNode>,
    preds_buf: Vec<Prediction>,
    scores_buf: Vec<f64>,
}

impl MctsScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// The MCTS planner. Owns the search tree for one query.
pub struct MctsPlanner {
    cfg: MctsConfig,
    /// Risk-aware scoring (`mean + λ·σ` over seeded latent samples); `None`
    /// keeps the original mean-only path, byte for byte.
    risk: Option<RiskParams>,
}

impl MctsPlanner {
    pub fn new(cfg: MctsConfig) -> Self {
        Self { cfg, risk: None }
    }

    /// An MCTS planner whose rollout evaluations rank plans by
    /// `mean + λ·σ` over seeded VAE latent samples (see
    /// [`super::strategy::Evaluator`]). With `risk.lambda == 0` this is
    /// exactly [`Self::new`].
    pub fn with_risk(cfg: MctsConfig, risk: RiskParams) -> Self {
        let risk = if risk.enabled() { Some(risk) } else { None };
        Self { cfg, risk }
    }

    /// Plan `query` using `model` as the evaluation function, through the
    /// model's internal fallback session. Convenience wrapper over
    /// [`Self::plan_with_session`] for single-threaded callers; serving
    /// workers pass their own session to keep the hot path lock-free.
    pub fn plan(&self, model: &QPSeeker, query: &Query) -> MctsResult {
        let mut sess = model.lock_fallback_session();
        self.plan_with_session(model, query, &mut sess)
    }

    /// Plan `query` using `model` as the evaluation function, with all
    /// mutable state in `sess`. The query is encoded exactly once (via
    /// [`QPSeeker::query_context`]); every rollout evaluation reuses that
    /// embedding and only pays for the plan side.
    pub fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut PlannerSession,
    ) -> MctsResult {
        assert!(!query.relations.is_empty(), "cannot plan an empty query");
        let start = Instant::now();
        let ev = Evaluator::new(model, query, self.risk.as_ref(), self.cfg.seed);

        // Single relation: evaluate the three scan choices directly.
        if query.relations.len() == 1 {
            let ev = ev.with_broker(sess.broker.as_ref());
            let mut ctx = model.query_context(query);
            let feat_sess = &mut sess.feat;
            let alias = query.relations[0].alias.clone();
            let mut best: Option<(PlanNode, f64)> = None;
            let mut evaluated = 0;
            for op in ScanOp::ALL {
                let plan = PlanNode::scan(query, &alias, op);
                let t = ev.score_one(feat_sess, query, &plan, &mut ctx);
                evaluated += 1;
                if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                    best = Some((plan, t));
                }
            }
            let (plan, predicted_ms) = best.expect("scan ops non-empty");
            return MctsResult {
                plan,
                predicted_ms,
                simulations: evaluated,
                plans_evaluated: evaluated,
                budget_exhausted: false,
            };
        }

        let qi = QueryIndex::new(query);
        let asm = PlanAssembler::new(query);
        if self.cfg.parallel_sims >= 1 {
            return self.plan_root_parallel(&ev, model, query, &qi, &asm, sess, start);
        }

        let mut ctx = model.query_context(query);
        let mut best_t: Option<f64> = None;
        let PlannerSession { feat, search, broker, .. } = sess;
        let ev = ev.with_broker(broker.as_ref());
        let scratch = search.mcts();
        let (simulations, budget_exhausted) = run_search(
            &self.cfg,
            &ev,
            query,
            &qi,
            &asm,
            feat,
            &mut ctx,
            scratch,
            None,
            self.cfg.seed ^ fnv(query.id.as_bytes()),
            self.cfg.max_simulations,
            start,
            &mut best_t,
        );
        let MctsScratch { eval_cache, acts_buf, best_seq, .. } = scratch;
        if best_t.is_none() {
            // Budget hit before any complete rollout: greedy completion.
            greedy_complete(&qi, best_seq, acts_buf);
        }
        let plan = asm.build(best_seq);
        MctsResult {
            plan,
            predicted_ms: best_t.unwrap_or(f64::INFINITY),
            simulations,
            plans_evaluated: eval_cache.len(),
            budget_exhausted,
        }
    }

    /// Root-parallel planning (see the module docs): one independent
    /// subtree search per root action, sharded over up to
    /// `cfg.parallel_sims` threads, merged by a fixed-order argmin. Bitwise
    /// identical to itself for every `parallel_sims >= 1`.
    #[allow(clippy::too_many_arguments)]
    fn plan_root_parallel(
        &self,
        ev: &Evaluator,
        model: &QPSeeker,
        query: &Query,
        qi: &QueryIndex,
        asm: &PlanAssembler,
        sess: &mut PlannerSession,
        start: Instant,
    ) -> MctsResult {
        let mut units = Vec::new();
        legal_actions_into(qi, &[], 0, &mut units);
        let n_units = units.len();
        debug_assert!(n_units > 0);
        let threads = self.cfg.parallel_sims.min(n_units).max(1);
        if sess.shards.len() < threads {
            sess.shards.resize_with(threads, PlannerShard::default);
        }
        // Budget slice and seed are functions of the *unit index* alone, so
        // which thread runs a unit can never influence its search.
        let base = self.cfg.max_simulations / n_units;
        let rem = self.cfg.max_simulations % n_units;
        let query_seed = self.cfg.seed ^ fnv(query.id.as_bytes());
        let cfg = &self.cfg;
        let units = &units;
        let cursor = &AtomicUsize::new(0);
        let per_thread: Vec<Vec<(usize, UnitResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sess
                .shards
                .iter_mut()
                .take(threads)
                .map(|shard| {
                    scope.spawn(move || {
                        // One query encoding per thread, reused across every
                        // unit this thread happens to pull.
                        let mut ctx = model.query_context(query);
                        let mut out = Vec::new();
                        loop {
                            let u = cursor.fetch_add(1, Ordering::Relaxed);
                            if u >= n_units {
                                break;
                            }
                            let seed =
                                query_seed ^ (u as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                            let mut best_t = None;
                            let (simulations, budget_exhausted) = run_search(
                                cfg,
                                ev,
                                query,
                                qi,
                                asm,
                                &mut shard.feat,
                                &mut ctx,
                                &mut shard.mcts,
                                Some(units[u]),
                                seed,
                                base + usize::from(u < rem),
                                start,
                                &mut best_t,
                            );
                            out.push((
                                u,
                                UnitResult {
                                    best_seq: shard.mcts.best_seq.clone(),
                                    best_t,
                                    simulations,
                                    // Unit plan sets are disjoint (plans
                                    // differ in their first action), so
                                    // per-unit cache sizes sum exactly.
                                    plans_evaluated: shard.mcts.eval_cache.len(),
                                    budget_exhausted,
                                },
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("mcts shard thread panicked")).collect()
        });

        // Deterministic merge: unit-index order, strict `<` so the earliest
        // unit wins predicted-time ties regardless of scheduling.
        let mut results: Vec<(usize, UnitResult)> = per_thread.into_iter().flatten().collect();
        results.sort_by_key(|&(u, _)| u);
        let mut simulations = 0usize;
        let mut plans_evaluated = 0usize;
        let mut budget_exhausted = false;
        let mut best: Option<(f64, usize)> = None;
        for (i, (_, r)) in results.iter().enumerate() {
            simulations += r.simulations;
            plans_evaluated += r.plans_evaluated;
            budget_exhausted |= r.budget_exhausted;
            if let Some(t) = r.best_t {
                if best.map(|(bt, _)| t < bt).unwrap_or(true) {
                    best = Some((t, i));
                }
            }
        }
        match best {
            Some((t, i)) => MctsResult {
                plan: asm.build(&results[i].1.best_seq),
                predicted_ms: t,
                simulations,
                plans_evaluated,
                budget_exhausted,
            },
            None => {
                // Budget hit before any unit completed a rollout.
                let MctsScratch { acts_buf, best_seq, .. } = sess.search.mcts();
                greedy_complete(qi, best_seq, acts_buf);
                MctsResult {
                    plan: asm.build(best_seq),
                    predicted_ms: f64::INFINITY,
                    simulations,
                    plans_evaluated,
                    budget_exhausted,
                }
            }
        }
    }
}

impl SearchStrategy for MctsPlanner {
    fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut PlannerSession,
    ) -> MctsResult {
        MctsPlanner::plan_with_session(self, model, query, sess)
    }
}

/// Outcome of one root-parallel unit search.
struct UnitResult {
    best_seq: Vec<Action>,
    best_t: Option<f64>,
    simulations: usize,
    plans_evaluated: usize,
    budget_exhausted: bool,
}

/// Grow one search tree to completion: the classic whole-query algorithm
/// when `root_prefix` is `None`, or — in root-parallel mode — the subtree
/// rooted *after* `root_prefix`, which every rollout then starts with. All
/// mutable state lives in `scratch` (cleared on entry, allocations
/// recycled); on return `scratch.best_seq` holds the best complete action
/// sequence found (empty if no rollout finished) and `scratch.eval_cache`
/// exactly the distinct plans this search scored. Returns
/// `(simulations, budget_exhausted)`.
#[allow(clippy::too_many_arguments)]
fn run_search(
    cfg: &MctsConfig,
    ev: &Evaluator,
    query: &Query,
    qi: &QueryIndex,
    asm: &PlanAssembler,
    feat_sess: &mut FeatSession,
    ctx: &mut QueryContext,
    scratch: &mut MctsScratch,
    root_prefix: Option<Action>,
    seed: u64,
    max_simulations: usize,
    start: Instant,
    best_t: &mut Option<f64>,
) -> (usize, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    // With a root prefix, the tree root represents the state *after* that
    // action: path index `depth` corresponds to `depth + off` actions taken,
    // and reward attribution must compare action prefixes at that offset.
    let off = usize::from(root_prefix.is_some());
    // Per-query state cleared on entry; allocations carry over between
    // queries handled by the same session.
    let MctsScratch {
        nodes,
        eval_cache,
        path,
        actions,
        rollout,
        acts_buf: _,
        key_buf,
        pending,
        pending_pool,
        waiter_pool,
        key_pool,
        best_seq,
        plans_buf,
        preds_buf,
        scores_buf,
        untried_pool,
        children_pool,
    } = scratch;
    // Drain (not clear) the previous tree so its node vectors feed this
    // search's expansions.
    for mut n in nodes.drain(..) {
        n.untried.clear();
        untried_pool.push(n.untried);
        n.children.clear();
        children_pool.push(n.children);
    }
    nodes.push(TreeNode::fresh(untried_pool, children_pool));
    // Drain (not clear) so the previous search's key allocations feed
    // this search's cache inserts.
    key_pool.extend(eval_cache.drain().map(|(k, _)| k));
    pending.clear();
    best_seq.clear();
    let mut simulations = 0usize;
    let mut budget_exhausted = false;

    while simulations < max_simulations {
        if start.elapsed().as_secs_f64() * 1000.0 > cfg.budget_ms {
            budget_exhausted = true;
            break;
        }
        simulations += 1;

        // ---- Selection + Expansion ----
        path.clear();
        path.push(0);
        actions.clear();
        let mut joined = 0u64;
        if let Some(a) = root_prefix {
            actions.push(a);
            joined = 1 << a.rel();
        }
        loop {
            let node_idx = *path.last().expect("path non-empty");
            if !nodes[node_idx].expanded {
                legal_actions_into(qi, actions, joined, &mut nodes[node_idx].untried);
                nodes[node_idx].expanded = true;
            }
            if actions.len() == qi.n {
                break; // complete plan reached inside the tree
            }
            if !nodes[node_idx].untried.is_empty() {
                // Expansion: take one untried action at random.
                let i = rng.gen_range(0..nodes[node_idx].untried.len());
                let action = nodes[node_idx].untried.swap_remove(i);
                let child = nodes.len();
                nodes.push(TreeNode::fresh(untried_pool, children_pool));
                nodes[node_idx].children.push((action, child));
                actions.push(action);
                joined |= 1 << action.rel();
                path.push(child);
                break;
            }
            // Fully expanded: UCT descent over child indices; `Action`
            // is `Copy`, so no per-step clone of the child list.
            // Exhausted subtrees hold no unevaluated plans and are
            // skipped.
            let parent_visits = nodes[node_idx].visits.max(1.0);
            let mut best_child: Option<(f64, Action, usize)> = None;
            for &(a, c) in &nodes[node_idx].children {
                let child = &nodes[c];
                if child.exhausted {
                    continue;
                }
                let score = if child.visits == 0.0 {
                    f64::INFINITY
                } else {
                    child.reward / child.visits
                        + cfg.exploration * (parent_visits.ln() / child.visits).sqrt()
                };
                if best_child.as_ref().map(|(s, _, _)| score > *s).unwrap_or(true) {
                    best_child = Some((score, a, c));
                }
            }
            match best_child {
                Some((_, a, c)) => {
                    actions.push(a);
                    joined |= 1 << a.rel();
                    path.push(c);
                }
                None => break, // dead end or fully enumerated subtree
            }
        }

        // ---- Rollout ----
        // Uniform random completion, sampled directly from the frontier
        // bitmask. Each frontier relation contributes exactly 3 scans x 3
        // joins in the flat legal-action list, so drawing one index in
        // `0..popcount * 9` and decoding it picks the same action — with
        // the same RNG draw — as indexing the materialized list, without
        // building it.
        rollout.clear();
        rollout.extend_from_slice(actions);
        let mut roll_joined = joined;
        while rollout.len() < qi.n {
            let a = if rollout.is_empty() {
                let i = rng.gen_range(0..qi.n * 3);
                Action::Start { rel: (i / 3) as u32, scan: ScanOp::ALL[i % 3] }
            } else {
                let frontier = qi.frontier(roll_joined);
                if frontier == 0 {
                    break;
                }
                let i = rng.gen_range(0..frontier.count_ones() as usize * 9);
                let mut rest = frontier;
                for _ in 0..i / 9 {
                    rest &= rest - 1;
                }
                let rel = rest.trailing_zeros();
                Action::Extend { rel, scan: ScanOp::ALL[i % 9 / 3], join: JoinOp::ALL[i % 3] }
            };
            roll_joined |= 1 << a.rel();
            rollout.push(a);
        }
        if rollout.len() != qi.n {
            continue; // disconnected: cannot finish from here
        }

        // ---- Evaluation ----
        // A cache hit backs up immediately. With batching enabled, a
        // miss joins the pending queue (deduped by packed signature)
        // and its backup is deferred until the queue flushes through
        // one batched forward pass; scores are bitwise identical to
        // the scalar path either way.
        key_buf.clear();
        key_buf.extend(rollout.iter().map(|a| a.pack()));
        if let Some(&t) = eval_cache.get(key_buf.as_slice()) {
            apply_eval(nodes, best_seq, best_t, rollout, path, off, t, true);
        } else if cfg.batch_eval <= 1 {
            let plan = if ctx.fast { asm.build_for_eval(rollout) } else { asm.build(rollout) };
            let t = ev.score_one(feat_sess, query, &plan, ctx);
            let mut key = key_pool.pop().unwrap_or_default();
            key.clear();
            key.extend_from_slice(key_buf);
            eval_cache.insert(key, t);
            apply_eval(nodes, best_seq, best_t, rollout, path, off, t, true);
        } else {
            // Virtual loss: count the visit now (reward comes at flush
            // time) so UCT stops re-selecting a path whose score is
            // already in flight — without it a large fraction of the
            // simulations between flushes duplicate queued rollouts.
            for &ni in path.iter() {
                nodes[ni].visits += 1.0;
            }
            let mut w = waiter_pool.pop().unwrap_or_default();
            w.path.clear();
            w.path.extend_from_slice(path);
            w.rollout.clear();
            w.rollout.extend_from_slice(rollout);
            match pending.iter_mut().find(|p| p.key == *key_buf) {
                Some(p) => p.waiters.push(w),
                None => {
                    let mut p = pending_pool.pop().unwrap_or_default();
                    let mut key = key_pool.pop().unwrap_or_default();
                    key.clear();
                    key.extend_from_slice(key_buf);
                    p.key = key;
                    p.waiters.push(w);
                    pending.push(p);
                }
            }
            if pending.len() >= cfg.batch_eval {
                flush_pending(
                    ev,
                    query,
                    asm,
                    feat_sess,
                    ctx,
                    pending,
                    pending_pool,
                    waiter_pool,
                    eval_cache,
                    nodes,
                    best_seq,
                    best_t,
                    off,
                    plans_buf,
                    preds_buf,
                    scores_buf,
                );
            }
        }

        // ---- Exhaustion propagation (bottom-up along the path) ----
        // A terminal node and a dead end both have an empty `untried`
        // and no unexhausted children; an interior node becomes
        // exhausted once every child is.
        for &node_idx in path.iter().rev() {
            let n = &nodes[node_idx];
            if n.expanded
                && n.untried.is_empty()
                && n.children.iter().all(|&(_, c)| nodes[c].exhausted)
            {
                nodes[node_idx].exhausted = true;
            } else {
                break;
            }
        }
        if nodes[0].exhausted {
            // The whole reachable plan space has been scored; further
            // simulations cannot find anything new.
            break;
        }
    }

    // Score whatever is still queued (budget cut-offs and exhaustion
    // exits land here with a partial batch).
    flush_pending(
        ev,
        query,
        asm,
        feat_sess,
        ctx,
        pending,
        pending_pool,
        waiter_pool,
        eval_cache,
        nodes,
        best_seq,
        best_t,
        off,
        plans_buf,
        preds_buf,
        scores_buf,
    );
    (simulations, budget_exhausted)
}

/// Deterministic greedy plan completion for budget cut-offs that land
/// before any rollout finished: always take the first legal action.
fn greedy_complete(qi: &QueryIndex, best_seq: &mut Vec<Action>, acts_buf: &mut Vec<Action>) {
    best_seq.clear();
    let mut joined = 0u64;
    while best_seq.len() < qi.n {
        legal_actions_into(qi, best_seq, joined, acts_buf);
        let a = *acts_buf.first().expect("connected query");
        joined |= 1 << a.rel();
        best_seq.push(a);
    }
}

/// Record one scored rollout: update the incumbent best, then back the
/// score up the tree path. Reward = 1 when the node's action prefix lies
/// on the best plan; the in-tree prefix equals `rollout[..depth + off]`
/// for every depth on `path` (`off` is 1 in root-parallel unit searches,
/// whose tree root already stands for one action), so the waiter needs no
/// separate `actions` copy. `count_visit` is false for deferred (batched)
/// backups, whose visit was already recorded as a virtual loss at enqueue
/// time.
#[allow(clippy::too_many_arguments)]
fn apply_eval(
    nodes: &mut [TreeNode],
    best_seq: &mut Vec<Action>,
    best_t: &mut Option<f64>,
    rollout: &[Action],
    path: &[usize],
    off: usize,
    t: f64,
    count_visit: bool,
) {
    if best_t.map(|bt| t < bt).unwrap_or(true) {
        *best_t = Some(t);
        best_seq.clear();
        best_seq.extend_from_slice(rollout);
    }
    for (depth, &node_idx) in path.iter().enumerate() {
        let depth = depth + off;
        if count_visit {
            nodes[node_idx].visits += 1.0;
        }
        if depth <= best_seq.len() && rollout[..depth] == best_seq[..depth.min(best_seq.len())] {
            nodes[node_idx].reward += 1.0;
        }
    }
}

/// Compile every queued plan, score them all in one batched forward pass
/// ([`QPSeeker::predict_batch_with_context_in`]), scatter the results into
/// the eval cache, and run the deferred backups in queue order. All
/// allocations (pendings, waiters, cache keys) are recycled into pools.
#[allow(clippy::too_many_arguments)]
fn flush_pending(
    ev: &Evaluator,
    query: &Query,
    asm: &PlanAssembler,
    feat_sess: &mut FeatSession,
    ctx: &mut QueryContext,
    pending: &mut Vec<Pending>,
    pending_pool: &mut Vec<Pending>,
    waiter_pool: &mut Vec<Waiter>,
    eval_cache: &mut HashMap<Vec<u64>, f64, FnvBuild>,
    nodes: &mut [TreeNode],
    best_seq: &mut Vec<Action>,
    best_t: &mut Option<f64>,
    off: usize,
    plans_buf: &mut Vec<PlanNode>,
    preds_buf: &mut Vec<Prediction>,
    scores_buf: &mut Vec<f64>,
) {
    if pending.is_empty() {
        return;
    }
    plans_buf.clear();
    for p in pending.iter() {
        let rollout = &p.waiters[0].rollout;
        plans_buf.push(if ctx.fast { asm.build_for_eval(rollout) } else { asm.build(rollout) });
    }
    let plan_refs: Vec<&PlanNode> = plans_buf.iter().collect();
    ev.score_batch(feat_sess, query, &plan_refs, ctx, preds_buf, scores_buf);
    debug_assert_eq!(scores_buf.len(), pending.len());
    for (p, &t) in pending.iter_mut().zip(scores_buf.iter()) {
        eval_cache.insert(std::mem::take(&mut p.key), t);
        for w in p.waiters.drain(..) {
            apply_eval(nodes, best_seq, best_t, &w.rollout, &w.path, off, t, false);
            waiter_pool.push(w);
        }
    }
    pending_pool.append(pending);
}

/// Legal actions from a partial action sequence into `out` (cleared first):
/// connected extensions only, in relation-index order so the search is
/// deterministic.
fn legal_actions_into(qi: &QueryIndex, actions: &[Action], joined: u64, out: &mut Vec<Action>) {
    out.clear();
    if actions.is_empty() {
        for rel in 0..qi.n as u32 {
            for scan in ScanOp::ALL {
                out.push(Action::Start { rel, scan });
            }
        }
        return;
    }
    let mut frontier = qi.frontier(joined);
    while frontier != 0 {
        let rel = frontier.trailing_zeros();
        frontier &= frontier - 1;
        for scan in ScanOp::ALL {
            for join in JoinOp::ALL {
                out.push(Action::Extend { rel, scan, join });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    fn fitted_model(db: &std::sync::Arc<qpseeker_storage::Database>) -> QPSeeker {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 16, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut m = QPSeeker::new(db, ModelConfig::small());
        m.fit(&refs).expect("training succeeds");
        m
    }

    fn three_way(db: &qpseeker_storage::Database) -> Query {
        let _ = db;
        let mut q = Query::new("mcts-q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q
    }

    #[test]
    fn produces_valid_left_deep_plan() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 500.0,
            max_simulations: 60,
            ..Default::default()
        });
        let res = planner.plan(&model, &q);
        assert!(res.plan.validate(&q).is_ok());
        assert!(res.plan.is_left_deep());
        assert!(res.simulations > 0);
        assert!(res.plans_evaluated > 0);
        assert!(res.predicted_ms.is_finite());
    }

    #[test]
    fn deterministic_with_simulation_cap() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let cfg = MctsConfig { budget_ms: 1e9, max_simulations: 40, ..Default::default() };
        let m1 = fitted_model(&db);
        let r1 = MctsPlanner::new(cfg.clone()).plan(&m1, &q);
        let m2 = fitted_model(&db);
        let r2 = MctsPlanner::new(cfg).plan(&m2, &q);
        assert_eq!(r1.plan, r2.plan);
        assert_eq!(r1.simulations, r2.simulations);
    }

    #[test]
    fn single_relation_query_picks_a_scan() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let mut q = Query::new("single");
        q.relations = vec![RelRef::new("title")];
        let res = MctsPlanner::new(MctsConfig::default()).plan(&model, &q);
        assert!(matches!(res.plan, PlanNode::Scan { .. }));
        assert_eq!(res.plans_evaluated, 3);
    }

    #[test]
    fn budget_cuts_off_search() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 1.0, // 1ms: will be exhausted almost immediately
            max_simulations: usize::MAX,
            ..Default::default()
        });
        let res = planner.plan(&model, &q);
        assert!(res.budget_exhausted);
        assert!(res.plan.validate(&q).is_ok(), "still returns the best plan found so far");
    }

    #[test]
    fn more_simulations_never_worsen_predicted_time() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let m1 = fitted_model(&db);
        let few = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 5,
            ..Default::default()
        })
        .plan(&m1, &q);
        let m2 = fitted_model(&db);
        let many = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 100,
            ..Default::default()
        })
        .plan(&m2, &q);
        assert!(many.predicted_ms <= few.predicted_ms + 1e-9);
    }

    #[test]
    fn batched_and_scalar_eval_agree_on_exhausted_space() {
        // Two relations: 54 left-deep plans, so both runs fully enumerate
        // the space. Batching changes evaluation *timing*, never scores,
        // so the argmin (and its bitwise predicted time) must match.
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let mut q = Query::new("two-way");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let cfg = MctsConfig { budget_ms: 1e9, max_simulations: 10_000, ..Default::default() };
        let m1 = fitted_model(&db);
        let scalar = MctsPlanner::new(MctsConfig { batch_eval: 1, ..cfg.clone() }).plan(&m1, &q);
        let m2 = fitted_model(&db);
        let batched = MctsPlanner::new(MctsConfig { batch_eval: 8, ..cfg }).plan(&m2, &q);
        assert_eq!(scalar.plans_evaluated, 54);
        assert_eq!(batched.plans_evaluated, 54);
        assert_eq!(scalar.plan, batched.plan);
        assert_eq!(scalar.predicted_ms.to_bits(), batched.predicted_ms.to_bits());
    }

    #[test]
    fn root_parallel_bitwise_identical_for_any_shard_count() {
        // The decomposition is by unit index, not by thread: 1, 2, and 4
        // shards must produce the same plan, the same predicted time to the
        // bit, and the same simulation count.
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let base = MctsConfig { budget_ms: 1e9, max_simulations: 240, ..Default::default() };
        let runs: Vec<MctsResult> = [1usize, 2, 4]
            .iter()
            .map(|&n| {
                MctsPlanner::new(MctsConfig { parallel_sims: n, ..base.clone() }).plan(&model, &q)
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(runs[0].plan, r.plan);
            assert_eq!(runs[0].predicted_ms.to_bits(), r.predicted_ms.to_bits());
            assert_eq!(runs[0].simulations, r.simulations);
            assert_eq!(runs[0].plans_evaluated, r.plans_evaluated);
        }
        assert!(runs[0].plan.validate(&q).is_ok());
        assert!(runs[0].plan.is_left_deep());
    }

    #[test]
    fn root_parallel_matches_classic_on_exhausted_space() {
        // Two relations: 54 left-deep plans. Both modes fully enumerate the
        // space, so the argmin — and its bitwise predicted time — must
        // match even though the search order differs.
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let mut q = Query::new("two-way-rp");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let cfg = MctsConfig { budget_ms: 1e9, max_simulations: 10_000, ..Default::default() };
        let classic = MctsPlanner::new(cfg.clone()).plan(&model, &q);
        let parallel = MctsPlanner::new(MctsConfig { parallel_sims: 2, ..cfg }).plan(&model, &q);
        assert_eq!(classic.plans_evaluated, 54);
        assert_eq!(parallel.plans_evaluated, 54);
        assert_eq!(classic.plan, parallel.plan);
        assert_eq!(classic.predicted_ms.to_bits(), parallel.predicted_ms.to_bits());
    }

    #[test]
    fn plan_assembler_matches_compiled_spec() {
        // The assembler must produce exactly what `LeftDeepSpec::compile`
        // produced for the same action sequence — same tree, same pushed
        // filters, same join-predicate order — since every bitwise
        // determinism guarantee is stated in terms of the emitted plan.
        use qpseeker_engine::inject::LeftDeepSpec;
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let asm = PlanAssembler::new(&q);
        let seqs: Vec<Vec<Action>> = vec![
            vec![
                Action::Start { rel: 0, scan: ScanOp::SeqScan },
                Action::Extend { rel: 1, scan: ScanOp::IndexScan, join: JoinOp::HashJoin },
                Action::Extend { rel: 2, scan: ScanOp::BitmapIndexScan, join: JoinOp::MergeJoin },
            ],
            vec![
                Action::Start { rel: 2, scan: ScanOp::IndexScan },
                Action::Extend { rel: 0, scan: ScanOp::SeqScan, join: JoinOp::NestedLoopJoin },
                Action::Extend { rel: 1, scan: ScanOp::SeqScan, join: JoinOp::HashJoin },
            ],
        ];
        for actions in &seqs {
            let spec = LeftDeepSpec {
                scans: actions
                    .iter()
                    .map(|a| {
                        let scan = match *a {
                            Action::Start { scan, .. } | Action::Extend { scan, .. } => scan,
                        };
                        (q.relations[a.rel() as usize].alias.clone(), scan)
                    })
                    .collect(),
                joins: actions
                    .iter()
                    .filter_map(|a| match *a {
                        Action::Extend { join, .. } => Some(join),
                        Action::Start { .. } => None,
                    })
                    .collect(),
            };
            let compiled = spec.compile(&q).expect("sequence compiles");
            assert_eq!(asm.build(actions), compiled);
        }
    }

    #[test]
    fn eval_plan_scores_match_full_build() {
        // The search scores `build_for_eval` plans (no join predicates)
        // but returns and reports `build` plans. That is only sound while
        // the fast featurization path ignores `preds`; this test turns the
        // invariant into a loud failure if featurization ever starts
        // reading them.
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let asm = PlanAssembler::new(&q);
        let actions = [
            Action::Start { rel: 0, scan: ScanOp::SeqScan },
            Action::Extend { rel: 1, scan: ScanOp::IndexScan, join: JoinOp::HashJoin },
            Action::Extend { rel: 2, scan: ScanOp::SeqScan, join: JoinOp::MergeJoin },
        ];
        let mut sess = model.lock_fallback_session();
        let mut ctx = model.query_context(&q);
        assert!(ctx.fast, "three-way query must take the fast path");
        let full = model
            .predict_with_context_in(&mut sess.feat, &q, &asm.build(&actions), &mut ctx)
            .runtime_ms;
        let eval = model
            .predict_with_context_in(&mut sess.feat, &q, &asm.build_for_eval(&actions), &mut ctx)
            .runtime_ms;
        assert_eq!(full.to_bits(), eval.to_bits());
    }

    #[test]
    fn legal_actions_respect_connectivity() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let q = three_way(&db);
        let qi = QueryIndex::new(&q);
        let mut acts = Vec::new();
        legal_actions_into(&qi, &[], 0, &mut acts);
        assert_eq!(acts.len(), 3 * 3); // 3 relations x 3 scan ops
                                       // movie_info is relation index 1; title (index 0) is its only neighbor.
        let start = Action::Start { rel: 1, scan: ScanOp::SeqScan };
        legal_actions_into(&qi, &[start], 1 << 1, &mut acts);
        assert!(acts.iter().all(|a| matches!(a, Action::Extend { rel: 0, .. })));
        assert_eq!(acts.len(), 3 * 3); // 1 relation x 3 scans x 3 joins
    }

    #[test]
    fn action_pack_is_injective_over_ops() {
        let mut seen = std::collections::HashSet::new();
        for rel in 0..4u32 {
            for scan in ScanOp::ALL {
                assert!(seen.insert(Action::Start { rel, scan }.pack()));
                for join in JoinOp::ALL {
                    assert!(seen.insert(Action::Extend { rel, scan, join }.pack()));
                }
            }
        }
    }
}
