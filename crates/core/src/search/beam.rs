//! Deterministic beam search over the bushy plan space, with
//! rollout-completed scoring.
//!
//! Level-synchronous: level 0 realizes every relation as a leaf subtree
//! (scan operators picked by one coordinate-descent pass), and each
//! following level merges two connected subtrees in every kept state, so
//! after `n - 1` levels every surviving state is one complete — possibly
//! bushy — plan. Per level the search enumerates, for each of the
//! `beam_width` kept states, every connected subtree pair × both
//! orientations × all join operators, and dedupes resulting forests by
//! hashed signature (neurdb's `Fringe`-style closed set).
//!
//! **Scoring.** The cost model is trained on *complete* plans only, so
//! partial-forest scores are out-of-distribution noise. Every candidate
//! state is therefore scored by greedily completing its forest to a full
//! plan (first joinable pair, hash join) and evaluating that completion
//! through the shared [`Evaluator`] (batched when congruent, memoized by
//! the completion's postorder signature). Ranking thus directly minimizes
//! the same objective left-deep MCTS optimizes, and the search returns
//! the best-scoring complete plan seen anywhere — at the final level the
//! completions are the states themselves.
//!
//! The search is RNG-free: enumeration orders are fixed (states by rank,
//! pairs by position, operators in `JoinOp::ALL` order), selection is a
//! stable sort with `f64::total_cmp`, and ties keep enumeration order —
//! so results are identical across runs, worker counts, and batch
//! layouts (batched scoring is row-wise bitwise equal to scalar).
//!
//! Compared to left-deep MCTS, beam search spends its evaluation budget
//! systematically near the greedy frontier instead of sampling the
//! factorially large order space, which wins on large (≥ 8 relation)
//! queries where MCTS coverage is necessarily sparse — and it can emit
//! bushy shapes MCTS cannot represent at all.

use super::bushy::{joinable, BushyAssembler, SubTree};
use super::mcts::MctsResult;
use super::strategy::{Evaluator, RiskParams, SearchStrategy};
use super::{fnv_words, op_idx_join, op_idx_scan, QueryIndex};
use crate::featurize::FeatSession;
use crate::fnv::FnvBuild;
use crate::model::{Prediction, QPSeeker, QueryContext};
use crate::session::PlannerSession;
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::Query;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Beam-search configuration. Shares the left-deep planner's budget/seed
/// semantics so serving can derive either strategy from one knob set.
#[derive(Debug, Clone)]
pub struct BeamConfig {
    /// Wall-clock planning budget in milliseconds, checked per level.
    pub budget_ms: f64,
    /// States kept per level.
    pub beam_width: usize,
    /// Soft cap on cost-model evaluations, checked per level.
    pub max_evals: usize,
    /// Seeds the risk-aware latent sampler (the search itself is RNG-free).
    pub seed: u64,
    /// `> 1` scores each level's fresh subtrees in one batched forward
    /// pass; `<= 1` scores them one at a time. Scores are bitwise
    /// identical either way.
    ///
    /// Deprecated alias: prefer the unified
    /// [`StrategyConfig::batch_eval`](crate::search::strategy::StrategyConfig::batch_eval),
    /// which overrides this field when set (it is plumbed through
    /// [`StrategyPlanner::from_config`](crate::search::strategy::StrategyPlanner::from_config)'s
    /// shared `MctsConfig` knobs). Kept for direct `BeamPlanner`
    /// construction.
    pub batch_eval: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        Self { budget_ms: 200.0, beam_width: 8, max_evals: 10_000, seed: 0xacc5, batch_eval: 16 }
    }
}

/// Reusable beam-search state, cleared per query: the completed-plan
/// evaluation cache (keyed by exact postorder signature), the forest
/// closed set, and the scoring buffers. Lives in a
/// [`crate::session::SearchScratch`] so a serving worker reuses
/// allocations across queries.
#[derive(Default)]
pub struct BeamScratch {
    /// Greedy-completion signature → evaluator score.
    eval_cache: HashMap<Vec<u64>, f64, FnvBuild>,
    /// Hashes of forests already enqueued as candidates. A collision can
    /// only drop a duplicate-looking state, never corrupt a score.
    seen: HashSet<u64, FnvBuild>,
    preds_buf: Vec<Prediction>,
    scores_buf: Vec<f64>,
}

impl BeamScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// One beam state: a forest of realized subtrees with disjoint masks,
/// kept sorted by mask for canonical identity. States carry no score of
/// their own — candidates are ranked by their greedy completion's score.
struct BeamState {
    trees: Vec<SubTree>,
}

/// One candidate merge: join `trees[left] ⋈op trees[right]` of
/// `beam[parent]`. `comp_sig` identifies the greedy completion of the
/// resulting forest; `score` is that completion's evaluator score.
struct Candidate {
    parent: usize,
    left: usize,
    right: usize,
    op: JoinOp,
    sig: Vec<u64>,
    comp_sig: Vec<u64>,
    score: f64,
}

/// Greedily complete a forest to one tree: repeatedly join the first
/// joinable pair (first pair at all when none is joinable — a cross join
/// on a disconnected query) with the first join operator. Deterministic,
/// evaluation-free; the result is what a candidate state is scored on.
fn greedy_complete(qi: &QueryIndex, asm: &BushyAssembler, state: &[SubTree]) -> SubTree {
    if state.len() == 1 {
        return state[0].clone();
    }
    let mut trees: Vec<SubTree> = state.to_vec();
    while trees.len() > 1 {
        let mut pick = (0usize, 1usize);
        'outer: for i in 0..trees.len() {
            for j in i + 1..trees.len() {
                if joinable(qi, trees[i].mask, trees[j].mask) {
                    pick = (i, j);
                    break 'outer;
                }
            }
        }
        let (i, j) = pick;
        let merged = SubTree {
            mask: trees[i].mask | trees[j].mask,
            sig: SubTree::joined_sig(&trees[i], &trees[j], JoinOp::ALL[0]),
            plan: asm.join(JoinOp::ALL[0], &trees[i], &trees[j]),
        };
        trees.remove(j);
        trees.remove(i);
        trees.push(merged);
        trees.sort_by_key(|t| t.mask);
    }
    trees.pop().expect("one tree remains")
}

/// Nodes in `plan`, for postorder indexing.
fn node_count(plan: &PlanNode) -> usize {
    match plan {
        PlanNode::Scan { .. } => 1,
        PlanNode::Join { left, right, .. } => node_count(left) + node_count(right) + 1,
    }
}

/// Replace the operator of postorder node `target` with the `k`-th of its
/// kind (`ScanOp::ALL` for scans, `JoinOp::ALL` for joins). Returns the
/// index of the operator previously there.
fn set_node_op(plan: &mut PlanNode, target: usize, k: usize, counter: &mut usize) -> Option<usize> {
    match plan {
        PlanNode::Scan { op, .. } => {
            let here = *counter;
            *counter += 1;
            (here == target).then(|| {
                let old = op_idx_scan(*op) as usize;
                *op = ScanOp::ALL[k];
                old
            })
        }
        PlanNode::Join { op, left, right, .. } => {
            if let Some(old) = set_node_op(left, target, k, counter) {
                return Some(old);
            }
            if let Some(old) = set_node_op(right, target, k, counter) {
                return Some(old);
            }
            let here = *counter;
            *counter += 1;
            (here == target).then(|| {
                let old = op_idx_join(*op) as usize;
                *op = JoinOp::ALL[k];
                old
            })
        }
    }
}

/// The beam-search planner over the bushy action space.
pub struct BeamPlanner {
    cfg: BeamConfig,
    risk: Option<RiskParams>,
}

impl BeamPlanner {
    pub fn new(cfg: BeamConfig) -> Self {
        Self { cfg, risk: None }
    }

    /// Beam search ranking candidates by `mean + λ·σ` over seeded VAE
    /// latent samples. With `risk.lambda == 0` this is exactly
    /// [`Self::new`].
    pub fn with_risk(cfg: BeamConfig, risk: RiskParams) -> Self {
        let risk = if risk.enabled() { Some(risk) } else { None };
        Self { cfg, risk }
    }

    /// Plan through the model's internal fallback session (see
    /// [`super::mcts::MctsPlanner::plan`]).
    pub fn plan(&self, model: &QPSeeker, query: &Query) -> MctsResult {
        let mut sess = model.lock_fallback_session();
        self.plan_with_session(model, query, &mut sess)
    }

    /// Plan `query` with all mutable state in `sess`.
    pub fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut PlannerSession,
    ) -> MctsResult {
        assert!(!query.relations.is_empty(), "cannot plan an empty query");
        let start = Instant::now();
        let ev = Evaluator::new(model, query, self.risk.as_ref(), self.cfg.seed);
        let mut ctx = model.query_context(query);
        let qi = QueryIndex::new(query);
        let asm = BushyAssembler::new(query);
        let PlannerSession { feat, search, broker, .. } = sess;
        let ev = ev.with_broker(broker.as_ref());
        let scratch = search.beam();
        scratch.eval_cache.clear();
        scratch.seen.clear();
        let width = self.cfg.beam_width.max(1);
        let n = qi.n;

        // ---- Single relation: evaluate the three scans directly ----
        if n == 1 {
            let scan_plans: Vec<PlanNode> = ScanOp::ALL.iter().map(|&op| asm.scan(0, op)).collect();
            let scan_refs: Vec<&PlanNode> = scan_plans.iter().collect();
            self.score(&ev, feat, query, &scan_refs, &mut ctx, scratch);
            let mut best = (0usize, scratch.scores_buf[0]);
            for (k, &s) in scratch.scores_buf.iter().enumerate().skip(1) {
                if s < best.1 {
                    best = (k, s);
                }
            }
            return MctsResult {
                plan: scan_plans[best.0].clone(),
                predicted_ms: best.1,
                simulations: 3,
                plans_evaluated: 3,
                budget_exhausted: false,
            };
        }

        // ---- Level 0: pick each relation's scan by coordinate descent
        // on greedy completions (every evaluation is a complete plan) ----
        let mut best: Option<(f64, SubTree)> = None;
        let mut evals = 0usize;
        let mut scan_choice = vec![0usize; n];
        for rel in 0..n {
            let mut comps: Vec<SubTree> = Vec::with_capacity(3);
            for k in 0..3 {
                let leaves: Vec<SubTree> = (0..n)
                    .map(|r| {
                        let op = ScanOp::ALL[if r == rel { k } else { scan_choice[r] }];
                        SubTree::leaf(&asm, r as u32, op)
                    })
                    .collect();
                comps.push(greedy_complete(&qi, &asm, &leaves));
            }
            let scores = self.score_completions(
                &ev, feat, query, &comps, &mut ctx, scratch, &mut evals, &mut best,
            );
            let mut pick = (0usize, scores[0]);
            for (k, &s) in scores.iter().enumerate().skip(1) {
                if s < pick.1 {
                    pick = (k, s);
                }
            }
            scan_choice[rel] = pick.0;
        }
        let trees: Vec<SubTree> =
            (0..n).map(|r| SubTree::leaf(&asm, r as u32, ScanOp::ALL[scan_choice[r]])).collect();

        let mut beam = vec![BeamState { trees }];
        let mut simulations = 0usize;
        let mut budget_exhausted = false;

        // ---- Levels 1..n-1: merge two subtrees per kept state ----
        for _level in 1..n {
            if start.elapsed().as_secs_f64() * 1000.0 > self.cfg.budget_ms
                || evals >= self.cfg.max_evals
            {
                budget_exhausted = true;
                break;
            }

            // Enumerate candidate merges in fixed order.
            let mut cands: Vec<Candidate> = Vec::new();
            for (pi, state) in beam.iter().enumerate() {
                let k = state.trees.len();
                // On a disconnected query a state can reach a point where
                // no pair shares a predicate; only then are cross joins
                // admitted, mirroring the engine's validation rule.
                let any_joinable = (0..k).any(|i| {
                    (i + 1..k).any(|j| joinable(&qi, state.trees[i].mask, state.trees[j].mask))
                });
                for i in 0..k {
                    for j in i + 1..k {
                        let connected = joinable(&qi, state.trees[i].mask, state.trees[j].mask);
                        if any_joinable && !connected {
                            continue;
                        }
                        for (l, r) in [(i, j), (j, i)] {
                            for op in JoinOp::ALL {
                                let sig = SubTree::joined_sig(&state.trees[l], &state.trees[r], op);
                                let mut forest: Vec<u64> = state
                                    .trees
                                    .iter()
                                    .enumerate()
                                    .filter(|&(t, _)| t != i && t != j)
                                    .map(|(_, t)| fnv_words(&t.sig))
                                    .collect();
                                forest.push(fnv_words(&sig));
                                forest.sort_unstable();
                                if !scratch.seen.insert(fnv_words(&forest)) {
                                    continue;
                                }
                                cands.push(Candidate {
                                    parent: pi,
                                    left: l,
                                    right: r,
                                    op,
                                    sig,
                                    comp_sig: Vec::new(),
                                    score: 0.0,
                                });
                            }
                        }
                    }
                }
            }
            simulations += cands.len();
            if cands.is_empty() {
                break;
            }

            // Complete each candidate's forest greedily and score the
            // completions — full plans — memoized by completion signature.
            let mut comps: Vec<SubTree> = Vec::with_capacity(cands.len());
            for c in &mut cands {
                let parent = &beam[c.parent];
                let merged = SubTree {
                    mask: parent.trees[c.left].mask | parent.trees[c.right].mask,
                    sig: c.sig.clone(),
                    plan: asm.join(c.op, &parent.trees[c.left], &parent.trees[c.right]),
                };
                let mut forest: Vec<SubTree> = parent
                    .trees
                    .iter()
                    .enumerate()
                    .filter(|&(t, _)| t != c.left && t != c.right)
                    .map(|(_, t)| t.clone())
                    .collect();
                forest.push(merged);
                forest.sort_by_key(|t| t.mask);
                let comp = greedy_complete(&qi, &asm, &forest);
                c.comp_sig = comp.sig.clone();
                comps.push(comp);
            }
            let scores = self.score_completions(
                &ev, feat, query, &comps, &mut ctx, scratch, &mut evals, &mut best,
            );
            for (c, s) in cands.iter_mut().zip(&scores) {
                c.score = *s;
            }

            // Stable selection: score ascending, ties keep enumeration
            // order.
            let mut order: Vec<usize> = (0..cands.len()).collect();
            order.sort_by(|&a, &b| cands[a].score.total_cmp(&cands[b].score));
            order.truncate(width);

            let mut next = Vec::with_capacity(order.len());
            for &ci in &order {
                let c = &cands[ci];
                let parent = &beam[c.parent];
                let merged = SubTree {
                    mask: parent.trees[c.left].mask | parent.trees[c.right].mask,
                    sig: c.sig.clone(),
                    plan: asm.join(c.op, &parent.trees[c.left], &parent.trees[c.right]),
                };
                let mut trees: Vec<SubTree> = parent
                    .trees
                    .iter()
                    .enumerate()
                    .filter(|&(t, _)| t != c.left && t != c.right)
                    .map(|(_, t)| t.clone())
                    .collect();
                trees.push(merged);
                trees.sort_by_key(|t| t.mask);
                next.push(BeamState { trees });
            }
            beam = next;
        }

        // Best complete plan scored anywhere in the search — at the final
        // level the candidate completions are the states themselves, and
        // under a budget cut-off this is the best rollout seen so far.
        let (mut best_score, best_tree) = best.expect("scored at least one complete plan");
        let mut plan = best_tree.plan;

        // ---- Operator polish: coordinate descent over scan and join
        // operators on the winning structure. The beam commits operators
        // level by level; this pass re-selects each one against the final
        // plan (the jointly-optimal choice MCTS searches for), keeping a
        // variant only when it strictly improves the score.
        let total = node_count(&plan);
        for target in 0..total {
            if start.elapsed().as_secs_f64() * 1000.0 > self.cfg.budget_ms
                || evals >= self.cfg.max_evals
            {
                budget_exhausted = true;
                break;
            }
            for k in 0..3 {
                let mut cand = plan.clone();
                let mut counter = 0usize;
                let old = set_node_op(&mut cand, target, k, &mut counter).expect("target in range");
                if old == k {
                    continue;
                }
                let s = ev.score_one(feat, query, &cand, &mut ctx);
                evals += 1;
                if s < best_score {
                    best_score = s;
                    plan = cand;
                }
            }
        }

        MctsResult {
            plan,
            predicted_ms: best_score,
            simulations,
            plans_evaluated: evals,
            budget_exhausted,
        }
    }

    /// Score `refs` into `scratch.scores_buf`, batched when configured.
    fn score(
        &self,
        ev: &Evaluator,
        feat: &mut FeatSession,
        query: &Query,
        refs: &[&PlanNode],
        ctx: &mut QueryContext,
        scratch: &mut BeamScratch,
    ) {
        if self.cfg.batch_eval > 1 {
            ev.score_batch(feat, query, refs, ctx, &mut scratch.preds_buf, &mut scratch.scores_buf);
        } else {
            scratch.scores_buf.clear();
            for p in refs {
                let s = ev.score_one(feat, query, p, ctx);
                scratch.scores_buf.push(s);
            }
        }
    }

    /// Score the greedy completions in `comps`, memoizing by completion
    /// signature, charging only fresh evaluations to `evals`, and folding
    /// each fresh score into `best`. Returns the per-completion scores.
    #[allow(clippy::too_many_arguments)]
    fn score_completions(
        &self,
        ev: &Evaluator,
        feat: &mut FeatSession,
        query: &Query,
        comps: &[SubTree],
        ctx: &mut QueryContext,
        scratch: &mut BeamScratch,
        evals: &mut usize,
        best: &mut Option<(f64, SubTree)>,
    ) -> Vec<f64> {
        let mut miss_index: HashMap<Vec<u64>, usize, FnvBuild> = HashMap::default();
        let mut miss: Vec<&SubTree> = Vec::new();
        for c in comps {
            if scratch.eval_cache.contains_key(&c.sig) || miss_index.contains_key(&c.sig) {
                continue;
            }
            miss_index.insert(c.sig.clone(), miss.len());
            miss.push(c);
        }
        if !miss.is_empty() {
            let refs: Vec<&PlanNode> = miss.iter().map(|t| &t.plan).collect();
            self.score(ev, feat, query, &refs, ctx, scratch);
            *evals += miss.len();
            for (i, t) in miss.iter().enumerate() {
                let s = scratch.scores_buf[i];
                scratch.eval_cache.insert(t.sig.clone(), s);
                let better = match best {
                    Some((b, _)) => s < *b,
                    None => true,
                };
                if better {
                    *best = Some((s, (*t).clone()));
                }
            }
        }
        comps.iter().map(|c| scratch.eval_cache[&c.sig]).collect()
    }
}

impl SearchStrategy for BeamPlanner {
    fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut PlannerSession,
    ) -> MctsResult {
        BeamPlanner::plan_with_session(self, model, query, sess)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    fn fitted_model(db: &std::sync::Arc<qpseeker_storage::Database>) -> QPSeeker {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 16, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut m = QPSeeker::new(db, ModelConfig::small());
        m.fit(&refs).expect("training succeeds");
        m
    }

    fn three_way(db: &qpseeker_storage::Database) -> Query {
        let _ = db;
        let mut q = Query::new("beam-q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q
    }

    #[test]
    fn produces_valid_plan_over_bushy_space() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let res =
            BeamPlanner::new(BeamConfig { budget_ms: 1e9, ..Default::default() }).plan(&model, &q);
        assert!(res.plan.validate(&q).is_ok());
        assert!(res.plans_evaluated > 0);
        assert!(res.predicted_ms.is_finite());
        assert!(!res.budget_exhausted);
    }

    #[test]
    fn deterministic_across_runs_and_batch_layouts() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let q = three_way(&db);
        let base = BeamConfig { budget_ms: 1e9, ..Default::default() };
        let a = BeamPlanner::new(base.clone()).plan(&model, &q);
        let b = BeamPlanner::new(base.clone()).plan(&model, &q);
        let scalar = BeamPlanner::new(BeamConfig { batch_eval: 1, ..base }).plan(&model, &q);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.predicted_ms.to_bits(), b.predicted_ms.to_bits());
        assert_eq!(a.plan, scalar.plan);
        assert_eq!(a.predicted_ms.to_bits(), scalar.predicted_ms.to_bits());
        assert_eq!(a.plans_evaluated, scalar.plans_evaluated);
    }

    #[test]
    fn beam_explores_bushy_shapes_on_star_query() {
        // Four relations joined star-style through `title`: the bushy
        // space admits shapes like (t ⋈ mi) ⋈ (t? ..) that left-deep
        // search cannot represent. The chosen plan must still validate;
        // whether it ends up bushy is the model's call, but the search
        // must at least have enumerated such states (candidate count
        // strictly exceeds the left-deep orientation count).
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let mut q = three_way(&db);
        q.relations.push(RelRef::new("cast_info"));
        q.joins.push(JoinPred {
            left: ColRef::new("cast_info", "movie_id"),
            right: ColRef::new("title", "id"),
        });
        let res =
            BeamPlanner::new(BeamConfig { budget_ms: 1e9, ..Default::default() }).plan(&model, &q);
        assert!(res.plan.validate(&q).is_ok());
        assert!(res.predicted_ms.is_finite());
        assert!(res.simulations > 0);
    }

    #[test]
    fn single_relation_query_picks_a_scan() {
        let db = std::sync::Arc::new(imdb::generate(0.05, 1));
        let model = fitted_model(&db);
        let mut q = Query::new("single-beam");
        q.relations = vec![RelRef::new("title")];
        let res = BeamPlanner::new(BeamConfig::default()).plan(&model, &q);
        assert!(matches!(res.plan, PlanNode::Scan { .. }));
        assert_eq!(res.plans_evaluated, 3);
    }
}
