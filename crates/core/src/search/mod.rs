//! Pluggable search strategies over one shared planner core.
//!
//! Before this module existed the planner *was* the left-deep MCTS in
//! [`mcts`]. The strategy layer factors what every search needs — the
//! query's join-connectivity bitmasks ([`QueryIndex`]), a scoring function
//! over candidate plans ([`strategy::Evaluator`]), and per-session scratch
//! state — out of the MCTS loop, so a planning request can choose between:
//!
//! * [`mcts::MctsPlanner`] — the original left-deep Monte Carlo Tree
//!   Search (§5.2), byte-for-byte unchanged on its default path;
//! * [`beam::BeamPlanner`] — deterministic beam search over the **bushy**
//!   plan space ([`bushy`]), where a state is a forest of realized
//!   subtrees and one step joins two connected subtrees;
//!
//! and either strategy can score candidates **risk-aware**: a seeded batch
//! of VAE latent samples yields a per-plan cost mean and spread, ranked by
//! `mean + λ·σ` instead of the mean alone (see
//! [`strategy::StrategyConfig`]).
//!
//! The selection is carried by [`strategy::StrategyConfig`] (per request,
//! per tenant) and dispatched by [`strategy::StrategyPlanner`].

pub mod beam;
pub mod bushy;
pub mod mcts;
pub mod strategy;

use qpseeker_engine::plan::{JoinOp, ScanOp};
use qpseeker_engine::query::Query;

/// Precomputed join connectivity of one query: `adj[i]` is the bitmask of
/// relations sharing a join predicate with relation `i`. Supports up to 64
/// relations (the IMDb/JOB regime is ≤ 17). Shared by every strategy: MCTS
/// walks it relation-by-relation, beam search subtree-by-subtree.
pub(crate) struct QueryIndex {
    pub(crate) n: usize,
    pub(crate) adj: Vec<u64>,
}

impl QueryIndex {
    pub(crate) fn new(query: &Query) -> Self {
        let n = query.relations.len();
        assert!(n <= 64, "bitmask connectivity supports at most 64 relations");
        let idx_of = |alias: &str| query.relations.iter().position(|r| r.alias == alias);
        let mut adj = vec![0u64; n];
        for j in &query.joins {
            if let (Some(l), Some(r)) = (idx_of(&j.left.alias), idx_of(&j.right.alias)) {
                if l != r {
                    adj[l] |= 1 << r;
                    adj[r] |= 1 << l;
                }
            }
        }
        Self { n, adj }
    }

    /// Union of the adjacency masks over every relation in `mask`: all
    /// relations sharing a join predicate with the set (possibly including
    /// members of the set itself).
    pub(crate) fn reach(&self, mask: u64) -> u64 {
        let mut reach = 0u64;
        let mut rest = mask;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            reach |= self.adj[i];
        }
        reach
    }

    /// Relations reachable from the joined set but not yet in it.
    pub(crate) fn frontier(&self, joined: u64) -> u64 {
        self.reach(joined) & !joined
    }
}

pub(crate) fn op_idx_scan(s: ScanOp) -> u8 {
    match s {
        ScanOp::SeqScan => 0,
        ScanOp::IndexScan => 1,
        ScanOp::BitmapIndexScan => 2,
    }
}

pub(crate) fn op_idx_join(j: JoinOp) -> u8 {
    match j {
        JoinOp::HashJoin => 0,
        JoinOp::MergeJoin => 1,
        JoinOp::NestedLoopJoin => 2,
    }
}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over a word sequence, for compact structural stamps.
pub(crate) fn fnv_words(words: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}
