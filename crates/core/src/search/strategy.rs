//! The strategy layer: which search runs, and how candidates are scored.
//!
//! [`StrategyConfig`] is the serializable request-level knob (carried per
//! request by `serve` and per tenant by `tenant`): search kind (left-deep
//! MCTS or bushy beam), the risk weight λ, the latent sample count, and the
//! beam width. [`StrategyPlanner::from_config`] turns it plus the session's
//! [`MctsConfig`] (budget, seed, batch size — shared by both strategies)
//! into a runnable planner.
//!
//! # Risk-aware scoring
//!
//! The paper's cost modeler is a VAE: the encoder yields a latent mean μ(x)
//! *and* log-variance; mean-only inference (`eps = 0`) collapses that
//! distribution to a point. Risk-aware scoring draws `S` standard-normal
//! latent samples `eps_1..eps_S` from a **seeded** generator (a pure
//! function of the planner seed and the query id — never of thread or
//! worker count), decodes all of them, and summarizes a candidate plan by
//!
//! ```text
//! score = mean_s(runtime_s) + λ · σ_s(runtime_s)
//! ```
//!
//! so a plan whose cost the model is *unsure* about is penalized in
//! proportion to λ (per the robust-cost-model argument in Reqo). λ = 0
//! disables sampling entirely and takes the original mean-only code path —
//! byte for byte, so default-path plans stay bitwise identical.

use super::beam::{BeamConfig, BeamPlanner};
use super::mcts::{MctsConfig, MctsPlanner, MctsResult};
use crate::featurize::FeatSession;
use crate::model::{Prediction, QPSeeker, QueryContext};
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_nn::prelude::Tensor;

/// Which search algorithm a planning request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Left-deep Monte Carlo Tree Search (§5.2) — the original planner.
    Mcts,
    /// Deterministic beam search over the bushy plan space.
    Beam,
}

impl StrategyKind {
    /// Parse a CLI token (`"mcts"` / `"beam"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mcts" => Some(Self::Mcts),
            "beam" => Some(Self::Beam),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Self::Mcts => "mcts",
            Self::Beam => "beam",
        }
    }
}

/// Per-request (or per-tenant) search-strategy selection. Defaults
/// reproduce the pre-strategy-layer planner exactly: left-deep MCTS,
/// mean-only scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyConfig {
    pub kind: StrategyKind,
    /// Risk weight λ ≥ 0: candidates are ranked by `mean + λ·σ` over the
    /// latent samples. `0` disables sampling (mean-only scoring).
    pub risk_lambda: f64,
    /// Latent samples `S` drawn per evaluation when `risk_lambda > 0`.
    pub risk_samples: usize,
    /// States kept per level by the beam strategy.
    pub beam_width: usize,
    /// Unified candidate-batch size shared by both strategies: how many
    /// rollouts/completions a session defers before scoring them in one
    /// batched forward. `None` inherits the deprecated per-strategy fields
    /// ([`MctsConfig::batch_eval`] / [`super::beam::BeamConfig::batch_eval`],
    /// kept as aliases for checkpoint/config compatibility); `Some`
    /// overrides both. Batched scoring is bitwise equal to scalar scoring,
    /// so this knob never changes a plan and is excluded from
    /// [`Self::cache_stamp`].
    pub batch_eval: Option<usize>,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        Self {
            kind: StrategyKind::Mcts,
            risk_lambda: 0.0,
            risk_samples: 8,
            beam_width: 8,
            batch_eval: None,
        }
    }
}

impl StrategyConfig {
    pub(crate) fn risk(&self) -> RiskParams {
        RiskParams { lambda: self.risk_lambda, samples: self.risk_samples }
    }

    /// Compact stamp of every knob that can change the emitted plan, for
    /// the plan cache: a cached plan may only be served to a request whose
    /// strategy stamp matches the one it was planned under. Irrelevant
    /// knobs are normalized out (beam width under MCTS, sample count at
    /// λ = 0) so equivalent configurations share entries.
    pub fn cache_stamp(&self) -> u64 {
        let bw = match self.kind {
            StrategyKind::Mcts => 0,
            StrategyKind::Beam => self.beam_width as u64,
        };
        let (lambda_bits, samples) = if self.risk_lambda > 0.0 {
            (self.risk_lambda.to_bits(), self.risk_samples as u64)
        } else {
            (0, 0)
        };
        super::fnv_words(&[self.kind as u64, lambda_bits, samples, bw])
    }
}

/// Risk-scoring parameters handed to a planner: `mean + λ·σ` over
/// `samples` seeded latent draws. Disabled (mean-only) when λ = 0 or
/// `samples` = 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskParams {
    pub lambda: f64,
    pub samples: usize,
}

impl RiskParams {
    pub fn enabled(&self) -> bool {
        self.lambda > 0.0 && self.samples > 0
    }
}

/// A search algorithm planning one query with all mutable state in the
/// caller's session. Both strategies report through [`MctsResult`] (plan,
/// predicted score, work counters); `predicted_ms` is the selection score —
/// the model's mean predicted runtime, or `mean + λ·σ` under risk scoring.
pub trait SearchStrategy {
    fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut crate::session::PlannerSession,
    ) -> MctsResult;

    /// Convenience wrapper through the model's internal fallback session.
    fn plan(&self, model: &QPSeeker, query: &Query) -> MctsResult {
        let mut sess = model.lock_fallback_session();
        self.plan_with_session(model, query, &mut sess)
    }
}

/// Strategy dispatch without boxing: the concrete planner chosen by a
/// [`StrategyConfig`].
pub enum StrategyPlanner {
    Mcts(MctsPlanner),
    Beam(BeamPlanner),
}

impl StrategyPlanner {
    /// Build the planner a request asked for. `mcts` carries the knobs
    /// shared by both strategies — wall-clock budget, evaluation cap
    /// (`max_simulations`), seed, and batch size — exactly as serving
    /// already derives them per attempt.
    pub fn from_config(strat: &StrategyConfig, mut mcts: MctsConfig) -> Self {
        if let Some(be) = strat.batch_eval {
            mcts.batch_eval = be;
        }
        let risk = strat.risk();
        match strat.kind {
            StrategyKind::Mcts => Self::Mcts(MctsPlanner::with_risk(mcts, risk)),
            StrategyKind::Beam => {
                let cfg = BeamConfig {
                    budget_ms: mcts.budget_ms,
                    beam_width: strat.beam_width,
                    max_evals: mcts.max_simulations,
                    seed: mcts.seed,
                    batch_eval: mcts.batch_eval,
                };
                Self::Beam(BeamPlanner::with_risk(cfg, risk))
            }
        }
    }

    pub fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut crate::session::PlannerSession,
    ) -> MctsResult {
        match self {
            Self::Mcts(p) => p.plan_with_session(model, query, sess),
            Self::Beam(p) => p.plan_with_session(model, query, sess),
        }
    }

    pub fn plan(&self, model: &QPSeeker, query: &Query) -> MctsResult {
        let mut sess = model.lock_fallback_session();
        self.plan_with_session(model, query, &mut sess)
    }
}

impl SearchStrategy for StrategyPlanner {
    fn plan_with_session(
        &self,
        model: &QPSeeker,
        query: &Query,
        sess: &mut crate::session::PlannerSession,
    ) -> MctsResult {
        StrategyPlanner::plan_with_session(self, model, query, sess)
    }
}

/// The scoring function both strategies evaluate candidates through.
/// Mean-only (`risk: None`) forwards to the exact pre-refactor model calls
/// in the exact order, so default-path scores are bitwise identical;
/// risk-aware scoring ranks by `mean + λ·σ` over the seeded latent batch.
///
/// The `eps` tensor is derived from `(seed, query.id)` alone, so every
/// worker, shard, and batch layout scores a given plan identically.
pub(crate) struct Evaluator<'a> {
    model: &'a QPSeeker,
    risk: Option<RiskCtx>,
    /// Seat on a shared [`crate::evalbroker::EvalBroker`]: when present
    /// (and the query takes the fast path), candidate batches are
    /// submitted to the broker to fuse with other sessions' rows instead
    /// of running a private forward. Fused scoring is bitwise equal to
    /// local scoring, so attachment never changes a plan. Never attached
    /// on root-parallel shard evaluators — shard threads are not broker
    /// members.
    broker: Option<&'a crate::evalbroker::BrokerMember>,
}

struct RiskCtx {
    lambda: f64,
    /// `[samples, latent]` seeded standard-normal draws.
    eps: Tensor,
}

/// Salt separating the risk-eps stream from the MCTS rollout RNG, which is
/// seeded from the same `(seed, query.id)` pair.
const RISK_EPS_SALT: u64 = 0x7a3d_91b4_c65f_20e7;

impl<'a> Evaluator<'a> {
    pub(crate) fn new(
        model: &'a QPSeeker,
        query: &Query,
        risk: Option<&RiskParams>,
        seed: u64,
    ) -> Self {
        let risk = risk.filter(|r| r.enabled()).map(|r| RiskCtx {
            lambda: r.lambda,
            eps: model.risk_eps(r.samples, seed ^ super::fnv(query.id.as_bytes()) ^ RISK_EPS_SALT),
        });
        Self { model, risk, broker: None }
    }

    /// Attach the session's broker seat (if any) for the serial search
    /// path. Returns `self` rebound so the borrow can come from a field
    /// destructure alongside the scratch borrows.
    pub(crate) fn with_broker(
        mut self,
        broker: Option<&'a crate::evalbroker::BrokerMember>,
    ) -> Self {
        self.broker = broker;
        self
    }

    pub(crate) fn score_one(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plan: &PlanNode,
        ctx: &mut QueryContext,
    ) -> f64 {
        if let Some(b) = self.broker {
            if ctx.fast {
                // Single-candidate submissions still fuse with other
                // members' rows; the row-wise contract keeps the value
                // bitwise equal to the local call below.
                let plans = [plan];
                match &self.risk {
                    None => {
                        let mut tmp = Vec::with_capacity(1);
                        self.model.broker_predict_batch_in(b, sess, query, &plans, ctx, &mut tmp);
                        return tmp[0].runtime_ms;
                    }
                    Some(r) => {
                        let mut tmp = Vec::with_capacity(1);
                        self.model.broker_predict_risk_batch_in(
                            b, sess, query, &plans, ctx, &r.eps, &mut tmp,
                        );
                        let (mean, sigma) = tmp[0];
                        return mean + r.lambda * sigma;
                    }
                }
            }
        }
        match &self.risk {
            None => self.model.predict_with_context_in(sess, query, plan, ctx).runtime_ms,
            Some(r) => {
                let (mean, sigma) =
                    self.model.predict_risk_with_context_in(sess, query, plan, ctx, &r.eps);
                mean + r.lambda * sigma
            }
        }
    }

    pub(crate) fn score_batch(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plans: &[&PlanNode],
        ctx: &mut QueryContext,
        preds_buf: &mut Vec<Prediction>,
        scores: &mut Vec<f64>,
    ) {
        scores.clear();
        if let Some(b) = self.broker {
            if ctx.fast && !plans.is_empty() {
                match &self.risk {
                    None => {
                        self.model.broker_predict_batch_in(b, sess, query, plans, ctx, preds_buf);
                        scores.extend(preds_buf.iter().map(|p| p.runtime_ms));
                    }
                    Some(r) => {
                        let mut stats = Vec::with_capacity(plans.len());
                        self.model.broker_predict_risk_batch_in(
                            b, sess, query, plans, ctx, &r.eps, &mut stats,
                        );
                        scores.extend(stats.iter().map(|&(mean, sigma)| mean + r.lambda * sigma));
                    }
                }
                return;
            }
        }
        match &self.risk {
            None => {
                self.model.predict_batch_with_context_in(sess, query, plans, ctx, preds_buf);
                scores.extend(preds_buf.iter().map(|p| p.runtime_ms));
            }
            Some(r) => {
                let mut stats = Vec::with_capacity(plans.len());
                self.model.predict_risk_batch_with_context_in(
                    sess, query, plans, ctx, &r.eps, &mut stats,
                );
                scores.extend(stats.iter().map(|&(mean, sigma)| mean + r.lambda * sigma));
            }
        }
    }
}
