//! The bushy action space: plans as forests of subtrees over u64 masks.
//!
//! The left-deep search walks *relations*: its state is one growing chain
//! plus a frontier bitmask of joinable relations. The bushy space
//! generalizes the same u64 machinery from pairs-of-relations to
//! pairs-of-subtrees: a search state is a **forest** of realized subtrees,
//! each summarized by the bitmask of relations it covers, and one action
//! joins two subtrees whose masks are connected through the query graph
//! (`QueryIndex::reach(a) & b != 0`). Starting from one leaf per relation,
//! `n - 1` joins produce a complete — possibly bushy — plan.
//!
//! Structural identity is a postorder token signature ([`SubTree::sig`]):
//! leaves pack `(rel, scan)` exactly like the left-deep `Action` packing,
//! joins contribute a high-bit-tagged operator token. The signature is
//! collision-free (postorder with known arity decodes uniquely), so it
//! doubles as the evaluation-cache key; forest-level dedup hashes the
//! sorted per-tree signatures and may only ever *drop* a duplicate state,
//! never corrupt a score.

use super::{op_idx_scan, QueryIndex};
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::{JoinPred, Query};

/// Postorder token for a leaf: identical layout to the left-deep
/// `Action::Start` packing (`rel << 4 | scan << 2 | 3`).
pub(crate) fn leaf_token(rel: u32, scan: ScanOp) -> u64 {
    (rel as u64) << 4 | (op_idx_scan(scan) as u64) << 2 | 3
}

/// Postorder token for a join operator. The high tag bit keeps it disjoint
/// from every leaf token, so a token stream decodes unambiguously.
pub(crate) fn join_token(op: JoinOp) -> u64 {
    const TAG: u64 = 1 << 63;
    TAG | match op {
        JoinOp::HashJoin => 0,
        JoinOp::MergeJoin => 1,
        JoinOp::NestedLoopJoin => 2,
    }
}

/// One realized subtree in a bushy search state.
#[derive(Clone)]
pub(crate) struct SubTree {
    /// Relations covered, as a bitmask over `query.relations`.
    pub(crate) mask: u64,
    /// Postorder token signature — exact structural identity.
    pub(crate) sig: Vec<u64>,
    /// The realized plan, join predicates attached.
    pub(crate) plan: PlanNode,
}

impl SubTree {
    pub(crate) fn leaf(asm: &BushyAssembler, rel: u32, scan: ScanOp) -> Self {
        Self { mask: 1 << rel, sig: vec![leaf_token(rel, scan)], plan: asm.scan(rel, scan) }
    }

    /// Signature of the subtree that would result from `left ⋈op right`,
    /// without building it.
    pub(crate) fn joined_sig(left: &Self, right: &Self, op: JoinOp) -> Vec<u64> {
        let mut sig = Vec::with_capacity(left.sig.len() + right.sig.len() + 1);
        sig.extend_from_slice(&left.sig);
        sig.extend_from_slice(&right.sig);
        sig.push(join_token(op));
        sig
    }
}

/// Two subtrees are joinable when some relation in `a` shares a join
/// predicate with some relation in `b`.
pub(crate) fn joinable(qi: &QueryIndex, a: u64, b: u64) -> bool {
    qi.reach(a) & b != 0
}

/// Per-query prebuilt plan pieces for bushy assembly: one ready-to-clone
/// scan leaf per (relation, scan op) — exactly like the left-deep
/// assembler — plus every join predicate with both endpoints interned, so
/// attaching the predicates that cross two masks is a bitmask filter over
/// `query.joins` in declaration order (the same order the left-deep
/// assembler and `PlanNode::join` emit).
pub(crate) struct BushyAssembler {
    scans: Vec<[PlanNode; 3]>,
    /// `(left_rel, right_rel, predicate)` per join predicate, in
    /// `query.joins` order. Self-joins on one relation are dropped, as in
    /// `QueryIndex`.
    joins: Vec<(u32, u32, JoinPred)>,
}

impl BushyAssembler {
    pub(crate) fn new(query: &Query) -> Self {
        let scans = query
            .relations
            .iter()
            .map(|r| {
                ScanOp::ALL.map(|op| {
                    PlanNode::try_scan(query, &r.alias, op).expect("query relation has a table")
                })
            })
            .collect();
        let idx_of = |alias: &str| query.relations.iter().position(|r| r.alias == alias);
        let mut joins = Vec::with_capacity(query.joins.len());
        for j in &query.joins {
            if let (Some(l), Some(r)) = (idx_of(&j.left.alias), idx_of(&j.right.alias)) {
                if l != r {
                    joins.push((l as u32, r as u32, j.clone()));
                }
            }
        }
        Self { scans, joins }
    }

    pub(crate) fn scan(&self, rel: u32, op: ScanOp) -> PlanNode {
        self.scans[rel as usize][op_idx_scan(op) as usize].clone()
    }

    /// Every join predicate with one endpoint in `a` and the other in `b`,
    /// in `query.joins` order. Empty only when the masks are disconnected
    /// (a cross join — legal exactly when the query itself is
    /// disconnected).
    pub(crate) fn crossing_preds(&self, a: u64, b: u64) -> Vec<JoinPred> {
        self.joins
            .iter()
            .filter(|&&(l, r, _)| {
                let (lm, rm) = (1u64 << l, 1u64 << r);
                (a & lm != 0 && b & rm != 0) || (b & lm != 0 && a & rm != 0)
            })
            .map(|(_, _, p)| p.clone())
            .collect()
    }

    /// `left ⋈op right` with the crossing predicates attached.
    pub(crate) fn join(&self, op: JoinOp, left: &SubTree, right: &SubTree) -> PlanNode {
        PlanNode::Join {
            op,
            left: Box::new(left.plan.clone()),
            right: Box::new(right.plan.clone()),
            preds: self.crossing_preds(left.mask, right.mask),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::query::{ColRef, RelRef};

    fn three_way() -> Query {
        let mut q = Query::new("bushy-q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q
    }

    #[test]
    fn tokens_are_disjoint_and_injective() {
        let mut seen = std::collections::HashSet::new();
        for rel in 0..4u32 {
            for scan in ScanOp::ALL {
                assert!(seen.insert(leaf_token(rel, scan)));
            }
        }
        for op in JoinOp::ALL {
            assert!(seen.insert(join_token(op)));
        }
    }

    #[test]
    fn joinable_follows_query_graph() {
        let q = three_way();
        let qi = QueryIndex::new(&q);
        // title(0) joins both; movie_info(1) and movie_keyword(2) only
        // reach each other through title.
        assert!(joinable(&qi, 1 << 0, 1 << 1));
        assert!(joinable(&qi, 1 << 1, 1 << 0));
        assert!(!joinable(&qi, 1 << 1, 1 << 2));
        assert!(joinable(&qi, (1 << 0) | (1 << 1), 1 << 2));
    }

    #[test]
    fn crossing_preds_attach_in_query_join_order() {
        let q = three_way();
        let asm = BushyAssembler::new(&q);
        // {title} x {movie_info}: exactly the first predicate.
        let p = asm.crossing_preds(1 << 0, 1 << 1);
        assert_eq!(p, vec![q.joins[0].clone()]);
        // {title, movie_info} x {movie_keyword}: exactly the second.
        let p = asm.crossing_preds((1 << 0) | (1 << 1), 1 << 2);
        assert_eq!(p, vec![q.joins[1].clone()]);
        // Disconnected masks cross nothing.
        assert!(asm.crossing_preds(1 << 1, 1 << 2).is_empty());
    }

    #[test]
    fn bushy_join_validates_on_connected_query() {
        let q = three_way();
        let qi = QueryIndex::new(&q);
        let asm = BushyAssembler::new(&q);
        // (title ⋈ movie_info) ⋈ movie_keyword, built bushy-style.
        let t = SubTree::leaf(&asm, 0, ScanOp::SeqScan);
        let mi = SubTree::leaf(&asm, 1, ScanOp::IndexScan);
        assert!(joinable(&qi, t.mask, mi.mask));
        let left = SubTree {
            mask: t.mask | mi.mask,
            sig: SubTree::joined_sig(&t, &mi, JoinOp::HashJoin),
            plan: asm.join(JoinOp::HashJoin, &t, &mi),
        };
        let mk = SubTree::leaf(&asm, 2, ScanOp::SeqScan);
        let full = asm.join(JoinOp::MergeJoin, &left, &mk);
        assert!(full.validate(&q).is_ok());
    }
}
