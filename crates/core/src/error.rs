//! Typed core errors.
//!
//! Top link of the workspace error chain: wraps [`EngineError`] (which in
//! turn wraps `StorageError`) and adds checkpoint-integrity, durable-write
//! and training-lifecycle failures. As in the lower layers, Display texts
//! preserve the phrases the stringly-typed APIs used ("schema mismatch",
//! "parameter layout mismatch") so messages stay stable across the
//! conversion.

use qpseeker_engine::error::EngineError;
use std::fmt;

/// Errors raised by the neural planner: plan compilation/execution failures
/// lifted from the engine, checkpoint load/restore failures, durable-write
/// failures on the snapshot path, and training-lifecycle failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A planning or execution failure from the engine layer.
    Engine(EngineError),
    /// The checkpoint file is not valid JSON / not a checkpoint envelope.
    CheckpointMalformed(String),
    /// The checkpoint envelope declares an unsupported format version.
    CheckpointVersion { found: u64, supported: u64 },
    /// The checkpoint payload does not match its recorded checksum
    /// (truncation or bit-rot).
    CheckpointCorrupted { expected: String, actual: String },
    /// The checkpoint was trained against a different catalog.
    SchemaMismatch { expected: (usize, usize), found: (usize, usize) },
    /// The rebuilt architecture does not match the saved parameters.
    ParamLayout {
        built_params: usize,
        built_scalars: usize,
        saved_params: usize,
        saved_scalars: usize,
    },
    /// A filesystem operation on the durable path failed. The io error is
    /// carried as text so `CoreError` stays `Clone + PartialEq`.
    Io { op: &'static str, path: String, message: String },
    /// An injected crash-point fault "killed" the process at durable write
    /// number `seq` (chaos testing). Transient: resuming from the newest
    /// valid snapshot is the designed recovery.
    InjectedCrash { site: String, seq: u64 },
    /// A snapshot directory recovery scan found snapshot files but every
    /// one of them was corrupt (all were quarantined).
    NoValidSnapshot { dir: String, quarantined: usize },
    /// A resumed training run does not match the snapshot it would resume
    /// from (different config, dataset, or epoch plan).
    SnapshotMismatch { field: &'static str, snapshot: String, current: String },
    /// Training was invoked on an empty QEP set.
    EmptyTrainingSet,
    /// A training sample carries no ground-truth target.
    MissingTarget { index: usize },
    /// A data-parallel training worker panicked; the panic was contained at
    /// the shard boundary instead of poisoning the whole process.
    TrainingWorkerPanicked { shard: usize, cause: String },
    /// Experience-log recovery found a valid record whose sequence number
    /// skips ahead: a record was lost *behind* an intact successor, which a
    /// torn tail can never produce. Real corruption, not recoverable by
    /// truncation.
    ExperienceGap { expected: u64, found: u64 },
}

impl CoreError {
    /// Whether a retry is worthwhile (delegates to the engine layer).
    /// Checkpoint failures are permanent; an injected crash is transient by
    /// design — resuming from the newest valid snapshot recovers it.
    pub fn is_transient(&self) -> bool {
        match self {
            CoreError::Engine(e) => e.is_transient(),
            CoreError::InjectedCrash { .. } => true,
            _ => false,
        }
    }
}

/// Render a `catch_unwind`/`join` panic payload as text (most panics carry
/// `&str` or `String`).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::CheckpointMalformed(why) => {
                write!(f, "malformed checkpoint: {why}")
            }
            CoreError::CheckpointVersion { found, supported } => {
                write!(f, "unsupported checkpoint version {found} (supported: {supported})")
            }
            CoreError::CheckpointCorrupted { expected, actual } => {
                write!(f, "corrupt checkpoint: checksum {actual} does not match recorded {expected}")
            }
            CoreError::SchemaMismatch { expected, found } => write!(
                f,
                "schema mismatch: checkpoint was trained against {expected:?} (tables, joins), database has {found:?}"
            ),
            CoreError::ParamLayout { built_params, built_scalars, saved_params, saved_scalars } => {
                write!(
                    f,
                    "parameter layout mismatch: rebuilt {built_params} params / {built_scalars} scalars, checkpoint has {saved_params} / {saved_scalars}"
                )
            }
            CoreError::Io { op, path, message } => {
                write!(f, "durable {op} of {path} failed: {message}")
            }
            CoreError::InjectedCrash { site, seq } => {
                write!(f, "injected crash at {site} (durable write #{seq})")
            }
            CoreError::NoValidSnapshot { dir, quarantined } => {
                write!(
                    f,
                    "no valid snapshot in {dir}: all {quarantined} candidate(s) were corrupt and quarantined"
                )
            }
            CoreError::SnapshotMismatch { field, snapshot, current } => {
                write!(
                    f,
                    "snapshot mismatch on {field}: snapshot has {snapshot}, this run has {current}"
                )
            }
            CoreError::EmptyTrainingSet => f.write_str("cannot train on an empty QEP set"),
            CoreError::MissingTarget { index } => {
                write!(f, "training QEP #{index} carries no ground-truth target")
            }
            CoreError::TrainingWorkerPanicked { shard, cause } => {
                write!(f, "training worker for shard {shard} panicked: {cause}")
            }
            CoreError::ExperienceGap { expected, found } => {
                write!(
                    f,
                    "experience log gap: expected record #{expected}, found #{found} — a record was lost behind an intact successor"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        CoreError::CheckpointMalformed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::StorageError;

    #[test]
    fn preserves_legacy_message_phrases() {
        let schema = CoreError::SchemaMismatch { expected: (21, 13), found: (14, 12) };
        assert!(schema.to_string().contains("schema mismatch"));
        let layout = CoreError::ParamLayout {
            built_params: 10,
            built_scalars: 100,
            saved_params: 9,
            saved_scalars: 90,
        };
        assert!(layout.to_string().contains("parameter layout mismatch"));
    }

    #[test]
    fn engine_errors_lift_with_source() {
        use std::error::Error;
        let e: CoreError = EngineError::from(StorageError::UnknownTable("ghost".into())).into();
        assert!(e.to_string().contains("ghost"));
        assert!(e.source().is_some());
    }

    #[test]
    fn transience_follows_the_engine_layer() {
        let transient: CoreError =
            EngineError::from(StorageError::PageRead { table: "t".into(), page: 3 }).into();
        assert!(transient.is_transient());
        let corrupt = CoreError::CheckpointCorrupted { expected: "aa".into(), actual: "bb".into() };
        assert!(!corrupt.is_transient());
    }

    #[test]
    fn injected_crash_is_transient_training_errors_are_not() {
        assert!(CoreError::InjectedCrash { site: "s.snap".into(), seq: 3 }.is_transient());
        assert!(!CoreError::EmptyTrainingSet.is_transient());
        assert!(!CoreError::MissingTarget { index: 2 }.is_transient());
        assert!(
            !CoreError::TrainingWorkerPanicked { shard: 0, cause: "boom".into() }.is_transient()
        );
        assert!(!CoreError::NoValidSnapshot { dir: "d".into(), quarantined: 2 }.is_transient());
    }

    #[test]
    fn new_variants_display_their_context() {
        let io = CoreError::Io { op: "rename", path: "/x/y".into(), message: "denied".into() };
        assert!(io.to_string().contains("rename") && io.to_string().contains("/x/y"));
        let crash = CoreError::InjectedCrash { site: "epoch-3".into(), seq: 7 };
        assert!(crash.to_string().contains("epoch-3") && crash.to_string().contains("#7"));
        let none = CoreError::NoValidSnapshot { dir: "snaps".into(), quarantined: 4 };
        assert!(none.to_string().contains("snaps") && none.to_string().contains('4'));
        let mismatch = CoreError::SnapshotMismatch {
            field: "dataset",
            snapshot: "12 QEPs".into(),
            current: "8 QEPs".into(),
        };
        assert!(mismatch.to_string().contains("dataset"));
        assert!(CoreError::MissingTarget { index: 5 }.to_string().contains("#5"));
        let gap = CoreError::ExperienceGap { expected: 4, found: 7 };
        assert!(gap.to_string().contains("#4") && gap.to_string().contains("#7"));
        assert!(!gap.is_transient(), "a gap is real corruption, not a retryable fault");
        assert!(CoreError::TrainingWorkerPanicked { shard: 1, cause: "oh no".into() }
            .to_string()
            .contains("oh no"));
    }

    #[test]
    fn panic_payloads_render_as_text() {
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(17u32)), "opaque panic payload");
    }
}
