//! Typed core errors.
//!
//! Top link of the workspace error chain: wraps [`EngineError`] (which in
//! turn wraps `StorageError`) and adds checkpoint-integrity failures. As in
//! the lower layers, Display texts preserve the phrases the stringly-typed
//! APIs used ("schema mismatch", "parameter layout mismatch") so messages
//! stay stable across the conversion.

use qpseeker_engine::error::EngineError;
use std::fmt;

/// Errors raised by the neural planner: plan compilation/execution failures
/// lifted from the engine, plus checkpoint load/restore failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A planning or execution failure from the engine layer.
    Engine(EngineError),
    /// The checkpoint file is not valid JSON / not a checkpoint envelope.
    CheckpointMalformed(String),
    /// The checkpoint envelope declares an unsupported format version.
    CheckpointVersion { found: u64, supported: u64 },
    /// The checkpoint payload does not match its recorded checksum
    /// (truncation or bit-rot).
    CheckpointCorrupted { expected: String, actual: String },
    /// The checkpoint was trained against a different catalog.
    SchemaMismatch { expected: (usize, usize), found: (usize, usize) },
    /// The rebuilt architecture does not match the saved parameters.
    ParamLayout {
        built_params: usize,
        built_scalars: usize,
        saved_params: usize,
        saved_scalars: usize,
    },
}

impl CoreError {
    /// Whether a retry is worthwhile (delegates to the engine layer; all
    /// checkpoint failures are permanent).
    pub fn is_transient(&self) -> bool {
        match self {
            CoreError::Engine(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::CheckpointMalformed(why) => {
                write!(f, "malformed checkpoint: {why}")
            }
            CoreError::CheckpointVersion { found, supported } => {
                write!(f, "unsupported checkpoint version {found} (supported: {supported})")
            }
            CoreError::CheckpointCorrupted { expected, actual } => {
                write!(f, "corrupt checkpoint: checksum {actual} does not match recorded {expected}")
            }
            CoreError::SchemaMismatch { expected, found } => write!(
                f,
                "schema mismatch: checkpoint was trained against {expected:?} (tables, joins), database has {found:?}"
            ),
            CoreError::ParamLayout { built_params, built_scalars, saved_params, saved_scalars } => {
                write!(
                    f,
                    "parameter layout mismatch: rebuilt {built_params} params / {built_scalars} scalars, checkpoint has {saved_params} / {saved_scalars}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        CoreError::CheckpointMalformed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::StorageError;

    #[test]
    fn preserves_legacy_message_phrases() {
        let schema = CoreError::SchemaMismatch { expected: (21, 13), found: (14, 12) };
        assert!(schema.to_string().contains("schema mismatch"));
        let layout = CoreError::ParamLayout {
            built_params: 10,
            built_scalars: 100,
            saved_params: 9,
            saved_scalars: 90,
        };
        assert!(layout.to_string().contains("parameter layout mismatch"));
    }

    #[test]
    fn engine_errors_lift_with_source() {
        use std::error::Error;
        let e: CoreError = EngineError::from(StorageError::UnknownTable("ghost".into())).into();
        assert!(e.to_string().contains("ghost"));
        assert!(e.source().is_some());
    }

    #[test]
    fn transience_follows_the_engine_layer() {
        let transient: CoreError =
            EngineError::from(StorageError::PageRead { table: "t".into(), page: 3 }).into();
        assert!(transient.is_transient());
        let corrupt = CoreError::CheckpointCorrupted { expected: "aa".into(), actual: "bb".into() };
        assert!(!corrupt.is_transient());
    }
}
