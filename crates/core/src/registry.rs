//! Zero-downtime model publication: the epoch-stamped cell serving workers
//! read the model through, plus the sliding-window regression monitor that
//! rolls a bad promotion back automatically.
//!
//! [`ModelCell`] is an ArcSwap-style publication point implemented over a
//! short critical section: readers take a clone of the current
//! `Arc<PlannerModel>` plus the publication epoch, so an in-flight request
//! finishes on the model it started with no matter how many swaps land
//! mid-request, and a worker detects a swap by comparing epochs — its cue to
//! drop its [`crate::session::PlannerSession`] caches, which hold
//! predictions from the old weights. The previous model stays resident so
//! [`ModelCell::rollback`] is instant and allocation-free.
//!
//! [`RegressionMonitor`] watches observed executor runtimes. A promotion
//! arms it with the pre-swap baseline window; once enough post-swap
//! observations accumulate, a mean regression beyond the configured factor
//! yields a rollback verdict. One rollback consumes the resident previous
//! model — a flapping candidate cannot ping-pong traffic.

use crate::model::QPSeeker;
use crate::plancache::PlanCache;
use qpseeker_storage::Database;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

struct CellInner {
    current: Arc<QPSeeker>,
    previous: Option<Arc<QPSeeker>>,
}

/// Epoch-stamped publication cell for the serving model.
pub struct ModelCell {
    inner: Mutex<CellInner>,
    epoch: AtomicU64,
}

impl ModelCell {
    pub fn new(model: Arc<QPSeeker>) -> Self {
        Self::with_base_epoch(model, 0)
    }

    /// A cell whose publication epoch starts at `epoch` instead of 0. The
    /// [`ModelRegistry`] uses this on reload-after-eviction so a tenant's
    /// epochs stay monotonic across its cell's whole lifetime: sessions and
    /// plan-cache entries stamped under the evicted cell can never alias an
    /// epoch the reloaded cell will publish.
    pub fn with_base_epoch(model: Arc<QPSeeker>, epoch: u64) -> Self {
        Self {
            inner: Mutex::new(CellInner { current: model, previous: None }),
            epoch: AtomicU64::new(epoch),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CellInner> {
        // A panicking publisher cannot leave the cell half-written: both
        // fields are swapped under the lock with no intermediate state, so
        // poison recovery is safe.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The current model and its publication epoch, read atomically. The
    /// returned `Arc` keeps the model alive for as long as the caller's
    /// request runs, regardless of later swaps.
    pub fn load(&self) -> (Arc<QPSeeker>, u64) {
        let g = self.lock();
        let arc = Arc::clone(&g.current);
        // Epoch is read under the lock so (model, epoch) pairs are always
        // consistent.
        let epoch = self.epoch.load(Ordering::Acquire);
        (arc, epoch)
    }

    /// Publication epoch (bumps on every publish and rollback).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish `model`, keeping the displaced one resident for rollback.
    /// Returns the new epoch.
    pub fn publish(&self, model: Arc<QPSeeker>) -> u64 {
        let mut g = self.lock();
        let old = std::mem::replace(&mut g.current, model);
        g.previous = Some(old);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Swap the resident previous model back in, dropping the regressed one.
    /// Returns the new epoch, or `None` when no previous model is resident
    /// (fresh cell, or the rollback budget was already spent).
    pub fn rollback(&self) -> Option<u64> {
        let mut g = self.lock();
        let prev = g.previous.take()?;
        g.current = prev;
        Some(self.epoch.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Whether a rollback target is resident.
    pub fn has_previous(&self) -> bool {
        self.lock().previous.is_some()
    }
}

/// Verdict of one post-swap observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapVerdict {
    /// Post-swap runtimes are within the allowed factor of the baseline.
    Healthy { baseline_ms: f64, post_ms: f64 },
    /// Post-swap runtimes regressed beyond the threshold: roll back.
    Regressed { baseline_ms: f64, post_ms: f64 },
}

/// Sliding-window regression monitor over observed plan runtimes.
///
/// Feed every observed runtime through [`RegressionMonitor::observe`]. While
/// disarmed, observations maintain a rolling baseline window. Arming (on
/// promotion) freezes the baseline mean; the next `min_samples` observations
/// form the post-swap window, after which [`RegressionMonitor::verdict`]
/// fires exactly once.
#[derive(Debug, Clone)]
pub struct RegressionMonitor {
    window: usize,
    min_samples: usize,
    /// Post/pre mean runtime ratio above which the swap is a regression.
    threshold: f64,
    baseline: VecDeque<f64>,
    baseline_mean: f64,
    post: Vec<f64>,
    armed: bool,
}

impl RegressionMonitor {
    pub fn new(window: usize, min_samples: usize, threshold: f64) -> Self {
        Self {
            window: window.max(1),
            min_samples: min_samples.max(1),
            threshold: threshold.max(1.0),
            baseline: VecDeque::new(),
            baseline_mean: 0.0,
            post: Vec::new(),
            armed: false,
        }
    }

    /// Record one observed plan runtime (virtual milliseconds).
    pub fn observe(&mut self, runtime_ms: f64) {
        if !runtime_ms.is_finite() {
            return;
        }
        if self.armed {
            self.post.push(runtime_ms);
        } else {
            if self.baseline.len() == self.window {
                self.baseline.pop_front();
            }
            self.baseline.push_back(runtime_ms);
        }
    }

    /// Arm the monitor at a swap point: the rolling window becomes the
    /// frozen pre-swap baseline. With an empty baseline (swap before any
    /// traffic) the monitor stays disarmed — there is nothing to compare.
    pub fn arm(&mut self) {
        if self.baseline.is_empty() {
            return;
        }
        self.baseline_mean = self.baseline.iter().sum::<f64>() / self.baseline.len() as f64;
        self.post.clear();
        self.armed = true;
    }

    /// Whether a post-swap window is currently being collected.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Once the post-swap window is full, return the verdict and disarm.
    /// Returns `None` while disarmed or still collecting. On a healthy
    /// verdict the post-swap window seeds the new rolling baseline, so a
    /// later swap is judged against the promoted model's own steady state.
    pub fn verdict(&mut self) -> Option<SwapVerdict> {
        if !self.armed || self.post.len() < self.min_samples {
            return None;
        }
        let post_ms = self.post.iter().sum::<f64>() / self.post.len() as f64;
        let baseline_ms = self.baseline_mean;
        self.armed = false;
        if post_ms > baseline_ms * self.threshold {
            self.post.clear();
            Some(SwapVerdict::Regressed { baseline_ms, post_ms })
        } else {
            self.baseline.clear();
            for &v in self.post.iter().rev().take(self.window) {
                self.baseline.push_front(v);
            }
            self.post.clear();
            Some(SwapVerdict::Healthy { baseline_ms, post_ms })
        }
    }
}

/// What a caller needs to serve one tenant: its database, its publication
/// cell, and the stats version plan-cache lookups must be scoped to.
#[derive(Clone)]
pub struct TenantHandle {
    pub db: Arc<Database>,
    pub cell: Arc<ModelCell>,
    pub stats_version: u64,
}

struct TenantEntry {
    db: Arc<Database>,
    cell: Arc<ModelCell>,
    bytes: usize,
    last_used: u64,
}

/// Per-tenant state that must survive eviction: the next epoch a reloaded
/// cell starts at (monotonicity across the evict/reload boundary is what
/// makes session and plan-cache invalidation automatic) and the tenant's
/// statistics version.
#[derive(Clone, Copy, Default)]
struct TenantPersist {
    next_epoch: u64,
    stats_version: u64,
}

struct RegistryInner {
    resident: HashMap<String, TenantEntry>,
    persist: HashMap<String, TenantPersist>,
    tick: u64,
    evictions: u64,
}

/// Multi-tenant model registry: tenant → versioned `Arc<QPSeeker>` behind a
/// [`ModelCell`], with LRU eviction under a configurable memory budget and
/// graceful reload-on-miss ([`ModelRegistry::get_or_load`]).
///
/// Invalidation contract — the property the tenant bulkheads rest on:
///
/// * a tenant's publication epochs are **monotonic for the registry's whole
///   lifetime**, across any number of evictions and reloads (an evicted
///   tenant's `next_epoch` is recorded before the cell is dropped, and the
///   reloaded cell starts there). A worker [`crate::session::PlannerSession`]
///   that pinned `(model, epoch)` detects any swap *or* evict/reload cycle as
///   an epoch change and resets, so no featurization or eval-cache entry
///   computed against dropped weights survives;
/// * plan-cache entries are stamped with the epoch they were planned under
///   and rejected on mismatch at lookup, so the same monotonicity argument
///   invalidates them implicitly; eviction and stats refresh additionally
///   purge the tenant's shards eagerly when a cache is attached
///   ([`ModelRegistry::attach_plan_cache`]) to free the memory now.
///
/// Both invalidations key off the one epoch counter, so there is no ordering
/// window in which a request could observe a mixed (old-plan, new-model)
/// state: whichever epoch a request resolves, both its model and any cache
/// entry it accepts carry that same epoch.
pub struct ModelRegistry {
    inner: Mutex<RegistryInner>,
    mem_budget_bytes: usize,
    cache: Option<Arc<PlanCache>>,
}

/// Resident bytes charged for one model (f32 parameters).
fn model_bytes(model: &QPSeeker) -> usize {
    model.num_parameters() * std::mem::size_of::<f32>()
}

impl ModelRegistry {
    /// A registry evicting least-recently-used tenants once resident models
    /// exceed `mem_budget_bytes`. The budget floors at one model: the most
    /// recent tenant is never evicted, however large.
    pub fn new(mem_budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(RegistryInner {
                resident: HashMap::new(),
                persist: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            mem_budget_bytes,
            cache: None,
        }
    }

    /// Attach the shared plan cache so eviction and stats refresh purge the
    /// tenant's cache shards eagerly (correctness never depends on this —
    /// epoch/stats stamping already rejects stale entries at lookup).
    pub fn attach_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        // Every mutation below is a whole-entry insert/remove under the
        // lock; a panicking caller cannot leave a half-written tenant.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Register (or replace) `tenant`, evicting LRU tenants as needed to
    /// respect the memory budget. Returns the tenant's serving handle.
    pub fn register(&self, tenant: &str, db: Arc<Database>, model: Arc<QPSeeker>) -> TenantHandle {
        let bytes = model_bytes(&model);
        let mut g = self.lock();
        if let Some(old) = g.resident.remove(tenant) {
            // Replacing a resident tenant is a publication event too.
            let next = old.cell.epoch() + 1;
            g.persist.entry(tenant.to_string()).or_default().next_epoch = next;
        }
        let persist = *g.persist.entry(tenant.to_string()).or_default();
        let cell = Arc::new(ModelCell::with_base_epoch(model, persist.next_epoch));
        g.tick += 1;
        let tick = g.tick;
        g.resident.insert(
            tenant.to_string(),
            TenantEntry { db: Arc::clone(&db), cell: Arc::clone(&cell), bytes, last_used: tick },
        );
        self.enforce_budget(&mut g, tenant);
        TenantHandle { db, cell, stats_version: persist.stats_version }
    }

    /// The tenant's handle, bumping its LRU recency. `None` when evicted or
    /// never registered — callers recover with [`ModelRegistry::get_or_load`].
    pub fn get(&self, tenant: &str) -> Option<TenantHandle> {
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        let stats_version = g.persist.get(tenant).map(|p| p.stats_version).unwrap_or(0);
        let entry = g.resident.get_mut(tenant)?;
        entry.last_used = tick;
        Some(TenantHandle {
            db: Arc::clone(&entry.db),
            cell: Arc::clone(&entry.cell),
            stats_version,
        })
    }

    /// The tenant's handle, reloading it through `loader` on a miss
    /// (graceful reload after eviction). The reloaded cell resumes the
    /// tenant's epoch sequence where the evicted one left off.
    pub fn get_or_load<E>(
        &self,
        tenant: &str,
        loader: impl FnOnce() -> Result<(Arc<Database>, Arc<QPSeeker>), E>,
    ) -> Result<TenantHandle, E> {
        if let Some(h) = self.get(tenant) {
            return Ok(h);
        }
        let (db, model) = loader()?;
        Ok(self.register(tenant, db, model))
    }

    /// Publish a new model for a resident tenant through its cell. Returns
    /// the new epoch, or `None` when the tenant is not resident.
    pub fn publish(&self, tenant: &str, model: Arc<QPSeeker>) -> Option<u64> {
        let (cell, delta) = {
            let mut g = self.lock();
            let entry = g.resident.get_mut(tenant)?;
            let delta = model_bytes(&model) as isize - entry.bytes as isize;
            entry.bytes = (entry.bytes as isize + delta).max(0) as usize;
            (Arc::clone(&entry.cell), delta)
        };
        let epoch = cell.publish(model);
        if delta > 0 {
            let mut g = self.lock();
            self.enforce_budget(&mut g, tenant);
        }
        if let Some(cache) = &self.cache {
            cache.invalidate_tenant(tenant);
        }
        Some(epoch)
    }

    /// Evict `tenant` now, recording its next epoch so a later reload keeps
    /// the sequence monotonic. Returns whether it was resident.
    pub fn evict(&self, tenant: &str) -> bool {
        let evicted = {
            let mut g = self.lock();
            match g.resident.remove(tenant) {
                Some(entry) => {
                    let next = entry.cell.epoch() + 1;
                    g.persist.entry(tenant.to_string()).or_default().next_epoch = next;
                    g.evictions += 1;
                    true
                }
                None => false,
            }
        };
        if evicted {
            if let Some(cache) = &self.cache {
                cache.invalidate_tenant(tenant);
            }
        }
        evicted
    }

    /// Bump the tenant's statistics version (an ANALYZE-style refresh):
    /// every plan cached under the old statistics becomes unservable.
    /// Returns the new version.
    pub fn refresh_stats(&self, tenant: &str) -> u64 {
        let v = {
            let mut g = self.lock();
            let p = g.persist.entry(tenant.to_string()).or_default();
            p.stats_version += 1;
            p.stats_version
        };
        if let Some(cache) = &self.cache {
            cache.invalidate_tenant(tenant);
        }
        v
    }

    /// Current stats version for the tenant (0 before any refresh).
    pub fn stats_version(&self, tenant: &str) -> u64 {
        self.lock().persist.get(tenant).map(|p| p.stats_version).unwrap_or(0)
    }

    /// Resident tenants, sorted (deterministic iteration for tests/CLI).
    pub fn resident_tenants(&self) -> Vec<String> {
        let g = self.lock();
        let mut out: Vec<String> = g.resident.keys().cloned().collect();
        out.sort();
        out
    }

    /// Bytes currently charged against the memory budget.
    pub fn mem_used_bytes(&self) -> usize {
        self.lock().resident.values().map(|e| e.bytes).sum()
    }

    pub fn mem_budget_bytes(&self) -> usize {
        self.mem_budget_bytes
    }

    /// LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Evict LRU tenants (never `keep`) until within budget or only `keep`
    /// remains. Cache purges for the victims run after the lock drops.
    fn enforce_budget(&self, g: &mut MutexGuard<'_, RegistryInner>, keep: &str) {
        let mut victims: Vec<String> = Vec::new();
        loop {
            let used: usize = g.resident.values().map(|e| e.bytes).sum();
            if used <= self.mem_budget_bytes || g.resident.len() <= 1 {
                break;
            }
            let Some(victim) = g
                .resident
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(name, _)| name.clone())
            else {
                break;
            };
            let entry = g.resident.remove(&victim).expect("victim chosen from resident set");
            let next = entry.cell.epoch() + 1;
            g.persist.entry(victim.clone()).or_default().next_epoch = next;
            g.evictions += 1;
            victims.push(victim);
        }
        if let Some(cache) = &self.cache {
            for v in victims {
                cache.invalidate_tenant(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_storage::datagen::imdb;

    fn tiny_model() -> Arc<QPSeeker> {
        let db = Arc::new(imdb::generate(0.02, 1));
        Arc::new(QPSeeker::new(&db, ModelConfig::small()))
    }

    #[test]
    fn publish_bumps_epoch_and_keeps_previous_resident() {
        let a = tiny_model();
        let b = tiny_model();
        let cell = ModelCell::new(Arc::clone(&a));
        let (got, e0) = cell.load();
        assert_eq!(e0, 0);
        assert!(Arc::ptr_eq(&got, &a));
        assert!(!cell.has_previous());
        let e1 = cell.publish(Arc::clone(&b));
        assert_eq!(e1, 1);
        let (got, e) = cell.load();
        assert_eq!(e, 1);
        assert!(Arc::ptr_eq(&got, &b));
        assert!(cell.has_previous());
    }

    #[test]
    fn in_flight_arc_outlives_a_swap_and_a_rollback() {
        let a = tiny_model();
        let b = tiny_model();
        let cell = ModelCell::new(Arc::clone(&a));
        let (held, _) = cell.load(); // "in-flight request"
        cell.publish(Arc::clone(&b));
        cell.rollback();
        // The in-flight request still holds a live model either way.
        assert!(Arc::ptr_eq(&held, &a));
        assert!(held.num_parameters() > 0);
    }

    #[test]
    fn rollback_restores_previous_exactly_once() {
        let a = tiny_model();
        let b = tiny_model();
        let cell = ModelCell::new(Arc::clone(&a));
        assert!(cell.rollback().is_none(), "nothing to roll back to yet");
        cell.publish(Arc::clone(&b));
        let e = cell.rollback().expect("previous resident");
        assert_eq!(e, 2, "rollback is itself a publication");
        let (got, _) = cell.load();
        assert!(Arc::ptr_eq(&got, &a));
        assert!(cell.rollback().is_none(), "rollback budget is one");
    }

    #[test]
    fn monitor_flags_a_regression_and_spares_a_healthy_swap() {
        let mut m = RegressionMonitor::new(8, 4, 1.5);
        for _ in 0..8 {
            m.observe(10.0);
        }
        m.arm();
        assert!(m.is_armed());
        for _ in 0..4 {
            m.observe(30.0); // 3x the baseline
        }
        match m.verdict() {
            Some(SwapVerdict::Regressed { baseline_ms, post_ms }) => {
                assert!((baseline_ms - 10.0).abs() < 1e-9);
                assert!((post_ms - 30.0).abs() < 1e-9);
            }
            other => panic!("expected regression, got {other:?}"),
        }
        assert!(!m.is_armed(), "verdict disarms");

        // Healthy swap: post within threshold.
        let mut m = RegressionMonitor::new(8, 4, 1.5);
        for _ in 0..8 {
            m.observe(10.0);
        }
        m.arm();
        for _ in 0..4 {
            m.observe(12.0);
        }
        assert!(matches!(m.verdict(), Some(SwapVerdict::Healthy { .. })));
        // The post window seeded the new baseline.
        m.arm();
        for _ in 0..4 {
            m.observe(30.0);
        }
        match m.verdict() {
            Some(SwapVerdict::Regressed { baseline_ms, .. }) => {
                assert!((baseline_ms - 12.0).abs() < 1e-9, "baseline re-seeded at 12");
            }
            other => panic!("expected regression vs re-seeded baseline, got {other:?}"),
        }
    }

    #[test]
    fn monitor_with_no_baseline_never_arms() {
        let mut m = RegressionMonitor::new(8, 2, 1.2);
        m.arm();
        assert!(!m.is_armed());
        m.observe(5.0);
        m.observe(5.0);
        assert!(m.verdict().is_none());
    }

    fn tiny_db() -> Arc<Database> {
        Arc::new(imdb::generate(0.02, 1))
    }

    #[test]
    fn registry_evicts_lru_under_memory_budget() {
        let db = tiny_db();
        let one = model_bytes(&QPSeeker::new(&db, ModelConfig::small()));
        // Room for two models, not three.
        let reg = ModelRegistry::new(2 * one + one / 2);
        reg.register("a", Arc::clone(&db), tiny_model());
        reg.register("b", Arc::clone(&db), tiny_model());
        assert_eq!(reg.resident_tenants(), vec!["a", "b"]);
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        assert!(reg.get("a").is_some());
        reg.register("c", Arc::clone(&db), tiny_model());
        assert_eq!(reg.resident_tenants(), vec!["a", "c"]);
        assert_eq!(reg.evictions(), 1);
        assert!(reg.get("b").is_none(), "evicted tenant misses");
        assert!(reg.mem_used_bytes() <= reg.mem_budget_bytes());
    }

    #[test]
    fn epochs_stay_monotonic_across_evict_and_reload() {
        let db = tiny_db();
        let reg = ModelRegistry::new(usize::MAX);
        let h = reg.register("a", Arc::clone(&db), tiny_model());
        assert_eq!(h.cell.epoch(), 0);
        h.cell.publish(tiny_model());
        h.cell.publish(tiny_model());
        assert_eq!(h.cell.epoch(), 2);
        assert!(reg.evict("a"));
        assert!(!reg.evict("a"), "double evict is a no-op");
        let reloaded = reg
            .get_or_load("a", || Ok::<_, CoreErrNever>((Arc::clone(&db), tiny_model())))
            .unwrap();
        assert_eq!(
            reloaded.cell.epoch(),
            3,
            "reloaded cell resumes after the evicted cell's last epoch"
        );
        // A session that pinned epoch 2 sees 3 as a change and resets; a
        // plan-cache entry stamped 2 can never match a lookup at 3.
        assert!(reloaded.cell.epoch() > 2);
    }

    /// Infallible loader error type for tests.
    #[derive(Debug)]
    enum CoreErrNever {}

    #[test]
    fn reregistering_a_resident_tenant_also_bumps_the_epoch() {
        let db = tiny_db();
        let reg = ModelRegistry::new(usize::MAX);
        let h1 = reg.register("a", Arc::clone(&db), tiny_model());
        assert_eq!(h1.cell.epoch(), 0);
        let h2 = reg.register("a", Arc::clone(&db), tiny_model());
        assert_eq!(h2.cell.epoch(), 1, "replacement is a publication event");
    }

    #[test]
    fn eviction_and_stats_refresh_purge_the_attached_plan_cache() {
        use crate::plancache::{query_fingerprint, CachedPlan, PlanCache};
        use qpseeker_engine::plan::{PlanNode, ScanOp};
        use qpseeker_engine::query::{Query, RelRef};

        let db = tiny_db();
        let cache = Arc::new(PlanCache::new(2, 16));
        let reg = ModelRegistry::new(usize::MAX).attach_plan_cache(Arc::clone(&cache));
        reg.register("a", Arc::clone(&db), tiny_model());
        reg.register("b", Arc::clone(&db), tiny_model());

        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title")];
        let fp = query_fingerprint(&q);
        let plan = PlanNode::scan(&q, "title", ScanOp::SeqScan);
        for t in ["a", "b"] {
            cache.insert(
                t,
                &q,
                fp,
                CachedPlan {
                    plan: plan.clone(),
                    predicted_ms: 1.0,
                    epoch: 0,
                    stats_version: 0,
                    strategy: 0,
                },
            );
        }
        assert_eq!(cache.len(), 2);
        reg.evict("a");
        assert_eq!(cache.len(), 1, "eviction purged only tenant a's shard entries");
        assert!(cache.lookup("b", &q, fp, 0, 0, 0).is_some());

        let v = reg.refresh_stats("b");
        assert_eq!(v, 1);
        assert_eq!(reg.stats_version("b"), 1);
        assert_eq!(cache.len(), 0, "stats refresh purged tenant b");
    }

    #[test]
    fn publish_through_registry_invalidates_the_cache_and_bumps_epoch() {
        use crate::plancache::PlanCache;
        let db = tiny_db();
        let cache = Arc::new(PlanCache::new(2, 16));
        let reg = ModelRegistry::new(usize::MAX).attach_plan_cache(Arc::clone(&cache));
        let h = reg.register("a", Arc::clone(&db), tiny_model());
        assert_eq!(reg.publish("a", tiny_model()), Some(1));
        assert_eq!(h.cell.epoch(), 1, "handle and registry share the cell");
        assert_eq!(reg.publish("missing", tiny_model()), None);
    }

    #[test]
    fn concurrent_loads_see_consistent_pairs() {
        let a = tiny_model();
        let cell = Arc::new(ModelCell::new(a));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let stop = Arc::clone(&stop);
                    s.spawn(move || {
                        let mut seen = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let (_m, e) = cell.load();
                            assert!(e >= seen, "epoch went backwards: {e} < {seen}");
                            seen = e;
                        }
                    })
                })
                .collect();
            for _ in 0..50 {
                cell.publish(tiny_model());
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(cell.epoch(), 50);
    }
}
