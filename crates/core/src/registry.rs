//! Zero-downtime model publication: the epoch-stamped cell serving workers
//! read the model through, plus the sliding-window regression monitor that
//! rolls a bad promotion back automatically.
//!
//! [`ModelCell`] is an ArcSwap-style publication point implemented over a
//! short critical section: readers take a clone of the current
//! `Arc<PlannerModel>` plus the publication epoch, so an in-flight request
//! finishes on the model it started with no matter how many swaps land
//! mid-request, and a worker detects a swap by comparing epochs — its cue to
//! drop its [`crate::session::PlannerSession`] caches, which hold
//! predictions from the old weights. The previous model stays resident so
//! [`ModelCell::rollback`] is instant and allocation-free.
//!
//! [`RegressionMonitor`] watches observed executor runtimes. A promotion
//! arms it with the pre-swap baseline window; once enough post-swap
//! observations accumulate, a mean regression beyond the configured factor
//! yields a rollback verdict. One rollback consumes the resident previous
//! model — a flapping candidate cannot ping-pong traffic.

use crate::model::QPSeeker;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

struct CellInner {
    current: Arc<QPSeeker>,
    previous: Option<Arc<QPSeeker>>,
}

/// Epoch-stamped publication cell for the serving model.
pub struct ModelCell {
    inner: Mutex<CellInner>,
    epoch: AtomicU64,
}

impl ModelCell {
    pub fn new(model: Arc<QPSeeker>) -> Self {
        Self {
            inner: Mutex::new(CellInner { current: model, previous: None }),
            epoch: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CellInner> {
        // A panicking publisher cannot leave the cell half-written: both
        // fields are swapped under the lock with no intermediate state, so
        // poison recovery is safe.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The current model and its publication epoch, read atomically. The
    /// returned `Arc` keeps the model alive for as long as the caller's
    /// request runs, regardless of later swaps.
    pub fn load(&self) -> (Arc<QPSeeker>, u64) {
        let g = self.lock();
        let arc = Arc::clone(&g.current);
        // Epoch is read under the lock so (model, epoch) pairs are always
        // consistent.
        let epoch = self.epoch.load(Ordering::Acquire);
        (arc, epoch)
    }

    /// Publication epoch (bumps on every publish and rollback).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish `model`, keeping the displaced one resident for rollback.
    /// Returns the new epoch.
    pub fn publish(&self, model: Arc<QPSeeker>) -> u64 {
        let mut g = self.lock();
        let old = std::mem::replace(&mut g.current, model);
        g.previous = Some(old);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Swap the resident previous model back in, dropping the regressed one.
    /// Returns the new epoch, or `None` when no previous model is resident
    /// (fresh cell, or the rollback budget was already spent).
    pub fn rollback(&self) -> Option<u64> {
        let mut g = self.lock();
        let prev = g.previous.take()?;
        g.current = prev;
        Some(self.epoch.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Whether a rollback target is resident.
    pub fn has_previous(&self) -> bool {
        self.lock().previous.is_some()
    }
}

/// Verdict of one post-swap observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapVerdict {
    /// Post-swap runtimes are within the allowed factor of the baseline.
    Healthy { baseline_ms: f64, post_ms: f64 },
    /// Post-swap runtimes regressed beyond the threshold: roll back.
    Regressed { baseline_ms: f64, post_ms: f64 },
}

/// Sliding-window regression monitor over observed plan runtimes.
///
/// Feed every observed runtime through [`RegressionMonitor::observe`]. While
/// disarmed, observations maintain a rolling baseline window. Arming (on
/// promotion) freezes the baseline mean; the next `min_samples` observations
/// form the post-swap window, after which [`RegressionMonitor::verdict`]
/// fires exactly once.
#[derive(Debug, Clone)]
pub struct RegressionMonitor {
    window: usize,
    min_samples: usize,
    /// Post/pre mean runtime ratio above which the swap is a regression.
    threshold: f64,
    baseline: VecDeque<f64>,
    baseline_mean: f64,
    post: Vec<f64>,
    armed: bool,
}

impl RegressionMonitor {
    pub fn new(window: usize, min_samples: usize, threshold: f64) -> Self {
        Self {
            window: window.max(1),
            min_samples: min_samples.max(1),
            threshold: threshold.max(1.0),
            baseline: VecDeque::new(),
            baseline_mean: 0.0,
            post: Vec::new(),
            armed: false,
        }
    }

    /// Record one observed plan runtime (virtual milliseconds).
    pub fn observe(&mut self, runtime_ms: f64) {
        if !runtime_ms.is_finite() {
            return;
        }
        if self.armed {
            self.post.push(runtime_ms);
        } else {
            if self.baseline.len() == self.window {
                self.baseline.pop_front();
            }
            self.baseline.push_back(runtime_ms);
        }
    }

    /// Arm the monitor at a swap point: the rolling window becomes the
    /// frozen pre-swap baseline. With an empty baseline (swap before any
    /// traffic) the monitor stays disarmed — there is nothing to compare.
    pub fn arm(&mut self) {
        if self.baseline.is_empty() {
            return;
        }
        self.baseline_mean = self.baseline.iter().sum::<f64>() / self.baseline.len() as f64;
        self.post.clear();
        self.armed = true;
    }

    /// Whether a post-swap window is currently being collected.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Once the post-swap window is full, return the verdict and disarm.
    /// Returns `None` while disarmed or still collecting. On a healthy
    /// verdict the post-swap window seeds the new rolling baseline, so a
    /// later swap is judged against the promoted model's own steady state.
    pub fn verdict(&mut self) -> Option<SwapVerdict> {
        if !self.armed || self.post.len() < self.min_samples {
            return None;
        }
        let post_ms = self.post.iter().sum::<f64>() / self.post.len() as f64;
        let baseline_ms = self.baseline_mean;
        self.armed = false;
        if post_ms > baseline_ms * self.threshold {
            self.post.clear();
            Some(SwapVerdict::Regressed { baseline_ms, post_ms })
        } else {
            self.baseline.clear();
            for &v in self.post.iter().rev().take(self.window) {
                self.baseline.push_front(v);
            }
            self.post.clear();
            Some(SwapVerdict::Healthy { baseline_ms, post_ms })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_storage::datagen::imdb;

    fn tiny_model() -> Arc<QPSeeker> {
        let db = Arc::new(imdb::generate(0.02, 1));
        Arc::new(QPSeeker::new(&db, ModelConfig::small()))
    }

    #[test]
    fn publish_bumps_epoch_and_keeps_previous_resident() {
        let a = tiny_model();
        let b = tiny_model();
        let cell = ModelCell::new(Arc::clone(&a));
        let (got, e0) = cell.load();
        assert_eq!(e0, 0);
        assert!(Arc::ptr_eq(&got, &a));
        assert!(!cell.has_previous());
        let e1 = cell.publish(Arc::clone(&b));
        assert_eq!(e1, 1);
        let (got, e) = cell.load();
        assert_eq!(e, 1);
        assert!(Arc::ptr_eq(&got, &b));
        assert!(cell.has_previous());
    }

    #[test]
    fn in_flight_arc_outlives_a_swap_and_a_rollback() {
        let a = tiny_model();
        let b = tiny_model();
        let cell = ModelCell::new(Arc::clone(&a));
        let (held, _) = cell.load(); // "in-flight request"
        cell.publish(Arc::clone(&b));
        cell.rollback();
        // The in-flight request still holds a live model either way.
        assert!(Arc::ptr_eq(&held, &a));
        assert!(held.num_parameters() > 0);
    }

    #[test]
    fn rollback_restores_previous_exactly_once() {
        let a = tiny_model();
        let b = tiny_model();
        let cell = ModelCell::new(Arc::clone(&a));
        assert!(cell.rollback().is_none(), "nothing to roll back to yet");
        cell.publish(Arc::clone(&b));
        let e = cell.rollback().expect("previous resident");
        assert_eq!(e, 2, "rollback is itself a publication");
        let (got, _) = cell.load();
        assert!(Arc::ptr_eq(&got, &a));
        assert!(cell.rollback().is_none(), "rollback budget is one");
    }

    #[test]
    fn monitor_flags_a_regression_and_spares_a_healthy_swap() {
        let mut m = RegressionMonitor::new(8, 4, 1.5);
        for _ in 0..8 {
            m.observe(10.0);
        }
        m.arm();
        assert!(m.is_armed());
        for _ in 0..4 {
            m.observe(30.0); // 3x the baseline
        }
        match m.verdict() {
            Some(SwapVerdict::Regressed { baseline_ms, post_ms }) => {
                assert!((baseline_ms - 10.0).abs() < 1e-9);
                assert!((post_ms - 30.0).abs() < 1e-9);
            }
            other => panic!("expected regression, got {other:?}"),
        }
        assert!(!m.is_armed(), "verdict disarms");

        // Healthy swap: post within threshold.
        let mut m = RegressionMonitor::new(8, 4, 1.5);
        for _ in 0..8 {
            m.observe(10.0);
        }
        m.arm();
        for _ in 0..4 {
            m.observe(12.0);
        }
        assert!(matches!(m.verdict(), Some(SwapVerdict::Healthy { .. })));
        // The post window seeded the new baseline.
        m.arm();
        for _ in 0..4 {
            m.observe(30.0);
        }
        match m.verdict() {
            Some(SwapVerdict::Regressed { baseline_ms, .. }) => {
                assert!((baseline_ms - 12.0).abs() < 1e-9, "baseline re-seeded at 12");
            }
            other => panic!("expected regression vs re-seeded baseline, got {other:?}"),
        }
    }

    #[test]
    fn monitor_with_no_baseline_never_arms() {
        let mut m = RegressionMonitor::new(8, 2, 1.2);
        m.arm();
        assert!(!m.is_armed());
        m.observe(5.0);
        m.observe(5.0);
        assert!(m.verdict().is_none());
    }

    #[test]
    fn concurrent_loads_see_consistent_pairs() {
        let a = tiny_model();
        let cell = Arc::new(ModelCell::new(a));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let stop = Arc::clone(&stop);
                    s.spawn(move || {
                        let mut seen = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let (_m, e) = cell.load();
                            assert!(e >= seen, "epoch went backwards: {e} < {seen}");
                            seen = e;
                        }
                    })
                })
                .collect();
            for _ in 0..50 {
                cell.publish(tiny_model());
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(cell.epoch(), 50);
    }
}
