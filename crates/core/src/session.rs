//! Per-thread planner state.
//!
//! The model/session split: [`crate::model::QPSeeker`] (alias
//! [`crate::model::PlannerModel`]) is immutable after training and shared
//! across threads behind an `Arc`; everything mutable that planning needs —
//! featurization caches, the MCTS tree and its evaluation cache — lives in a
//! [`PlannerSession`] owned by exactly one thread. A serving worker creates
//! one session at startup and reuses it for every request it handles, so the
//! hot path takes no locks and caches stay warm per worker.

use crate::featurize::FeatSession;
use crate::mcts::MctsScratch;
use crate::model::QPSeeker;

/// Mutable per-thread planning state over one shared model: featurization
/// caches (TaBERT encodings, filtered-column representations) plus the MCTS
/// search scratch (tree arena, evaluation cache, reusable buffers).
///
/// Cheap to create — all caches start empty and fill on use. `Send` but not
/// shared: pass it `&mut` into the `*_in` / `*_with_session` entry points.
#[derive(Default)]
pub struct PlannerSession {
    /// Featurization caches (see [`FeatSession`]).
    pub feat: FeatSession,
    /// MCTS tree arena, evaluation cache, and reusable buffers.
    pub mcts: MctsScratch,
    /// Per-worker state for root-parallel in-query search
    /// (`MctsConfig::parallel_sims >= 1`): one shard per search thread,
    /// grown on demand and reused across queries so shard caches stay warm
    /// exactly like the session's own. Empty until root-parallel planning
    /// is first used.
    pub shards: Vec<PlannerShard>,
}

/// Mutable state for one root-parallel MCTS worker thread: its own
/// featurization session and search scratch, structurally identical to the
/// owning [`PlannerSession`]'s. Shards never share state — determinism of
/// the merged result is argued in `crate::mcts`'s module docs.
#[derive(Default)]
pub struct PlannerShard {
    pub feat: FeatSession,
    pub mcts: MctsScratch,
}

impl PlannerSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every cached value. Serving workers call this when the
    /// publication epoch changes under them: featurizations and MCTS
    /// evaluation-cache entries computed against the old model's weights
    /// must never score plans for the new one.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl QPSeeker {
    /// A fresh per-thread session over this model. Equivalent to
    /// [`PlannerSession::new`]; provided on the model so worker setup reads
    /// naturally (`let mut sess = model.new_session()`).
    pub fn new_session(&self) -> PlannerSession {
        PlannerSession::new()
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PlannerSession>()
};
