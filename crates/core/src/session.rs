//! Per-thread planner state.
//!
//! The model/session split: [`crate::model::QPSeeker`] (alias
//! [`crate::model::PlannerModel`]) is immutable after training and shared
//! across threads behind an `Arc`; everything mutable that planning needs —
//! featurization caches, the search tree/beam and their evaluation caches —
//! lives in a [`PlannerSession`] owned by exactly one thread. A serving
//! worker creates one session at startup and reuses it for every request it
//! handles, so the hot path takes no locks and caches stay warm per worker.

use crate::evalbroker::BrokerMember;
use crate::featurize::FeatSession;
use crate::mcts::MctsScratch;
use crate::model::QPSeeker;
use crate::search::beam::BeamScratch;

/// Search scratch for whichever strategy the session last ran. One request
/// uses one strategy, so the variants never coexist; switching strategies
/// mid-session simply rebuilds the other variant's (empty) scratch. Epoch
/// hot-swap resets ([`PlannerSession::reset`]) drop the whole enum, so the
/// invariant that no cached evaluation survives a model swap holds for
/// every strategy, not just MCTS.
// One scratch exists per worker thread (never in a collection), so the
// variant size gap costs a few hundred stack bytes once — not worth the
// pointer chase a `Box<MctsScratch>` would put on the search hot path.
#[allow(clippy::large_enum_variant)]
pub enum SearchScratch {
    /// Left-deep MCTS: tree arena, evaluation cache, rollout buffers.
    Mcts(MctsScratch),
    /// Bushy beam search: subtree evaluation cache, closed set, buffers.
    Beam(BeamScratch),
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::Mcts(MctsScratch::default())
    }
}

impl SearchScratch {
    /// The MCTS scratch, switching the variant over if the session last
    /// ran beam search (the stale variant's caches are dropped — they are
    /// keyed per strategy and must not leak across).
    pub fn mcts(&mut self) -> &mut MctsScratch {
        if !matches!(self, Self::Mcts(_)) {
            *self = Self::Mcts(MctsScratch::default());
        }
        match self {
            Self::Mcts(m) => m,
            Self::Beam(_) => unreachable!("variant switched above"),
        }
    }

    /// The beam scratch, switching the variant over if the session last
    /// ran MCTS.
    pub fn beam(&mut self) -> &mut BeamScratch {
        if !matches!(self, Self::Beam(_)) {
            *self = Self::Beam(BeamScratch::default());
        }
        match self {
            Self::Beam(b) => b,
            Self::Mcts(_) => unreachable!("variant switched above"),
        }
    }
}

/// Mutable per-thread planning state over one shared model: featurization
/// caches (TaBERT encodings, filtered-column representations) plus the
/// search scratch of whichever strategy is running (MCTS tree arena or
/// beam fringe, with their evaluation caches and reusable buffers).
///
/// Cheap to create — all caches start empty and fill on use. `Send` but not
/// shared: pass it `&mut` into the `*_in` / `*_with_session` entry points.
#[derive(Default)]
pub struct PlannerSession {
    /// Featurization caches (see [`FeatSession`]).
    pub feat: FeatSession,
    /// Strategy search scratch (tree/beam arena, evaluation cache,
    /// reusable buffers).
    pub search: SearchScratch,
    /// Per-worker state for root-parallel in-query search
    /// (`MctsConfig::parallel_sims >= 1`): one shard per search thread,
    /// grown on demand and reused across queries so shard caches stay warm
    /// exactly like the session's own. Empty until root-parallel planning
    /// is first used. Root parallelism is an MCTS mode, so shards carry
    /// MCTS scratch directly.
    pub shards: Vec<PlannerShard>,
    /// Seat on a shared [`crate::evalbroker::EvalBroker`], when this
    /// session's supervisor routes candidate scoring through one. Attached
    /// by the serving layer before the worker's first request; planning
    /// submits through it whenever it is present and the fast path is on.
    /// Root-parallel MCTS shards never carry a seat — their threads are
    /// not broker members and always score locally.
    pub(crate) broker: Option<BrokerMember>,
}

/// Mutable state for one root-parallel MCTS worker thread: its own
/// featurization session and search scratch, structurally identical to the
/// owning [`PlannerSession`]'s. Shards never share state — determinism of
/// the merged result is argued in `crate::mcts`'s module docs.
#[derive(Default)]
pub struct PlannerShard {
    pub feat: FeatSession,
    pub mcts: MctsScratch,
}

impl PlannerSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every cached value. Serving workers call this when the
    /// publication epoch changes under them: featurizations and search
    /// evaluation-cache entries (MCTS or beam alike) computed against the
    /// old model's weights must never score plans for the new one.
    ///
    /// The broker seat survives the reset: membership is per *run*, not
    /// per model epoch, and dropping it here would unregister the worker
    /// from the pool mid-stream (submissions carry model identity, so
    /// cross-epoch rows never fuse anyway).
    pub fn reset(&mut self) {
        let broker = self.broker.take();
        *self = Self::default();
        self.broker = broker;
    }
}

impl QPSeeker {
    /// A fresh per-thread session over this model. Equivalent to
    /// [`PlannerSession::new`]; provided on the model so worker setup reads
    /// naturally (`let mut sess = model.new_session()`).
    pub fn new_session(&self) -> PlannerSession {
        PlannerSession::new()
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PlannerSession>()
};
