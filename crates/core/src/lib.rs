//! `qpseeker-core` — the QPSeeker neural database planner (the paper's
//! primary contribution).
//!
//! Pipeline (paper Fig. 1):
//!
//! 1. [`featurize`] extracts the three query sets (relations, joins,
//!    predicates) and per-plan-node features (EXPLAIN estimates, operator
//!    one-hots, TaBERT data representations);
//! 2. [`encoder::QueryEncoder`] — MSCN-style set encoder (§4.1);
//! 3. [`encoder::PlanEncoder`] — bottom-up LSTM-cell tree encoder (§4.2);
//! 4. `QPAttention` — multi-head cross-attention between the query embedding
//!    and every plan-node output (§4.3);
//! 5. [`vae::CostModeler`] — a β-VAE that learns the joint distributions of
//!    cardinality, cost and runtime over the workload's QEPs (§4.4);
//! 6. [`mcts::MctsPlanner`] — inference-time Monte Carlo Tree Search over
//!    the plan space, scored by the learned cost model (§5.2).
//!
//! [`metrics`] provides Q-error summaries (Tables 2-5) and [`viz`] the
//! t-SNE/silhouette tooling for the latent-space analysis (Fig. 5).
//!
//! # Example
//!
//! ```no_run
//! use qpseeker_core::prelude::*;
//! use qpseeker_workloads::{synthetic, SyntheticConfig, Qep};
//!
//! let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.05, 1));
//! let workload = synthetic::generate(&db, &SyntheticConfig { n_queries: 64, seed: 1 });
//! let refs: Vec<&Qep> = workload.qeps.iter().collect();
//! let mut model = QPSeeker::new(&db, ModelConfig::small());
//! model.fit(&refs).expect("training succeeds");
//! let planner = MctsPlanner::new(MctsConfig::default());
//! let chosen = planner.plan(&model, &workload.qeps[0].query);
//! println!("{}", chosen.plan.pretty());
//! ```

pub mod checkpoint;
pub mod config;
pub mod durable;
pub mod encoder;
pub mod error;
pub mod evalbroker;
pub mod experience;
pub mod featurize;
pub(crate) mod fnv;
pub mod metrics;
pub mod model;
pub mod normalize;
pub mod online;
pub mod plancache;
pub mod registry;
pub mod search;
pub mod serve;
pub mod session;
pub mod tenant;
pub mod vae;
pub mod viz;

// The left-deep MCTS planner predates the strategy layer; keep its
// historical `crate::mcts` path as an alias of `crate::search::mcts`.
pub use search::mcts;

/// Convenient glob import.
pub mod prelude {
    pub use crate::checkpoint::Checkpoint;
    pub use crate::config::ModelConfig;
    pub use crate::durable::{fsync_dir, write_atomic, RecoveredSnapshot, SnapshotStore};
    pub use crate::error::CoreError;
    pub use crate::evalbroker::{BrokerConfig, BrokerStats, EvalBroker, ROUND_TICK_US};
    pub use crate::experience::{ExperienceDisposition, ExperienceRecord, ExperienceWal};
    pub use crate::featurize::{FeatNode, FeatSession, FeaturizedQep, Featurizer, QueryFeatures};
    pub use crate::mcts::{Action, MctsConfig, MctsPlanner, MctsResult, MctsScratch};
    pub use crate::metrics::{q_error, OnlineCounters, QErrorSummary, ServeCounters};
    pub use crate::model::{
        PlannerModel, Prediction, QPSeeker, QueryContext, TrainReport, TrainSnapshot,
    };
    pub use crate::normalize::TargetNormalizer;
    pub use crate::online::{BatchReport, OnlineConfig, OnlinePlanner, PromotionDecision};
    pub use crate::plancache::{
        query_fingerprint, CacheStats, CachedPlan, PlanCache, PlanCacheCtx,
    };
    pub use crate::registry::{
        ModelCell, ModelRegistry, RegressionMonitor, SwapVerdict, TenantHandle,
    };
    pub use crate::search::beam::{BeamConfig, BeamPlanner, BeamScratch};
    pub use crate::search::strategy::{
        RiskParams, SearchStrategy, StrategyConfig, StrategyKind, StrategyPlanner,
    };
    pub use crate::serve::{
        plan_with_fallback, BreakerState, CircuitBreaker, Disposition, FallbackReason,
        QueryRequest, ServeConfig, ServeResult, ServedBy, ShedReason, SupervisedOutcome,
        Supervisor, SupervisorConfig,
    };
    pub use crate::session::{PlannerSession, SearchScratch};
    pub use crate::tenant::{
        MultiTenantConfig, MultiTenantSupervisor, TenantOutcome, TenantRequest, TenantSpec,
    };
    pub use crate::viz::{silhouette, tsne, TsneConfig};
}
