//! Cross-request continuous batching: a shared candidate-eval broker.
//!
//! Every serving worker scores candidate plans in tiny private batches
//! (`batch_eval` rollouts, beam completions, risk-sample blocks), which
//! leaves the wide GEMM tiles of the fused kernels mostly empty under
//! concurrent load. The [`EvalBroker`] is a shared scoring service: worker
//! sessions — across a whole [`crate::serve::Supervisor`] pool, and across
//! every tenant lane of a [`crate::tenant::MultiTenantSupervisor`] — submit
//! their candidate batches to the broker, which packs congruent-shape rows
//! from *different* requests into one large fused forward pass.
//!
//! # Why fusing is plan-safe
//!
//! The batched forward is **row-wise bitwise equal** to scalar scoring
//! (see [`crate::model::QPSeeker::predict_batch_with_context_in`] and the
//! per-row FP reduction-order contract in `qpseeker_nn`), so batch
//! composition cannot change any score, and therefore cannot change any
//! plan. Broker-on serving is bitwise identical to broker-off serving by
//! construction — the broker moves *where* a forward runs, never *what* it
//! computes, and [`EvalBroker::submit`] is synchronous, so it also never
//! moves *when* a result is observed by the search.
//!
//! # Determinism of batch composition
//!
//! Counters (fused batches, occupancy, flush reasons) must also be
//! schedule-independent. Three rules make the broker's behaviour a pure
//! function of its inputs:
//!
//! 1. **Static membership.** Every member is registered up front, before
//!    any worker thread starts, and stays live until its run completes
//!    (members retire through a `Drop` guard, so a panic cannot leak
//!    liveness). With the supervisor's static round-robin job partition,
//!    each member's *sequence* of submissions is deterministic.
//! 2. **Rounds as global sequence points.** A flush round fires exactly
//!    when every live member is either parked inside [`submit`] or done —
//!    the transition into that state is serialized under the broker lock,
//!    and the pending set at that point is `{next submission of each
//!    unreleased live member}`, an invariant of the partial order rather
//!    than of the thread schedule. Members computing locally (featurizing,
//!    expanding the search tree, serving a cache hit) are neither parked
//!    nor done; rounds simply wait for them, and since all such work
//!    terminates there is no deadlock.
//! 3. **Deterministic flush policy.** At each round, buckets at or above
//!    `batch_target` rows flush (reason *size*); smaller buckets are held
//!    up to `batch_window_us / ROUND_TICK_US` rounds — the virtual
//!    micro-batch window — then flush (reason *deadline*). If nothing else
//!    flushed, the oldest bucket flushes so every round releases at least
//!    one member (forced progress, counted as a deadline flush). Ties
//!    break on `(birth round, lowest member id)` — never on arrival order.
//!
//! [`submit`]: EvalBroker::submit
//!
//! # Congruence bucketing
//!
//! Rows only fuse when the plan-encoder can run them as one batch: same
//! model (same epoch — hot-swapped models never share a bucket), same
//! scoring kind (mean vs `S`-sample risk), same recursive tree shape.
//! Submissions are bucketed by a recursive shape signature of their first
//! plan; the executor re-verifies congruence row by row and splits into
//! per-shape fused runs, so a signature collision degrades to smaller
//! batches instead of a wrong answer.
//!
//! # Backpressure and fault containment
//!
//! Each member has at most one submission in flight and blocks until it is
//! answered, so total pending work is bounded by the member count — a
//! stalled submitter holds back at most the buckets it belongs to, and the
//! forced-progress rule keeps every other bucket draining. The member that
//! completes a round executes the fused forwards itself (there is no
//! broker thread); each bucket's execution runs inside a panic boundary,
//! and a panic poisons only that bucket's submissions — the affected
//! members re-raise inside their own per-attempt boundaries and burn only
//! their own retry budgets. No cross-request fate-sharing beyond the
//! batch.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::featurize::FeatNode;
use crate::model::{Prediction, QPSeeker};
use qpseeker_nn::prelude::Tensor;

/// Virtual duration of one flush round, in microseconds. The broker has no
/// real timer — rounds are its clock — so `batch_window_us` is quantized
/// to `batch_window_us / ROUND_TICK_US` hold rounds.
pub const ROUND_TICK_US: u64 = 50;

/// Micro-batch window configuration for the [`EvalBroker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// Rows at which a shape bucket flushes immediately (a *size* flush).
    pub batch_target: usize,
    /// Micro-batch deadline on the virtual round clock: a sub-target
    /// bucket is held at most `batch_window_us / ROUND_TICK_US` rounds
    /// before it flushes anyway (a *deadline* flush).
    pub batch_window_us: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self { batch_target: 64, batch_window_us: 200 }
    }
}

/// Occupancy and flush accounting, drained by the broker's owner into
/// [`crate::metrics::ServeCounters`] after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Fused forward passes executed.
    pub fused_batches: usize,
    /// Total rows across all fused passes (mean occupancy is
    /// `fused_rows / fused_batches`).
    pub fused_rows: usize,
    /// Rows in the largest single fused pass.
    pub occupancy_max: usize,
    /// Bucket flushes triggered by reaching `batch_target`.
    pub flush_size: usize,
    /// Bucket flushes triggered by the deadline window (including forced
    /// progress flushes).
    pub flush_deadline: usize,
}

impl BrokerStats {
    /// Fold these stats into a serving tally (the owner drains the broker
    /// exactly once per run, so counts never double).
    pub fn add_to(&self, c: &mut crate::metrics::ServeCounters) {
        c.fused_batches += self.fused_batches;
        c.fused_rows += self.fused_rows;
        c.fused_occupancy_max = c.fused_occupancy_max.max(self.occupancy_max);
        c.broker_flush_size += self.flush_size;
        c.broker_flush_deadline += self.flush_deadline;
    }

    /// Accumulate another drain into this one.
    pub fn merge(&mut self, other: &BrokerStats) {
        self.fused_batches += other.fused_batches;
        self.fused_rows += other.fused_rows;
        self.occupancy_max = self.occupancy_max.max(other.occupancy_max);
        self.flush_size += other.flush_size;
        self.flush_deadline += other.flush_deadline;
    }
}

/// What may share a fused forward: same model instance (pointer identity —
/// distinct epochs are distinct allocations), same scoring kind
/// (`samples == 0` is mean scoring), same first-plan tree shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct BucketKey {
    pub(crate) model: usize,
    pub(crate) samples: usize,
    pub(crate) shape_sig: u64,
}

/// One member's in-flight eval request: pre-featurized plans plus owned
/// copies of the per-query tensors the fused forward needs. Featurization
/// stays submitter-side (it uses the member's own session caches), so the
/// broker only ever runs the shape-uniform tensor pipeline.
pub(crate) struct Submission {
    pub(crate) key: BucketKey,
    /// One featurized tree per candidate plan.
    pub(crate) nodes: Vec<FeatNode>,
    /// The submitting query's embedding, `[1, qd]`.
    pub(crate) qemb: Tensor,
    /// Seeded latent draws `[samples, latent]` when risk scoring.
    pub(crate) eps: Option<Tensor>,
}

/// Result of one submission, in candidate order.
pub(crate) enum FusedOutcome {
    Mean(Vec<Prediction>),
    /// `(mean, sigma)` per candidate.
    Risk(Vec<(f64, f64)>),
    /// The fused execution of this submission's bucket panicked; the
    /// submitter re-raises with this message inside its own attempt
    /// boundary.
    Poisoned(String),
}

struct Slot {
    pending: Option<Submission>,
    outcome: Option<(FusedOutcome, Vec<FeatNode>)>,
    /// This member's private wakeup: a flush notifies exactly the members
    /// it released. A shared condvar would wake every parked member per
    /// round (a thundering herd that, on few cores, costs more in context
    /// switches than fusion saves in GEMM fixed cost).
    cv: Arc<Condvar>,
}

struct BrokerState {
    slots: Vec<Slot>,
    /// Registered members not yet retired.
    live: usize,
    /// Members parked in [`EvalBroker::submit`] whose outcome is unset.
    blocked: usize,
    /// Completed flush rounds — the broker's virtual micro-batch clock.
    round: u64,
    /// Birth round of every bucket with pending rows.
    buckets: BTreeMap<BucketKey, u64>,
    stats: BrokerStats,
}

/// The shared scoring service. Passive: there is no broker thread — the
/// member whose submit (or retire) completes a round executes that round's
/// fused forwards under the broker lock, while every other pending member
/// is parked on the condvar.
pub struct EvalBroker {
    cfg: BrokerConfig,
    hold_rounds: u64,
    state: Mutex<BrokerState>,
}

/// A registered seat on the broker. Held by one worker session at a time;
/// dropping the handle retires the seat (so a panicking worker can never
/// wedge the pool by leaking liveness). Not `Clone` — seat identity is
/// what makes the flush rounds deterministic.
pub struct BrokerMember {
    broker: Arc<EvalBroker>,
    id: usize,
}

impl Drop for BrokerMember {
    fn drop(&mut self) {
        self.broker.retire(self.id);
    }
}

impl std::fmt::Debug for BrokerMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerMember").field("id", &self.id).finish()
    }
}

impl BrokerMember {
    pub(crate) fn submit(&self, sub: Submission) -> (FusedOutcome, Vec<FeatNode>) {
        self.broker.submit(self.id, sub)
    }
}

impl EvalBroker {
    pub fn new(cfg: BrokerConfig) -> Arc<Self> {
        let hold_rounds = (cfg.batch_window_us / ROUND_TICK_US).max(1);
        Arc::new(Self {
            cfg,
            hold_rounds,
            state: Mutex::new(BrokerState {
                slots: Vec::new(),
                live: 0,
                blocked: 0,
                round: 0,
                buckets: BTreeMap::new(),
                stats: BrokerStats::default(),
            }),
        })
    }

    /// Register `n` member seats. Must be called for *every* participating
    /// worker before any of them starts planning — dynamic registration
    /// would make round membership depend on thread scheduling.
    pub fn register_members(self: &Arc<Self>, n: usize) -> Vec<BrokerMember> {
        let mut st = self.lock();
        debug_assert_eq!(st.blocked, 0, "register members before workers start");
        let base = st.slots.len();
        st.slots.extend((0..n).map(|_| Slot {
            pending: None,
            outcome: None,
            cv: Arc::new(Condvar::new()),
        }));
        st.live += n;
        drop(st);
        (0..n).map(|i| BrokerMember { broker: Arc::clone(self), id: base + i }).collect()
    }

    /// Drain the accumulated occupancy/flush stats.
    pub fn take_stats(&self) -> BrokerStats {
        std::mem::take(&mut self.lock().stats)
    }

    fn lock(&self) -> MutexGuard<'_, BrokerState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn submit(&self, id: usize, sub: Submission) -> (FusedOutcome, Vec<FeatNode>) {
        let mut st = self.lock();
        debug_assert!(st.slots[id].pending.is_none() && st.slots[id].outcome.is_none());
        let round = st.round;
        st.buckets.entry(sub.key).or_insert(round);
        st.slots[id].pending = Some(sub);
        st.blocked += 1;
        // This submit may be the transition into "every live member is
        // parked or done" — if so, this member leads the round.
        if st.blocked == st.live {
            self.run_round(&mut st);
        }
        let cv = Arc::clone(&st.slots[id].cv);
        while st.slots[id].outcome.is_none() {
            st = match cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let (outcome, nodes) = st.slots[id].outcome.take().expect("checked above");
        drop(st);
        (outcome, nodes)
    }

    fn retire(&self, id: usize) {
        let mut st = self.lock();
        debug_assert!(st.slots[id].pending.is_none(), "retired mid-submit");
        st.live -= 1;
        // Retirement can complete the round condition for the remaining
        // members; the departing member leads that round on its way out.
        if st.live > 0 && st.blocked == st.live {
            self.run_round(&mut st);
        }
    }

    /// One flush round: decide which buckets flush, execute their fused
    /// forwards, release their submitters. Runs with the broker lock held —
    /// every pending member is parked on the condvar, so nothing else can
    /// touch the state, and released members only resume once we notify.
    fn run_round(&self, st: &mut BrokerState) {
        st.round += 1;
        // Pending rows and lowest member id per bucket, in key order.
        let mut pending: BTreeMap<BucketKey, (usize, usize)> = BTreeMap::new();
        for (id, slot) in st.slots.iter().enumerate() {
            if let Some(sub) = &slot.pending {
                let e = pending.entry(sub.key).or_insert((0, id));
                e.0 += sub.nodes.len();
            }
        }
        debug_assert!(!pending.is_empty(), "round fired with no pending work");
        let mut to_flush: Vec<(u64, usize, BucketKey, FlushReason)> = Vec::new();
        for (&key, &(rows, min_id)) in &pending {
            let birth = st.buckets[&key];
            if rows >= self.cfg.batch_target {
                to_flush.push((birth, min_id, key, FlushReason::Size));
            } else if st.round - birth >= self.hold_rounds {
                to_flush.push((birth, min_id, key, FlushReason::Deadline));
            }
        }
        if to_flush.is_empty() {
            // Forced progress: nothing is ripe, but every live member is
            // waiting — flush the oldest bucket (lowest member id breaks
            // ties) so the round always releases someone.
            let (&key, &(_, min_id)) = pending
                .iter()
                .min_by_key(|(key, (_, min_id))| (st.buckets[*key], *min_id, **key))
                .expect("pending non-empty");
            to_flush.push((st.buckets[&key], min_id, key, FlushReason::Deadline));
        }
        // Deterministic execution order: oldest bucket first.
        to_flush.sort_unstable();
        for (_, _, key, reason) in to_flush {
            self.flush_bucket(st, key, reason);
        }
    }

    fn flush_bucket(&self, st: &mut BrokerState, key: BucketKey, reason: FlushReason) {
        let mut ids = Vec::new();
        let mut subs = Vec::new();
        for (id, slot) in st.slots.iter_mut().enumerate() {
            if slot.pending.as_ref().is_some_and(|s| s.key == key) {
                ids.push(id);
                subs.push(slot.pending.take().expect("checked above"));
            }
        }
        st.buckets.remove(&key);
        match reason {
            FlushReason::Size => st.stats.flush_size += 1,
            FlushReason::Deadline => st.stats.flush_deadline += 1,
        }
        // SAFETY: `key.model` was captured from a `&QPSeeker` inside
        // `broker_predict_*`, whose caller is — for every submission in
        // this bucket — still parked inside `submit` and holds that borrow
        // across the park. The model therefore outlives this flush. A
        // pointer (not a lifetime) is used because different workers pin
        // the model through per-request `Arc`s with no common lifetime.
        let model = unsafe { &*(key.model as *const QPSeeker) };
        let fused = catch_unwind(AssertUnwindSafe(|| model.fused_eval(&subs)));
        match fused {
            Ok((outcomes, forwards)) => {
                for rows in forwards {
                    st.stats.fused_batches += 1;
                    st.stats.fused_rows += rows;
                    st.stats.occupancy_max = st.stats.occupancy_max.max(rows);
                }
                for ((id, outcome), sub) in ids.iter().zip(outcomes).zip(subs) {
                    st.slots[*id].outcome = Some((outcome, sub.nodes));
                }
            }
            Err(payload) => {
                // Poison exactly this bucket's submissions; each affected
                // member re-raises inside its own attempt boundary.
                let msg = crate::error::panic_message(payload);
                for (id, sub) in ids.iter().zip(subs) {
                    st.slots[*id].outcome = Some((FusedOutcome::Poisoned(msg.clone()), sub.nodes));
                }
            }
        }
        st.blocked -= ids.len();
        for id in &ids {
            st.slots[*id].cv.notify_one();
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FlushReason {
    Size,
    Deadline,
}

/// Recursive tree-shape signature matching the plan encoder's congruence
/// requirement exactly: child counts (preorder), middle-segment widths, and
/// leaf-estimate presence. Plans with equal signatures batch into one
/// encoder run (modulo hash collisions, which the executor re-verifies).
pub(crate) fn shape_sig(node: &FeatNode) -> u64 {
    fn step(h: &mut u64, v: u64) {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn walk(n: &FeatNode, h: &mut u64) {
        step(h, n.children.len() as u64 + 1);
        step(h, n.mid.cols() as u64);
        step(h, u64::from(n.leaf_est.is_some()));
        for c in &n.children {
            walk(c, h);
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    walk(node, &mut h);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::featurize::FeatSession;
    use proptest::prelude::*;
    use qpseeker_engine::inject::LeftDeepSpec;
    use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
    use qpseeker_engine::query::{ColRef, JoinPred, Query, RelRef};
    use qpseeker_storage::Database;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
    use std::sync::OnceLock;

    fn shared_db() -> &'static Arc<Database> {
        static DB: OnceLock<Arc<Database>> = OnceLock::new();
        DB.get_or_init(|| Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2)))
    }

    fn shared_model() -> &'static QPSeeker {
        static MODEL: OnceLock<QPSeeker> = OnceLock::new();
        MODEL.get_or_init(|| {
            let db = shared_db();
            let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
            let refs: Vec<&Qep> = w.qeps.iter().collect();
            let mut model = QPSeeker::new(db, ModelConfig::small());
            model.fit(&refs).expect("training succeeds");
            model
        })
    }

    /// A 3-relation star over the IMDb FK schema (all its left-deep plans
    /// are shape-congruent, so they may share a fused forward).
    fn star_query(id: &str) -> Query {
        let mut q = Query::new(id);
        for t in ["title", "movie_info", "movie_keyword"] {
            q.relations.push(RelRef::new(t));
        }
        for t in ["movie_info", "movie_keyword"] {
            q.joins.push(JoinPred {
                left: ColRef::new(t, "movie_id"),
                right: ColRef::new("title", "id"),
            });
        }
        q
    }

    const ORDERS: [[&str; 3]; 4] = [
        ["title", "movie_info", "movie_keyword"],
        ["title", "movie_keyword", "movie_info"],
        ["movie_info", "title", "movie_keyword"],
        ["movie_keyword", "title", "movie_info"],
    ];

    fn plan_strategy() -> impl Strategy<Value = LeftDeepSpec> {
        (
            0usize..ORDERS.len(),
            proptest::collection::vec(0usize..ScanOp::ALL.len(), 3),
            proptest::collection::vec(0usize..JoinOp::ALL.len(), 2),
        )
            .prop_map(|(ord, scans, joins)| LeftDeepSpec {
                scans: ORDERS[ord]
                    .iter()
                    .zip(&scans)
                    .map(|(rel, &s)| (rel.to_string(), ScanOp::ALL[s]))
                    .collect(),
                joins: joins.iter().map(|&j| JoinOp::ALL[j]).collect(),
            })
    }

    /// Fuse `chunks` through one broker, each chunk submitted by its own
    /// member thread, and return the predictions in chunk order.
    fn fuse_chunks(
        model: &QPSeeker,
        query: &Query,
        chunks: Vec<Vec<PlanNode>>,
        cfg: BrokerConfig,
    ) -> (Vec<Vec<Prediction>>, BrokerStats) {
        let broker = EvalBroker::new(cfg);
        let members = broker.register_members(chunks.len());
        let preds: Vec<Vec<Prediction>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .zip(members)
                .map(|(chunk, member)| {
                    s.spawn(move || {
                        let mut feat = FeatSession::default();
                        let mut ctx = model.query_context(query);
                        assert!(ctx.fast, "test model must take the fast inference path");
                        let refs: Vec<&PlanNode> = chunk.iter().collect();
                        let mut out = Vec::new();
                        model.broker_predict_batch_in(
                            &member, &mut feat, query, &refs, &mut ctx, &mut out,
                        );
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("member thread")).collect()
        });
        (preds, broker.take_stats())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Any partition of a congruent eval set into member submissions,
        /// fused through the broker, equals per-plan scalar scoring bit for
        /// bit — the invariant that makes broker-on serving plan-identical
        /// to broker-off.
        #[test]
        fn any_partition_fuses_bitwise_equal_to_scalar(
            specs in proptest::collection::vec(plan_strategy(), 2..16),
            assign in proptest::collection::vec(0usize..4, 16),
            target in 1usize..64,
        ) {
            let model = shared_model();
            let query = star_query("broker-partition");
            let plans: Vec<PlanNode> = specs
                .iter()
                .map(|s| s.compile(&query).expect("valid left-deep spec"))
                .collect();
            // Partition the pool over up to 4 members; empty chunks are
            // legal (those members retire without submitting).
            let mut chunks: Vec<Vec<PlanNode>> = vec![Vec::new(); 4];
            for (i, plan) in plans.iter().enumerate() {
                chunks[assign[i]].push(plan.clone());
            }
            let cfg = BrokerConfig { batch_target: target, batch_window_us: 200 };
            let (fused, stats) = fuse_chunks(model, &query, chunks.clone(), cfg);
            prop_assert!(stats.fused_rows == plans.len(), "every row scored exactly once");
            let mut ctx = model.query_context(&query);
            for (chunk, preds) in chunks.iter().zip(&fused) {
                prop_assert_eq!(chunk.len(), preds.len());
                for (plan, fused_p) in chunk.iter().zip(preds) {
                    let scalar = model.predict_with_context(&query, plan, &mut ctx);
                    prop_assert_eq!(fused_p.runtime_ms.to_bits(), scalar.runtime_ms.to_bits());
                    prop_assert_eq!(fused_p.cost.to_bits(), scalar.cost.to_bits());
                    prop_assert_eq!(fused_p.cardinality.to_bits(), scalar.cardinality.to_bits());
                }
            }
        }
    }

    /// Submissions from *different queries* fuse into one forward pass when
    /// their plans are shape-congruent — the cross-request case the broker
    /// exists for — and still score bitwise equal to per-query scalar runs.
    #[test]
    fn cross_query_submissions_fuse_into_one_forward() {
        let model = shared_model();
        let qa = star_query("broker-cross-a");
        let qb = star_query("broker-cross-b");
        let mk = |q: &Query, ord: usize| -> Vec<PlanNode> {
            ORDERS
                .iter()
                .cycle()
                .skip(ord)
                .take(3)
                .map(|o| {
                    LeftDeepSpec {
                        scans: o.iter().map(|r| (r.to_string(), ScanOp::SeqScan)).collect(),
                        joins: vec![JoinOp::HashJoin, JoinOp::HashJoin],
                    }
                    .compile(q)
                    .expect("valid spec")
                })
                .collect()
        };
        let (plans_a, plans_b) = (mk(&qa, 0), mk(&qb, 1));

        let broker = EvalBroker::new(BrokerConfig { batch_target: 6, batch_window_us: 200 });
        let members = broker.register_members(2);
        let work = vec![(&qa, &plans_a), (&qb, &plans_b)];
        let fused: Vec<Vec<Prediction>> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .into_iter()
                .zip(members)
                .map(|((query, plans), member)| {
                    s.spawn(move || {
                        let mut feat = FeatSession::default();
                        let mut ctx = model.query_context(query);
                        let refs: Vec<&PlanNode> = plans.iter().collect();
                        let mut out = Vec::new();
                        model.broker_predict_batch_in(
                            &member, &mut feat, query, &refs, &mut ctx, &mut out,
                        );
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("member thread")).collect()
        });
        let stats = broker.take_stats();
        assert_eq!(stats.fused_batches, 1, "congruent cross-query rows share one forward");
        assert_eq!(stats.fused_rows, 6);
        assert_eq!(stats.occupancy_max, 6);
        assert_eq!(stats.flush_size, 1, "6 rows met the size target of 6");
        for (query, plans, preds) in [(&qa, &plans_a, &fused[0]), (&qb, &plans_b, &fused[1])] {
            let mut ctx = model.query_context(query);
            for (plan, fused_p) in plans.iter().zip(preds.iter()) {
                let scalar = model.predict_with_context(query, plan, &mut ctx);
                assert_eq!(fused_p.runtime_ms.to_bits(), scalar.runtime_ms.to_bits());
            }
        }
    }

    /// Risk submissions ([S, latent] eps blocks) fuse in their own buckets
    /// and return (mean, sigma) pairs bitwise equal to the per-session
    /// sampled path; a concurrent mean submission never lands in the risk
    /// bucket.
    #[test]
    fn risk_and_mean_submissions_bucket_separately_and_match_scalar() {
        let model = shared_model();
        let query = star_query("broker-risk");
        let plans: Vec<PlanNode> = ORDERS
            .iter()
            .map(|o| {
                LeftDeepSpec {
                    scans: o.iter().map(|r| (r.to_string(), ScanOp::SeqScan)).collect(),
                    joins: vec![JoinOp::HashJoin, JoinOp::HashJoin],
                }
                .compile(&query)
                .expect("valid spec")
            })
            .collect();
        let eps = model.risk_eps(4, 0x5eed);

        let broker = EvalBroker::new(BrokerConfig::default());
        let mut members = broker.register_members(2);
        let (risk_member, mean_member) = (members.remove(0), members.remove(0));
        // The seats move *into* their threads: a finished submitter must
        // retire so the round condition can complete for the one still
        // parked (holding a seat open outside the scope would wedge it).
        let (q, ps, e) = (&query, &plans, &eps);
        let (risk_fused, mean_fused) = std::thread::scope(|s| {
            let rh = s.spawn(move || {
                let mut feat = FeatSession::default();
                let mut ctx = model.query_context(q);
                let refs: Vec<&PlanNode> = ps.iter().collect();
                let mut out = Vec::new();
                model.broker_predict_risk_batch_in(
                    &risk_member,
                    &mut feat,
                    q,
                    &refs,
                    &mut ctx,
                    e,
                    &mut out,
                );
                out
            });
            let mh = s.spawn(move || {
                let mut feat = FeatSession::default();
                let mut ctx = model.query_context(q);
                let refs: Vec<&PlanNode> = ps.iter().collect();
                let mut out = Vec::new();
                model.broker_predict_batch_in(
                    &mean_member,
                    &mut feat,
                    q,
                    &refs,
                    &mut ctx,
                    &mut out,
                );
                out
            });
            (rh.join().expect("risk member"), mh.join().expect("mean member"))
        });
        let stats = broker.take_stats();
        assert_eq!(stats.fused_batches, 2, "risk and mean kinds never share a fused pass");
        assert_eq!(stats.fused_rows, plans.len() * 2);

        let mut feat = FeatSession::default();
        let mut ctx = model.query_context(&query);
        let refs: Vec<&PlanNode> = plans.iter().collect();
        let mut scalar_risk = Vec::new();
        model.predict_risk_batch_with_context_in(
            &mut feat,
            &query,
            &refs,
            &mut ctx,
            &eps,
            &mut scalar_risk,
        );
        for ((fm, fs), (sm, ss)) in risk_fused.iter().zip(&scalar_risk) {
            assert_eq!(fm.to_bits(), sm.to_bits(), "fused risk mean matches sampled path");
            assert_eq!(fs.to_bits(), ss.to_bits(), "fused risk sigma matches sampled path");
        }
        let mut scalar_mean = Vec::new();
        model.predict_batch_with_context_in(&mut feat, &query, &refs, &mut ctx, &mut scalar_mean);
        for (f, sc) in mean_fused.iter().zip(&scalar_mean) {
            assert_eq!(f.runtime_ms.to_bits(), sc.runtime_ms.to_bits());
        }
    }

    /// A single-member broker degenerates to per-submission forced flushes:
    /// still correct, every flush counted as a deadline flush.
    #[test]
    fn single_member_forces_progress_every_submission() {
        let model = shared_model();
        let query = star_query("broker-solo");
        let plan = LeftDeepSpec {
            scans: ORDERS[0].iter().map(|r| (r.to_string(), ScanOp::SeqScan)).collect(),
            joins: vec![JoinOp::HashJoin, JoinOp::HashJoin],
        }
        .compile(&query)
        .expect("valid spec");

        let broker = EvalBroker::new(BrokerConfig { batch_target: 64, batch_window_us: 200 });
        let member = broker.register_members(1).pop().expect("one seat");
        let mut feat = FeatSession::default();
        let mut ctx = model.query_context(&query);
        let mut out = Vec::new();
        for _ in 0..3 {
            model.broker_predict_batch_in(&member, &mut feat, &query, &[&plan], &mut ctx, &mut out);
            assert_eq!(out.len(), 1);
            let scalar = model.predict_with_context(&query, &plan, &mut ctx);
            assert_eq!(out[0].runtime_ms.to_bits(), scalar.runtime_ms.to_bits());
        }
        drop(member);
        let stats = broker.take_stats();
        assert_eq!(stats.fused_batches, 3);
        assert_eq!(stats.flush_deadline, 3, "sub-target solo flushes are forced progress");
        assert_eq!(stats.flush_size, 0);
        assert_eq!(stats.occupancy_max, 1);
    }
}
