//! Model checkpointing: serialize a trained QPSeeker to JSON and restore it
//! against the same database schema.
//!
//! A checkpoint stores the configuration, every parameter tensor, and the
//! fitted target normalizer. Restoration re-derives the architecture from
//! the config (parameter registration order is deterministic), then swaps in
//! the saved weights — so a checkpoint is only valid for a database with the
//! same catalog dimensions (relation/join vocabulary sizes).
//!
//! On disk a checkpoint is a versioned envelope
//! `{"version": 1, "checksum": "<fnv64 hex>", "payload": {…}}`; the checksum
//! covers the canonical serialization of the payload, so truncated or
//! bit-flipped checkpoint files are rejected at load with
//! [`CoreError::CheckpointCorrupted`] instead of restoring garbage weights.

use crate::config::ModelConfig;
use crate::error::CoreError;
use crate::model::QPSeeker;
use crate::normalize::TargetNormalizer;
use qpseeker_nn::params::ParamStore;
use qpseeker_storage::Database;
use serde::{Deserialize, Serialize};

/// Envelope format version this build reads and writes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// FNV-1a over the payload text exactly as it appears in the envelope.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Extract the raw payload substring from an envelope produced by
/// [`Checkpoint::to_json`]: everything after the `"payload":` key up to the
/// envelope's closing brace. Checksumming the raw bytes (rather than a
/// parsed re-serialization) means even flips that survive float rounding
/// are caught.
fn raw_payload(envelope: &str) -> Result<&str, CoreError> {
    const KEY: &str = "\"payload\":";
    let start = envelope
        .find(KEY)
        .ok_or_else(|| CoreError::CheckpointMalformed("missing payload field".into()))?
        + KEY.len();
    let end = envelope
        .rfind('}')
        .filter(|&e| e > start)
        .ok_or_else(|| CoreError::CheckpointMalformed("unterminated envelope".into()))?;
    Ok(&envelope[start..end])
}

/// Serialized model state.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub config: ModelConfig,
    pub normalizer: Option<TargetNormalizer>,
    pub store: ParamStore,
    /// Catalog fingerprint: (num_tables, num_joins) at save time.
    pub schema_dims: (usize, usize),
}

impl Checkpoint {
    /// Capture a model's state.
    pub fn capture(model: &QPSeeker<'_>, db: &Database) -> Self {
        Self {
            config: model.config.clone(),
            normalizer: model.normalizer.clone(),
            store: model.store.clone(),
            schema_dims: (db.catalog.num_tables(), db.catalog.num_joins()),
        }
    }

    /// Serialize to the versioned, checksummed envelope format.
    pub fn to_json(&self) -> Result<String, CoreError> {
        let payload = serde_json::to_string(self)?;
        let checksum = fnv64(&payload);
        Ok(format!(
            "{{\"version\":{CHECKPOINT_VERSION},\"checksum\":\"{checksum:016x}\",\"payload\":{payload}}}"
        ))
    }

    /// Parse an envelope, verifying the format version and the payload
    /// checksum before deserializing any model state.
    ///
    /// # Errors
    /// [`CoreError::CheckpointMalformed`] for unparseable input or a missing
    /// envelope field, [`CoreError::CheckpointVersion`] for a version this
    /// build does not read, [`CoreError::CheckpointCorrupted`] when the
    /// payload does not match its recorded checksum (truncation, bit-rot).
    pub fn from_json(s: &str) -> Result<Self, CoreError> {
        let envelope: serde_json::Value = serde_json::from_str(s)?;
        let version = envelope
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| CoreError::CheckpointMalformed("missing version field".into()))?;
        if version != CHECKPOINT_VERSION {
            return Err(CoreError::CheckpointVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let expected = envelope
            .get("checksum")
            .and_then(|v| v.as_str())
            .ok_or_else(|| CoreError::CheckpointMalformed("missing checksum field".into()))?
            .to_string();
        envelope
            .get("payload")
            .ok_or_else(|| CoreError::CheckpointMalformed("missing payload field".into()))?;
        let payload = raw_payload(s)?;
        let actual = format!("{:016x}", fnv64(payload));
        if actual != expected {
            return Err(CoreError::CheckpointCorrupted { expected, actual });
        }
        serde_json::from_str(payload).map_err(CoreError::from)
    }

    /// Restore a model bound to `db`.
    ///
    /// # Errors
    /// Fails when the database's catalog dimensions differ from the ones the
    /// checkpoint was trained against, or the rebuilt architecture cannot
    /// hold the saved parameters.
    pub fn restore<'a>(self, db: &'a Database) -> Result<QPSeeker<'a>, CoreError> {
        let dims = (db.catalog.num_tables(), db.catalog.num_joins());
        if dims != self.schema_dims {
            return Err(CoreError::SchemaMismatch { expected: self.schema_dims, found: dims });
        }
        let mut model = QPSeeker::new(db, self.config);
        if model.store.len() != self.store.len()
            || model.store.num_scalars() != self.store.num_scalars()
        {
            return Err(CoreError::ParamLayout {
                built_params: model.store.len(),
                built_scalars: model.store.num_scalars(),
                saved_params: self.store.len(),
                saved_scalars: self.store.num_scalars(),
            });
        }
        model.store = self.store;
        model.normalizer = self.normalizer;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    #[test]
    fn save_restore_round_trip_preserves_predictions() {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 15, seed: 2 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs);
        let before = model.predict(&w.qeps[0].query, &w.qeps[0].plan);

        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap();
        let model2 = restored.restore(&db).unwrap();
        let after = model2.predict(&w.qeps[0].query, &w.qeps[0].plan);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn restore_rejects_mismatched_schema() {
        let imdb = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let stack = qpseeker_storage::datagen::stack::generate(0.04, 2);
        let w = synthetic::generate(&imdb, &SyntheticConfig { n_queries: 8, seed: 2 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&imdb, ModelConfig::small());
        model.fit(&refs);
        let ckpt = Checkpoint::capture(&model, &imdb);
        let err = match ckpt.restore(&stack) {
            Ok(_) => panic!("restore against a different schema must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, CoreError::SchemaMismatch { .. }));
        assert!(err.to_string().contains("schema mismatch"));
    }

    #[test]
    fn unfitted_model_round_trips_too() {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap().restore(&db).unwrap();
        assert!(restored.normalizer.is_none());
        assert_eq!(restored.num_parameters(), model.num_parameters());
    }

    #[test]
    fn bit_flipped_checkpoint_rejected() {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        // Flip one digit inside the payload (keep the JSON well-formed).
        let pos = json
            .char_indices()
            .skip(json.find("payload").unwrap())
            .find(|(_, c)| ('1'..='8').contains(c))
            .map(|(i, _)| i)
            .expect("payload contains a digit");
        let mut bytes = json.into_bytes();
        bytes[pos] += 1;
        let tampered = String::from_utf8(bytes).unwrap();
        let err =
            Checkpoint::from_json(&tampered).err().expect("tampered checkpoint must be rejected");
        assert!(
            matches!(err, CoreError::CheckpointCorrupted { .. }),
            "expected corruption error, got: {err}"
        );
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        let truncated = &json[..json.len() / 2];
        let err =
            Checkpoint::from_json(truncated).err().expect("truncated checkpoint must be rejected");
        assert!(
            matches!(err, CoreError::CheckpointMalformed(_)),
            "expected malformed error, got: {err}"
        );
    }

    #[test]
    fn future_version_rejected() {
        let err = Checkpoint::from_json(r#"{"version":99,"checksum":"00","payload":{}}"#)
            .err()
            .expect("future version must be rejected");
        assert!(matches!(err, CoreError::CheckpointVersion { found: 99, .. }), "{err}");
    }
}
