//! Model checkpointing: serialize a trained QPSeeker to JSON and restore it
//! against the same database schema.
//!
//! A checkpoint stores the configuration, every parameter tensor, and the
//! fitted target normalizer. Restoration re-derives the architecture from
//! the config (parameter registration order is deterministic), then swaps in
//! the saved weights — so a checkpoint is only valid for a database with the
//! same catalog dimensions (relation/join vocabulary sizes).
//!
//! On disk a checkpoint is a versioned envelope
//! `{"version": 1, "checksum": "<fnv64 hex>", "payload": {…}}`; the checksum
//! covers the canonical serialization of the payload, so truncated or
//! bit-flipped checkpoint files are rejected at load with
//! [`CoreError::CheckpointCorrupted`] instead of restoring garbage weights.

use crate::config::ModelConfig;
use crate::durable;
use crate::error::CoreError;
use crate::model::QPSeeker;
use crate::normalize::TargetNormalizer;
use qpseeker_nn::params::ParamStore;
use qpseeker_storage::Database;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Envelope format version this build reads and writes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Serialized model state.
#[derive(Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub config: ModelConfig,
    pub normalizer: Option<TargetNormalizer>,
    pub store: ParamStore,
    /// Catalog fingerprint: (num_tables, num_joins) at save time.
    pub schema_dims: (usize, usize),
}

impl Checkpoint {
    /// Capture a model's state.
    pub fn capture(model: &QPSeeker, db: &Database) -> Self {
        Self {
            config: model.config.clone(),
            normalizer: model.normalizer.clone(),
            store: model.store.clone(),
            schema_dims: (db.catalog.num_tables(), db.catalog.num_joins()),
        }
    }

    /// Serialize to the versioned, checksummed envelope format (shared with
    /// the training-snapshot path in [`crate::durable`]).
    pub fn to_json(&self) -> Result<String, CoreError> {
        let payload = serde_json::to_string(self)?;
        Ok(durable::seal_envelope(&payload, CHECKPOINT_VERSION))
    }

    /// Parse an envelope, verifying the format version and the payload
    /// checksum before deserializing any model state.
    ///
    /// # Errors
    /// [`CoreError::CheckpointMalformed`] for unparseable input or a missing
    /// envelope field, [`CoreError::CheckpointVersion`] for a version this
    /// build does not read, [`CoreError::CheckpointCorrupted`] when the
    /// payload does not match its recorded checksum (truncation, bit-rot).
    pub fn from_json(s: &str) -> Result<Self, CoreError> {
        let payload = durable::open_envelope(s, CHECKPOINT_VERSION)?;
        serde_json::from_str(payload).map_err(CoreError::from)
    }

    /// Restore a model bound to `db`.
    ///
    /// # Errors
    /// Fails when the database's catalog dimensions differ from the ones the
    /// checkpoint was trained against, or the rebuilt architecture cannot
    /// hold the saved parameters.
    pub fn restore(self, db: &Arc<Database>) -> Result<QPSeeker, CoreError> {
        let dims = (db.catalog.num_tables(), db.catalog.num_joins());
        if dims != self.schema_dims {
            return Err(CoreError::SchemaMismatch { expected: self.schema_dims, found: dims });
        }
        let mut model = QPSeeker::new(db, self.config);
        if model.store.len() != self.store.len()
            || model.store.num_scalars() != self.store.num_scalars()
        {
            return Err(CoreError::ParamLayout {
                built_params: model.store.len(),
                built_scalars: model.store.num_scalars(),
                saved_params: self.store.len(),
                saved_scalars: self.store.num_scalars(),
            });
        }
        model.store = self.store;
        model.normalizer = self.normalizer;
        // Pack weight panels now so serving never pays for it mid-query.
        model.store.warm_packed();
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    #[test]
    fn save_restore_round_trip_preserves_predictions() {
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 15, seed: 2 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        let before = model.predict(&w.qeps[0].query, &w.qeps[0].plan);

        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap();
        let model2 = restored.restore(&db).unwrap();
        let after = model2.predict(&w.qeps[0].query, &w.qeps[0].plan);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn restore_rejects_mismatched_schema() {
        let imdb = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let stack = Arc::new(qpseeker_storage::datagen::stack::generate(0.04, 2));
        let w = synthetic::generate(&imdb, &SyntheticConfig { n_queries: 8, seed: 2 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&imdb, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        let ckpt = Checkpoint::capture(&model, &imdb);
        let err = match ckpt.restore(&stack) {
            Ok(_) => panic!("restore against a different schema must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, CoreError::SchemaMismatch { .. }));
        assert!(err.to_string().contains("schema mismatch"));
    }

    #[test]
    fn unfitted_model_round_trips_too() {
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        let restored = Checkpoint::from_json(&json).unwrap().restore(&db).unwrap();
        assert!(restored.normalizer.is_none());
        assert_eq!(restored.num_parameters(), model.num_parameters());
    }

    #[test]
    fn bit_flipped_checkpoint_rejected() {
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        // Flip one digit inside the payload (keep the JSON well-formed).
        let pos = json
            .char_indices()
            .skip(json.find("payload").unwrap())
            .find(|(_, c)| ('1'..='8').contains(c))
            .map(|(i, _)| i)
            .expect("payload contains a digit");
        let mut bytes = json.into_bytes();
        bytes[pos] += 1;
        let tampered = String::from_utf8(bytes).unwrap();
        let err =
            Checkpoint::from_json(&tampered).err().expect("tampered checkpoint must be rejected");
        assert!(
            matches!(err, CoreError::CheckpointCorrupted { .. }),
            "expected corruption error, got: {err}"
        );
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json().unwrap();
        let truncated = &json[..json.len() / 2];
        let err =
            Checkpoint::from_json(truncated).err().expect("truncated checkpoint must be rejected");
        assert!(
            matches!(err, CoreError::CheckpointMalformed(_)),
            "expected malformed error, got: {err}"
        );
    }

    #[test]
    fn future_version_rejected() {
        let err = Checkpoint::from_json(r#"{"version":99,"checksum":"00","payload":{}}"#)
            .err()
            .expect("future version must be rejected");
        assert!(matches!(err, CoreError::CheckpointVersion { found: 99, .. }), "{err}");
    }
}
