//! Model checkpointing: serialize a trained QPSeeker to JSON and restore it
//! against the same database schema.
//!
//! A checkpoint stores the configuration, every parameter tensor, and the
//! fitted target normalizer. Restoration re-derives the architecture from
//! the config (parameter registration order is deterministic), then swaps in
//! the saved weights — so a checkpoint is only valid for a database with the
//! same catalog dimensions (relation/join vocabulary sizes).

use crate::config::ModelConfig;
use crate::model::QPSeeker;
use crate::normalize::TargetNormalizer;
use qpseeker_nn::params::ParamStore;
use qpseeker_storage::Database;
use serde::{Deserialize, Serialize};

/// Serialized model state.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub config: ModelConfig,
    pub normalizer: Option<TargetNormalizer>,
    pub store: ParamStore,
    /// Catalog fingerprint: (num_tables, num_joins) at save time.
    pub schema_dims: (usize, usize),
}

impl Checkpoint {
    /// Capture a model's state.
    pub fn capture(model: &QPSeeker<'_>, db: &Database) -> Self {
        Self {
            config: model.config.clone(),
            normalizer: model.normalizer.clone(),
            store: model.store.clone(),
            schema_dims: (db.catalog.num_tables(), db.catalog.num_joins()),
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Restore a model bound to `db`.
    ///
    /// # Errors
    /// Fails when the database's catalog dimensions differ from the ones the
    /// checkpoint was trained against.
    pub fn restore<'a>(self, db: &'a Database) -> Result<QPSeeker<'a>, String> {
        let dims = (db.catalog.num_tables(), db.catalog.num_joins());
        if dims != self.schema_dims {
            return Err(format!(
                "schema mismatch: checkpoint was trained against {:?} (tables, joins), database has {:?}",
                self.schema_dims, dims
            ));
        }
        let mut model = QPSeeker::new(db, self.config);
        if model.store.len() != self.store.len()
            || model.store.num_scalars() != self.store.num_scalars()
        {
            return Err(format!(
                "parameter layout mismatch: rebuilt {} params / {} scalars, checkpoint has {} / {}",
                model.store.len(),
                model.store.num_scalars(),
                self.store.len(),
                self.store.num_scalars()
            ));
        }
        model.store = self.store;
        model.normalizer = self.normalizer;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    #[test]
    fn save_restore_round_trip_preserves_predictions() {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 15, seed: 2 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs);
        let before = model.predict(&w.qeps[0].query, &w.qeps[0].plan);

        let json = Checkpoint::capture(&model, &db).to_json();
        let restored = Checkpoint::from_json(&json).unwrap();
        let mut model2 = restored.restore(&db).unwrap();
        let after = model2.predict(&w.qeps[0].query, &w.qeps[0].plan);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn restore_rejects_mismatched_schema() {
        let imdb = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let stack = qpseeker_storage::datagen::stack::generate(0.04, 2);
        let w = synthetic::generate(&imdb, &SyntheticConfig { n_queries: 8, seed: 2 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&imdb, ModelConfig::small());
        model.fit(&refs);
        let ckpt = Checkpoint::capture(&model, &imdb);
        let err = match ckpt.restore(&stack) {
            Ok(_) => panic!("restore against a different schema must fail"),
            Err(e) => e,
        };
        assert!(err.contains("schema mismatch"));
    }

    #[test]
    fn unfitted_model_round_trips_too() {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let model = QPSeeker::new(&db, ModelConfig::small());
        let json = Checkpoint::capture(&model, &db).to_json();
        let restored = Checkpoint::from_json(&json).unwrap().restore(&db).unwrap();
        assert!(restored.normalizer.is_none());
        assert_eq!(restored.num_parameters(), model.num_parameters());
    }
}
