//! The assembled QPSeeker model: Query Encoder + Plan Encoder + QPAttention
//! + Cost Modeler, with the training loop (§5) and inference entry points.

use crate::config::ModelConfig;
use crate::durable::SnapshotStore;
use crate::encoder::{PlanEncoder, QueryEncoder};
use crate::error::CoreError;
use crate::evalbroker::{shape_sig, BrokerMember, BucketKey, FusedOutcome, Submission};
use crate::featurize::{FeatNode, FeatSession, FeaturizedQep, Featurizer, PlanFeatCache};
use crate::normalize::TargetNormalizer;
use crate::session::PlannerSession;
use crate::vae::CostModeler;
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_nn::prelude::*;
use qpseeker_storage::Database;
use qpseeker_tabert::TabSim;
use qpseeker_workloads::Qep;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, MutexGuard};

/// Denormalized model prediction for one QEP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    pub cardinality: f64,
    pub cost: f64,
    pub runtime_ms: f64,
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Final-epoch mean prediction (MSE) loss.
    pub final_pred_loss: f64,
    /// Final-epoch mean KL.
    pub final_kl: f64,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
    /// Totals from the optimizer's numerical guards across all steps
    /// (non-finite gradients zeroed, oversized updates clamped, non-finite
    /// parameter values reverted). All-zero for a numerically healthy run.
    pub guards: StepReport,
}

/// The QPSeeker neural planner, bound to one database.
///
/// After training the model is immutable: every inference entry point takes
/// `&self`, the database is shared read-only via `Arc`, and all mutable
/// per-query state lives in a caller-owned
/// [`PlannerSession`](crate::session::PlannerSession). That makes a fitted
/// model `Send + Sync` (compile-time asserted below): wrap it in an `Arc`
/// and hand one clone to each serving worker.
///
/// Convenience entry points that take no session (`predict`,
/// `featurize_qep`, …) fall back to one internal session behind a `Mutex`;
/// the lock recovers from poisoning via `into_inner`, so a panicked caller
/// can never wedge other threads (the caches it guards are merely warm
/// state, valid at every step).
pub struct QPSeeker {
    pub config: ModelConfig,
    pub store: ParamStore,
    query_enc: QueryEncoder,
    plan_enc: PlanEncoder,
    attn: MultiHeadCrossAttention,
    vae: CostModeler,
    pub normalizer: Option<TargetNormalizer>,
    feat: Featurizer,
    noise: Initializer,
    /// Session backing the session-less convenience API.
    fallback: Mutex<PlannerSession>,
}

/// The serving-oriented name for a fitted [`QPSeeker`]: the immutable,
/// `Arc`-shareable half of the model/session split.
pub type PlannerModel = QPSeeker;

// A planner model must be shareable across serving workers. Compile-time
// assertion: losing `Send + Sync` (e.g. by reintroducing an `Rc` or a raw
// borrow) is a build error, not a runtime surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QPSeeker>()
};

impl QPSeeker {
    pub fn new(db: &Arc<Database>, config: ModelConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(config.seed);
        let n_tables = db.catalog.num_tables();
        let n_joins = db.catalog.num_joins();
        let query_enc = QueryEncoder::new(&mut store, &mut init, &config, n_tables, n_joins);
        let plan_enc = PlanEncoder::new(&mut store, &mut init, &config, n_tables);
        let attn = MultiHeadCrossAttention::new(
            &mut store,
            &mut init,
            "qp_attn",
            config.query_dim(),
            config.plan_node_out,
            config.attn_heads,
            config.attn_head_dim,
            config.joint_dim(),
        );
        let vae = CostModeler::new(&mut store, &mut init, &config);
        let tabert = TabSim::new(config.tabert.clone());
        Self {
            feat: Featurizer::new(Arc::clone(db), tabert),
            config,
            store,
            query_enc,
            plan_enc,
            attn,
            vae,
            normalizer: None,
            noise: init,
            fallback: Mutex::new(PlannerSession::new()),
        }
    }

    /// The shared read-only database this model plans against.
    pub fn db(&self) -> &Arc<Database> {
        &self.feat.db
    }

    /// The internal fallback session, recovering from lock poisoning: a
    /// worker that panicked mid-featurization leaves the caches in a valid
    /// (merely partially warm) state, so the session stays usable.
    pub(crate) fn lock_fallback_session(&self) -> MutexGuard<'_, PlannerSession> {
        self.fallback.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of scalar parameters (the paper quotes 10.8M for the full
    /// configuration).
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Simulated TaBERT time consumed so far (Fig. 8 right).
    pub fn tabert_ms(&self) -> f64 {
        self.feat.tabert_ms()
    }

    /// Featurize a training QEP (requires a fitted normalizer), through the
    /// internal fallback session.
    pub fn featurize_qep(&self, qep: &Qep) -> FeaturizedQep {
        let mut sess = self.lock_fallback_session();
        self.featurize_qep_in(&mut sess.feat, qep)
    }

    /// [`Self::featurize_qep`] with caller-owned featurization caches.
    pub fn featurize_qep_in(&self, sess: &mut FeatSession, qep: &Qep) -> FeaturizedQep {
        let norm = self.normalizer.as_ref().expect("fit or set a normalizer first");
        self.feat.featurize(sess, &qep.query, &qep.plan, Some(&qep.truth), norm, &qep.template)
    }

    /// Encode one featurized QEP to its joint embedding `[1, joint_dim]`
    /// (QPAttention output; for single-node plans, the paper's
    /// concatenation fallback).
    fn encode_joint(&self, g: &mut Graph, fq: &FeaturizedQep) -> (Var, Vec<(Var, [f32; 3])>) {
        let qv = self.query_enc.forward(g, &self.store, &fq.query);
        let ep = self.plan_enc.forward(g, &self.store, &fq.plan);
        let joint = if fq.plan.count() > 1 && self.config.use_attention {
            let (out, _scores) = self.attn.forward(g, &self.store, qv, ep.nodes);
            out
        } else {
            g.concat_cols(qv, ep.root)
        };
        // Auxiliary supervision pairs: (node output var, normalized truth).
        let mut aux = Vec::new();
        if self.config.node_loss_weight > 0.0 {
            collect_node_truths(
                &fq.plan,
                &mut NodeTruthWalker { vars: &ep.node_vars, pos: 0, out: &mut aux },
            );
        }
        (joint, aux)
    }

    /// Train on a set of QEPs. Fits the target normalizer, featurizes once,
    /// then runs mini-batch Adam for `config.epochs` epochs.
    ///
    /// # Errors
    /// [`CoreError::EmptyTrainingSet`] for an empty `qeps`,
    /// [`CoreError::MissingTarget`] when a QEP carries no ground truth,
    /// [`CoreError::TrainingWorkerPanicked`] when a data-parallel worker
    /// panics (contained at the shard boundary).
    pub fn fit(&mut self, qeps: &[&Qep]) -> Result<TrainReport, CoreError> {
        let start = std::time::Instant::now();
        let feats = self.fit_normalizer_and_featurize(qeps)?;
        let report = self.fit_featurized(&feats)?;
        Ok(TrainReport { train_seconds: start.elapsed().as_secs_f64(), ..report })
    }

    /// [`Self::fit`] with crash-safe journaling: after every epoch a
    /// [`TrainSnapshot`] (parameters, optimizer moments, RNG/noise cursor,
    /// normalizer) is written atomically to `journal`, and training resumes
    /// from the newest valid snapshot found there.
    ///
    /// Determinism guarantee: a run killed at any epoch boundary and resumed
    /// through this entry point produces **bitwise-identical** parameters to
    /// an uninterrupted run, because (a) the optimizer's moments and step
    /// counter round-trip exactly through JSON, and (b) the shuffle RNG and
    /// latent-noise stream are fast-forwarded by replaying the completed
    /// epochs' draws (their consumption depends only on dataset size and
    /// batch size, both validated against the snapshot).
    ///
    /// # Errors
    /// Everything [`Self::fit`] raises, plus [`CoreError::SnapshotMismatch`]
    /// when the journal belongs to a different config or dataset,
    /// [`CoreError::NoValidSnapshot`] when snapshots exist but all are
    /// corrupt, and durable-write failures ([`CoreError::Io`] /
    /// [`CoreError::InjectedCrash`]) from the snapshot path.
    pub fn fit_resumable(
        &mut self,
        qeps: &[&Qep],
        journal: &SnapshotStore,
    ) -> Result<TrainReport, CoreError> {
        let start = std::time::Instant::now();
        let resume = match journal.recover()? {
            None => None,
            Some(rec) => {
                let snap: TrainSnapshot = serde_json::from_str(&rec.payload)?;
                Some(self.restore_snapshot(snap, qeps.len())?)
            }
        };
        let feats = match resume.is_some() {
            // The snapshot restored the fitted normalizer; featurize with it.
            true => {
                if qeps.is_empty() {
                    return Err(CoreError::EmptyTrainingSet);
                }
                qeps.iter().map(|q| self.featurize_qep(q)).collect()
            }
            false => self.fit_normalizer_and_featurize(qeps)?,
        };
        let report = self.fit_featurized_run(&feats, Some(journal), resume)?;
        Ok(TrainReport { train_seconds: start.elapsed().as_secs_f64(), ..report })
    }

    /// Fit the target normalizer on `qeps` and featurize the whole set.
    fn fit_normalizer_and_featurize(
        &mut self,
        qeps: &[&Qep],
    ) -> Result<Vec<FeaturizedQep>, CoreError> {
        if qeps.is_empty() {
            return Err(CoreError::EmptyTrainingSet);
        }
        let targets: Vec<[f64; 3]> =
            qeps.iter().map(|q| [q.cardinality(), q.cost(), q.runtime_ms()]).collect();
        self.normalizer = Some(TargetNormalizer::fit(&targets));
        Ok(qeps.iter().map(|q| self.featurize_qep(q)).collect())
    }

    /// Validate a recovered snapshot against this run and restore the model
    /// state it carries. Returns the optimizer/progress for the epoch loop.
    fn restore_snapshot(
        &mut self,
        snap: TrainSnapshot,
        n_samples: usize,
    ) -> Result<ResumePoint, CoreError> {
        let fp = self.config.fingerprint();
        if snap.config_fingerprint != fp {
            return Err(CoreError::SnapshotMismatch {
                field: "config",
                snapshot: format!("fingerprint {:016x}", snap.config_fingerprint),
                current: format!("fingerprint {fp:016x}"),
            });
        }
        if snap.n_samples != n_samples {
            return Err(CoreError::SnapshotMismatch {
                field: "dataset size",
                snapshot: format!("{} QEPs", snap.n_samples),
                current: format!("{n_samples} QEPs"),
            });
        }
        if self.store.len() != snap.store.len()
            || self.store.num_scalars() != snap.store.num_scalars()
        {
            return Err(CoreError::ParamLayout {
                built_params: self.store.len(),
                built_scalars: self.store.num_scalars(),
                saved_params: snap.store.len(),
                saved_scalars: snap.store.num_scalars(),
            });
        }
        self.store = snap.store;
        self.normalizer = snap.normalizer;
        Ok(ResumePoint {
            opt: snap.optimizer,
            start_epoch: snap.epochs_done,
            epoch_losses: snap.epoch_losses,
            final_pred: snap.final_pred,
            final_kl: snap.final_kl,
            guards: snap.guards,
        })
    }

    /// Train on pre-featurized QEPs (used by the sampling-fraction bench
    /// which re-uses featurizations across model instances).
    pub fn fit_featurized(&mut self, feats: &[FeaturizedQep]) -> Result<TrainReport, CoreError> {
        self.fit_featurized_run(feats, None, None)
    }

    /// The epoch loop, shared by the plain and journaled entry points.
    ///
    /// On resume the shuffle RNG and the latent-noise stream are
    /// fast-forwarded by replaying each completed epoch's draws: one shuffle
    /// of the `n`-element order, then one `[chunk, latent]` noise draw per
    /// batch. Both consume amounts that depend only on `n` and the batch
    /// size, so the replay leaves the generators exactly where the
    /// uninterrupted run would have them.
    fn fit_featurized_run(
        &mut self,
        feats: &[FeaturizedQep],
        journal: Option<&SnapshotStore>,
        resume: Option<ResumePoint>,
    ) -> Result<TrainReport, CoreError> {
        if feats.is_empty() {
            return Err(CoreError::EmptyTrainingSet);
        }
        let n = feats.len();
        let (mut opt, start_epoch, mut epoch_losses, mut final_pred, mut final_kl, mut guards) =
            match resume {
                Some(r) => {
                    (r.opt, r.start_epoch, r.epoch_losses, r.final_pred, r.final_kl, r.guards)
                }
                None => (
                    Adam::new(self.config.learning_rate as f32),
                    0,
                    Vec::with_capacity(self.config.epochs),
                    0.0,
                    0.0,
                    StepReport::default(),
                ),
            };
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xf17);
        let mut order: Vec<usize> = (0..n).collect();
        let batch_size = self.config.batch_size.max(1);
        for _done in 0..start_epoch {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch_size) {
                let _ = self.noise.standard_normal(chunk.len(), self.config.vae_latent);
            }
        }
        for epoch in start_epoch..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_total = 0.0;
            let mut epoch_pred = 0.0;
            let mut epoch_kl = 0.0;
            let mut batches = 0.0;
            for chunk in order.chunks(batch_size) {
                let batch: Vec<&FeaturizedQep> = chunk.iter().map(|&i| &feats[i]).collect();
                let (total, pred, kl, step_guards) = self.train_batch(&batch, &mut opt)?;
                guards.absorb(step_guards);
                epoch_total += total;
                epoch_pred += pred;
                epoch_kl += kl;
                batches += 1.0;
            }
            epoch_losses.push(epoch_total / batches);
            final_pred = epoch_pred / batches;
            final_kl = epoch_kl / batches;
            if let Some(store) = journal {
                let snap = TrainSnapshot {
                    config_fingerprint: self.config.fingerprint(),
                    n_samples: n,
                    epochs_done: epoch + 1,
                    total_epochs: self.config.epochs,
                    optimizer: opt.clone(),
                    store: self.store.clone(),
                    normalizer: self.normalizer.clone(),
                    epoch_losses: epoch_losses.clone(),
                    final_pred,
                    final_kl,
                    guards,
                };
                store.write((epoch + 1) as u64, &serde_json::to_string(&snap)?)?;
            }
        }
        Ok(TrainReport {
            epoch_losses,
            final_pred_loss: final_pred,
            final_kl,
            train_seconds: 0.0,
            guards,
        })
    }

    /// One optimizer step over `batch`, data-parallel across
    /// `config.train_threads` crossbeam-scoped workers.
    ///
    /// Each sample's tape forward/backward runs independently into a
    /// thread-local [`GradBuffer`]; buffers are then merged into the shared
    /// store in *sample-index* order (never shard order) and the loss terms
    /// are summed in the same order. Latent noise is drawn for the whole
    /// batch upfront from the model's single RNG stream. Together these make
    /// a seeded run bit-identical for every `train_threads` value.
    fn train_batch(
        &mut self,
        batch: &[&FeaturizedQep],
        opt: &mut Adam,
    ) -> Result<(f64, f64, f64, StepReport), CoreError> {
        self.store.zero_grads();
        let b = batch.len();
        let eps_all = self.noise.standard_normal(b, self.config.vae_latent);
        // Auxiliary-loss rows across the whole batch: each sample's node
        // loss is scaled by its share so the sum equals the batch MSE.
        let total_aux: usize = if self.config.node_loss_weight > 0.0 {
            batch.iter().map(|fq| count_truth_nodes(&fq.plan)).sum()
        } else {
            0
        };
        let shards = self.config.train_threads.max(1).min(b.max(1));
        let results: Vec<SampleGrad> = if shards <= 1 {
            batch
                .iter()
                .enumerate()
                .map(|(i, fq)| self.train_sample(fq, eps_row(&eps_all, i), b, total_aux, i))
                .collect::<Result<_, _>>()?
        } else {
            let chunk = b.div_ceil(shards);
            let this = &*self;
            let eps_ref = &eps_all;
            let scoped = crossbeam::scope(|s| {
                let handles: Vec<_> = batch
                    .chunks(chunk)
                    .enumerate()
                    .map(|(ci, samples)| {
                        s.spawn(move |_| {
                            samples
                                .iter()
                                .enumerate()
                                .map(|(j, fq)| {
                                    let i = ci * chunk + j;
                                    this.train_sample(fq, eps_row(eps_ref, i), b, total_aux, i)
                                })
                                .collect::<Result<Vec<SampleGrad>, CoreError>>()
                        })
                    })
                    .collect();
                // Join every shard, containing panics at the shard boundary
                // as typed errors instead of poisoning the whole process.
                let mut all = Vec::with_capacity(b);
                for (shard, h) in handles.into_iter().enumerate() {
                    match h.join() {
                        Ok(Ok(grads)) => all.extend(grads),
                        Ok(Err(e)) => return Err(e),
                        Err(payload) => {
                            return Err(CoreError::TrainingWorkerPanicked {
                                shard,
                                cause: crate::error::panic_message(payload),
                            })
                        }
                    }
                }
                Ok(all)
            });
            match scoped {
                Ok(inner) => inner?,
                // A shard that panicked after its handle was consumed still
                // surfaces through the scope result; attribute it there.
                Err(payload) => {
                    return Err(CoreError::TrainingWorkerPanicked {
                        shard: 0,
                        cause: crate::error::panic_message(payload),
                    })
                }
            }
        };
        let (mut loss, mut pred, mut kl) = (0.0, 0.0, 0.0);
        for r in &results {
            r.buf.merge_into(&mut self.store);
            loss += r.loss;
            pred += r.pred;
            kl += r.kl;
        }
        self.store.clip_grad_norm(5.0);
        let guards = opt.step(&mut self.store);
        Ok((loss, pred / b as f64, kl / b as f64, guards))
    }

    /// Forward/backward for one sample on its own tape, gradients into a
    /// private buffer. The per-sample loss is scaled `1/batch` (and the aux
    /// node loss by its row share) so the merged batch matches a joint pass.
    fn train_sample(
        &self,
        fq: &FeaturizedQep,
        eps: Tensor,
        batch_size: usize,
        total_aux: usize,
        index: usize,
    ) -> Result<SampleGrad, CoreError> {
        let mut g = Graph::new();
        let (joint, aux) = self.encode_joint(&mut g, fq);
        let t = fq.target.ok_or(CoreError::MissingTarget { index })?;
        let targets = g.constant(Tensor::row(t.to_vec()));
        let out = self.vae.forward(&mut g, &self.store, joint, eps);
        let (sample_total, _recon, pred, kl) =
            self.vae.loss(&mut g, &out, joint, targets, self.config.beta);
        let mut total = g.scale(sample_total, 1.0 / batch_size as f32);
        if !aux.is_empty() && total_aux > 0 {
            let d = self.config.data_vec_dim();
            let node_vars: Vec<Var> = aux.iter().map(|(v, _)| g.slice_cols(*v, d, d + 3)).collect();
            let stacked_raw = g.stack_rows(&node_vars);
            // Node estimate slots carry z/5 (see featurize::ESTIMATE_SCALE);
            // rescale before comparing against raw z-scored truths.
            let stacked = g.scale(stacked_raw, 1.0 / crate::featurize::ESTIMATE_SCALE);
            let truth_rows: Vec<Tensor> =
                aux.iter().map(|(_, t)| Tensor::row(t.to_vec())).collect();
            let truth_refs: Vec<&Tensor> = truth_rows.iter().collect();
            let truths = g.constant(Tensor::stack_rows(&truth_refs));
            let node_loss = g.mse(stacked, truths);
            // This sample's mean over aux.len() rows, reweighted to its
            // share of the batch-wide mean over total_aux rows.
            let share = aux.len() as f32 / total_aux as f32;
            let weighted = g.scale(node_loss, self.config.node_loss_weight as f32 * share);
            total = g.add(total, weighted);
        }
        let pred_v = g.value(pred).get(0, 0) as f64;
        let kl_v = g.value(kl).get(0, 0) as f64;
        let mut buf = GradBuffer::new();
        let loss = g.backward(total, &mut buf) as f64;
        Ok(SampleGrad { buf, loss, pred: pred_v, kl: kl_v })
    }

    /// Predict (cardinality, cost, runtime) for an arbitrary plan of a
    /// query. Deterministic (zero latent noise). Uses the internal fallback
    /// session; serving workers use [`Self::predict_in`] with their own.
    pub fn predict(&self, query: &Query, plan: &PlanNode) -> Prediction {
        let mut sess = self.lock_fallback_session();
        self.predict_in(&mut sess.feat, query, plan)
    }

    /// [`Self::predict`] with caller-owned featurization caches.
    pub fn predict_in(&self, sess: &mut FeatSession, query: &Query, plan: &PlanNode) -> Prediction {
        let mut ctx = self.query_context(query);
        self.predict_with_context_in(sess, query, plan, &mut ctx)
    }

    /// Build the per-query state for [`Self::predict_with_context`]. The
    /// query encoder runs once here; each candidate plan then only pays for
    /// the plan encoder, attention, and VAE head — the MCTS hot loop builds
    /// one context per search and scores every rollout through it.
    pub fn query_context(&self, query: &Query) -> QueryContext {
        let fast = self.config.fast_inference && PlanFeatCache::supports(query);
        let qemb = if fast {
            let qf = self.feat.query_features(query);
            with_thread_scratch(|sc| {
                let e = self.query_enc.forward_inference(&self.store, &qf, sc);
                let owned = e.clone();
                sc.recycle(e);
                owned
            })
        } else {
            Tensor::zeros(1, 1)
        };
        QueryContext { qemb, plan_cache: PlanFeatCache::new(query), fast, feat_batch: Vec::new() }
    }

    /// [`Self::predict`] through a reusable [`QueryContext`]. With the fast
    /// path enabled this is tape-free: plan featurization hits the per-query
    /// cache and every layer writes into recycled scratch buffers.
    pub fn predict_with_context(
        &self,
        query: &Query,
        plan: &PlanNode,
        ctx: &mut QueryContext,
    ) -> Prediction {
        let mut sess = self.lock_fallback_session();
        self.predict_with_context_in(&mut sess.feat, query, plan, ctx)
    }

    /// [`Self::predict_with_context`] with caller-owned featurization
    /// caches — the lock-free serving hot path.
    pub fn predict_with_context_in(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plan: &PlanNode,
        ctx: &mut QueryContext,
    ) -> Prediction {
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        if !ctx.fast {
            let fq = self.feat.featurize(sess, query, plan, None, norm, "");
            let (preds, _mu) = self.forward_tape(&fq);
            let raw = norm.decode(preds);
            return Prediction { cardinality: raw[0], cost: raw[1], runtime_ms: raw[2] };
        }
        let fplan = self.feat.featurize_plan_fast(sess, query, plan, norm, &mut ctx.plan_cache);
        let preds = with_thread_scratch(|sc| {
            let nodes = self.plan_enc.forward_inference(&self.store, &fplan, sc);
            let joint = if fplan.count() > 1 && self.config.use_attention {
                let j = self.attn.forward_inference(&self.store, &ctx.qemb, &nodes, sc, None);
                sc.recycle(nodes);
                j
            } else {
                let qd = ctx.qemb.cols();
                let mut j = sc.take(1, qd + self.plan_enc.out_dim());
                j.data_mut()[..qd].copy_from_slice(ctx.qemb.data());
                j.data_mut()[qd..].copy_from_slice(nodes.row_slice(nodes.rows() - 1));
                sc.recycle(nodes);
                j
            };
            let (p, _mu) = self.vae.forward_inference(&self.store, &joint, sc);
            sc.recycle(joint);
            let out = [p.get(0, 0), p.get(0, 1), p.get(0, 2)];
            sc.recycle(p);
            out
        });
        let raw = norm.decode(preds);
        Prediction { cardinality: raw[0], cost: raw[1], runtime_ms: raw[2] }
    }

    /// Score a batch of candidate plans of one query in **one batched
    /// forward pass**: one `[K·n, d]` plan-encoder run (each tree position a
    /// `rows = K` LSTM step), one batched attention pass, one `[K, d]` VAE
    /// pass. Convenience wrapper over
    /// [`Self::predict_batch_with_context_in`] using the fallback session.
    pub fn predict_batch(&self, query: &Query, plans: &[&PlanNode]) -> Vec<Prediction> {
        let mut sess = self.lock_fallback_session();
        let mut ctx = self.query_context(query);
        let mut out = Vec::with_capacity(plans.len());
        self.predict_batch_with_context_in(&mut sess.feat, query, plans, &mut ctx, &mut out);
        out
    }

    /// Batched [`Self::predict_with_context_in`]: fills `out` (cleared
    /// first) with one [`Prediction`] per plan, in order.
    ///
    /// `out[p]` is **bitwise identical** to
    /// `self.predict_with_context_in(sess, query, plans[p], ctx)` — every
    /// batched layer preserves per-row reduction order (see
    /// `qpseeker_nn::tensor::matmul_kernel`'s FP-order contract), so MCTS
    /// can defer rollouts into batches without changing any plan choice a
    /// scalar-scoring search would make on the same predictions. Falls back
    /// to the scalar loop when the fast path is off, `K == 1`, or the plans
    /// are not shape-congruent.
    pub fn predict_batch_with_context_in(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plans: &[&PlanNode],
        ctx: &mut QueryContext,
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        if plans.is_empty() {
            return;
        }
        if !ctx.fast || plans.len() == 1 {
            for p in plans {
                out.push(self.predict_with_context_in(sess, query, p, ctx));
            }
            return;
        }
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let mut feat_batch = std::mem::take(&mut ctx.feat_batch);
        self.feat.featurize_batch_into(
            sess,
            query,
            plans,
            norm,
            &mut ctx.plan_cache,
            &mut feat_batch,
        );
        let refs: Vec<&FeatNode> = feat_batch.iter().collect();
        let kn = plans.len();
        let batched = with_thread_scratch(|sc| -> bool {
            let Some(nodes_all) = self.plan_enc.forward_inference_batch(&self.store, &refs, sc)
            else {
                return false;
            };
            let n_nodes = refs[0].count();
            let qd = ctx.qemb.cols();
            let joint = if n_nodes > 1 && self.config.use_attention {
                let mut qb = sc.take(kn, qd);
                for r in 0..kn {
                    qb.row_slice_mut(r).copy_from_slice(ctx.qemb.data());
                }
                let j =
                    self.attn.forward_inference_batch(&self.store, &qb, &nodes_all, n_nodes, sc);
                sc.recycle(qb);
                sc.recycle(nodes_all);
                j
            } else {
                let mut j = sc.take(kn, qd + self.plan_enc.out_dim());
                for r in 0..kn {
                    let row = j.row_slice_mut(r);
                    row[..qd].copy_from_slice(ctx.qemb.data());
                    row[qd..].copy_from_slice(nodes_all.row_slice((r + 1) * n_nodes - 1));
                }
                sc.recycle(nodes_all);
                j
            };
            let p = self.vae.forward_inference_batch(&self.store, &joint, sc);
            sc.recycle(joint);
            for r in 0..kn {
                let raw = norm.decode([p.get(r, 0), p.get(r, 1), p.get(r, 2)]);
                out.push(Prediction { cardinality: raw[0], cost: raw[1], runtime_ms: raw[2] });
            }
            sc.recycle(p);
            true
        });
        ctx.feat_batch = feat_batch;
        if !batched {
            // Non-congruent trees (never the case for left-deep MCTS
            // candidates): score one at a time.
            for p in plans {
                out.push(self.predict_with_context_in(sess, query, p, ctx));
            }
        }
    }

    /// Seeded standard-normal latent draws for risk-aware scoring:
    /// `[samples, vae_latent]`, a pure function of `seed`. Every candidate
    /// of a query is scored against the *same* draw batch, so risk ranking
    /// is deterministic for any worker count or batch layout.
    pub fn risk_eps(&self, samples: usize, seed: u64) -> Tensor {
        Initializer::new(seed).standard_normal(samples, self.config.vae_latent)
    }

    /// Runtime mean and population standard deviation of one plan over the
    /// latent draws `eps` (`[S, latent]`): the §5 latent distribution,
    /// actually sampled at serving time instead of collapsed to `eps = 0`.
    /// Samples decode in ascending row order and accumulate in `f64`, and
    /// the sampled VAE pass is row-wise bitwise equal at any batch size, so
    /// the returned pair is bitwise reproducible.
    pub fn predict_risk_with_context_in(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plan: &PlanNode,
        ctx: &mut QueryContext,
        eps: &Tensor,
    ) -> (f64, f64) {
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let s = eps.rows();
        assert!(s > 0, "risk scoring needs at least one latent sample");
        if !ctx.fast {
            // Tape path: featurize once, one forward per sample with the
            // explicit noise row (the training-path reparameterization).
            let fq = self.feat.featurize(sess, query, plan, None, norm, "");
            let mut times = Vec::with_capacity(s);
            for i in 0..s {
                let mut g = Graph::new();
                let (joint, _aux) = self.encode_joint(&mut g, &fq);
                let out = self.vae.forward(&mut g, &self.store, joint, eps_row(eps, i));
                let p = g.value(out.predictions);
                let raw = norm.decode([p.get(0, 0), p.get(0, 1), p.get(0, 2)]);
                times.push(raw[2]);
            }
            return mean_sigma(&times);
        }
        let fplan = self.feat.featurize_plan_fast(sess, query, plan, norm, &mut ctx.plan_cache);
        let times = with_thread_scratch(|sc| {
            let nodes = self.plan_enc.forward_inference(&self.store, &fplan, sc);
            let joint = if fplan.count() > 1 && self.config.use_attention {
                let j = self.attn.forward_inference(&self.store, &ctx.qemb, &nodes, sc, None);
                sc.recycle(nodes);
                j
            } else {
                let qd = ctx.qemb.cols();
                let mut j = sc.take(1, qd + self.plan_enc.out_dim());
                j.data_mut()[..qd].copy_from_slice(ctx.qemb.data());
                j.data_mut()[qd..].copy_from_slice(nodes.row_slice(nodes.rows() - 1));
                sc.recycle(nodes);
                j
            };
            let p = self.vae.forward_inference_sampled(&self.store, &joint, eps, sc);
            sc.recycle(joint);
            let mut times = Vec::with_capacity(s);
            for i in 0..s {
                let raw = norm.decode([p.get(i, 0), p.get(i, 1), p.get(i, 2)]);
                times.push(raw[2]);
            }
            sc.recycle(p);
            times
        });
        mean_sigma(&times)
    }

    /// Batched [`Self::predict_risk_with_context_in`]: fills `out` (cleared
    /// first) with one `(mean, sigma)` per plan, in order. Each pair is
    /// bitwise identical to the scalar call on the same plan — the sampled
    /// VAE pass shares the batched layers' per-row FP-order contract. Falls
    /// back to the scalar loop when the fast path is off, `K == 1`, or the
    /// plans are not shape-congruent.
    pub fn predict_risk_batch_with_context_in(
        &self,
        sess: &mut FeatSession,
        query: &Query,
        plans: &[&PlanNode],
        ctx: &mut QueryContext,
        eps: &Tensor,
        out: &mut Vec<(f64, f64)>,
    ) {
        out.clear();
        if plans.is_empty() {
            return;
        }
        if !ctx.fast || plans.len() == 1 {
            for p in plans {
                out.push(self.predict_risk_with_context_in(sess, query, p, ctx, eps));
            }
            return;
        }
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let s = eps.rows();
        assert!(s > 0, "risk scoring needs at least one latent sample");
        let mut feat_batch = std::mem::take(&mut ctx.feat_batch);
        self.feat.featurize_batch_into(
            sess,
            query,
            plans,
            norm,
            &mut ctx.plan_cache,
            &mut feat_batch,
        );
        let refs: Vec<&FeatNode> = feat_batch.iter().collect();
        let kn = plans.len();
        let batched = with_thread_scratch(|sc| -> bool {
            let Some(nodes_all) = self.plan_enc.forward_inference_batch(&self.store, &refs, sc)
            else {
                return false;
            };
            let n_nodes = refs[0].count();
            let qd = ctx.qemb.cols();
            let joint = if n_nodes > 1 && self.config.use_attention {
                let mut qb = sc.take(kn, qd);
                for r in 0..kn {
                    qb.row_slice_mut(r).copy_from_slice(ctx.qemb.data());
                }
                let j =
                    self.attn.forward_inference_batch(&self.store, &qb, &nodes_all, n_nodes, sc);
                sc.recycle(qb);
                sc.recycle(nodes_all);
                j
            } else {
                let mut j = sc.take(kn, qd + self.plan_enc.out_dim());
                for r in 0..kn {
                    let row = j.row_slice_mut(r);
                    row[..qd].copy_from_slice(ctx.qemb.data());
                    row[qd..].copy_from_slice(nodes_all.row_slice((r + 1) * n_nodes - 1));
                }
                sc.recycle(nodes_all);
                j
            };
            // Sample-major `[S*K, 3]`: candidate k's sample si is row
            // `si*K + k`.
            let p = self.vae.forward_inference_sampled(&self.store, &joint, eps, sc);
            sc.recycle(joint);
            let mut times = Vec::with_capacity(s);
            for k in 0..kn {
                times.clear();
                for si in 0..s {
                    let r = si * kn + k;
                    let raw = norm.decode([p.get(r, 0), p.get(r, 1), p.get(r, 2)]);
                    times.push(raw[2]);
                }
                out.push(mean_sigma(&times));
            }
            sc.recycle(p);
            true
        });
        ctx.feat_batch = feat_batch;
        if !batched {
            for p in plans {
                out.push(self.predict_risk_with_context_in(sess, query, p, ctx, eps));
            }
        }
    }

    /// Pack one candidate batch into an [`EvalBroker`](crate::evalbroker::EvalBroker)
    /// submission and block until the broker answers. Featurization runs
    /// here, against the submitter's own caches; only the shape-uniform
    /// tensor pipeline is delegated. `out[p]` is bitwise identical to
    /// [`Self::predict_batch_with_context_in`] on the same plans — the
    /// fused pass shares the per-row FP-order contract, so fusing with
    /// other requests cannot change any value.
    pub(crate) fn broker_predict_batch_in(
        &self,
        member: &BrokerMember,
        sess: &mut FeatSession,
        query: &Query,
        plans: &[&PlanNode],
        ctx: &mut QueryContext,
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        if plans.is_empty() {
            return;
        }
        debug_assert!(ctx.fast, "broker scoring requires the fast inference path");
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let mut nodes = std::mem::take(&mut ctx.feat_batch);
        self.feat.featurize_batch_into(sess, query, plans, norm, &mut ctx.plan_cache, &mut nodes);
        let key = BucketKey {
            model: self as *const QPSeeker as usize,
            samples: 0,
            shape_sig: shape_sig(&nodes[0]),
        };
        let (outcome, nodes) =
            member.submit(Submission { key, nodes, qemb: ctx.qemb.clone(), eps: None });
        ctx.feat_batch = nodes;
        match outcome {
            FusedOutcome::Mean(preds) => out.extend(preds),
            FusedOutcome::Poisoned(msg) => panic!("fused candidate evaluation failed: {msg}"),
            FusedOutcome::Risk(_) => unreachable!("mean submission answered with risk result"),
        }
    }

    /// Risk-scoring sibling of [`Self::broker_predict_batch_in`]: one
    /// `(mean, sigma)` per plan over the caller's seeded `eps` block, each
    /// pair bitwise identical to
    /// [`Self::predict_risk_batch_with_context_in`] on the same plans.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn broker_predict_risk_batch_in(
        &self,
        member: &BrokerMember,
        sess: &mut FeatSession,
        query: &Query,
        plans: &[&PlanNode],
        ctx: &mut QueryContext,
        eps: &Tensor,
        out: &mut Vec<(f64, f64)>,
    ) {
        out.clear();
        if plans.is_empty() {
            return;
        }
        debug_assert!(ctx.fast, "broker scoring requires the fast inference path");
        let s = eps.rows();
        assert!(s > 0, "risk scoring needs at least one latent sample");
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let mut nodes = std::mem::take(&mut ctx.feat_batch);
        self.feat.featurize_batch_into(sess, query, plans, norm, &mut ctx.plan_cache, &mut nodes);
        let key = BucketKey {
            model: self as *const QPSeeker as usize,
            samples: s,
            shape_sig: shape_sig(&nodes[0]),
        };
        let (outcome, nodes) = member.submit(Submission {
            key,
            nodes,
            qemb: ctx.qemb.clone(),
            eps: Some(eps.clone()),
        });
        ctx.feat_batch = nodes;
        match outcome {
            FusedOutcome::Risk(stats) => out.extend(stats),
            FusedOutcome::Poisoned(msg) => panic!("fused candidate evaluation failed: {msg}"),
            FusedOutcome::Mean(_) => unreachable!("risk submission answered with mean result"),
        }
    }

    /// Execute one broker bucket: every submission's candidate rows through
    /// as few fused forward passes as congruence allows. Returns one
    /// outcome per submission (in order) plus the row count of each fused
    /// pass executed (for occupancy accounting). Called by the flush leader
    /// with the broker lock held; all submitters are parked, so their
    /// featurized rows and query tensors are stable for the duration.
    pub(crate) fn fused_eval(&self, subs: &[Submission]) -> (Vec<FusedOutcome>, Vec<usize>) {
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let samples = subs.first().map(|s| s.key.samples).unwrap_or(0);
        // Flat row table over every submission's candidates, submission-major.
        let mut rows: Vec<(&FeatNode, &Tensor, Option<&Tensor>)> = Vec::new();
        for sub in subs {
            debug_assert_eq!(sub.key.samples, samples, "buckets are keyed by scoring kind");
            for node in &sub.nodes {
                rows.push((node, &sub.qemb, sub.eps.as_ref()));
            }
        }
        let zero = Prediction { cardinality: 0.0, cost: 0.0, runtime_ms: 0.0 };
        let mut mean_out = vec![zero; rows.len()];
        let mut risk_out = vec![(0.0, 0.0); rows.len()];
        let mut forwards = Vec::new();
        // Group rows by exact tree congruence — re-verified here, so a
        // shape-signature collision degrades to smaller fused runs instead
        // of a failed batch — keeping first-seen order within each group.
        let mut grouped = vec![false; rows.len()];
        let mut idxs: Vec<usize> = Vec::new();
        for start in 0..rows.len() {
            if grouped[start] {
                continue;
            }
            idxs.clear();
            idxs.push(start);
            grouped[start] = true;
            for j in start + 1..rows.len() {
                if !grouped[j] && crate::encoder::congruent(rows[start].0, rows[j].0) {
                    grouped[j] = true;
                    idxs.push(j);
                }
            }
            self.fused_forward_group(&rows, &idxs, samples, norm, &mut mean_out, &mut risk_out);
            forwards.push(idxs.len());
        }
        // Scatter flat results back into per-submission outcomes.
        let mut outcomes = Vec::with_capacity(subs.len());
        let mut at = 0;
        for sub in subs {
            let k = sub.nodes.len();
            outcomes.push(if samples == 0 {
                FusedOutcome::Mean(mean_out[at..at + k].to_vec())
            } else {
                FusedOutcome::Risk(risk_out[at..at + k].to_vec())
            });
            at += k;
        }
        (outcomes, forwards)
    }

    /// One fused forward over a congruent row group, mirroring
    /// [`Self::predict_batch_with_context_in`]'s batched body with a
    /// *per-row* query embedding (and, under risk scoring, a per-row eps
    /// block) so rows from different queries share the pass.
    fn fused_forward_group(
        &self,
        rows: &[(&FeatNode, &Tensor, Option<&Tensor>)],
        idxs: &[usize],
        samples: usize,
        norm: &TargetNormalizer,
        mean_out: &mut [Prediction],
        risk_out: &mut [(f64, f64)],
    ) {
        let refs: Vec<&FeatNode> = idxs.iter().map(|&i| rows[i].0).collect();
        let kn = refs.len();
        with_thread_scratch(|sc| {
            let nodes_all = self
                .plan_enc
                .forward_inference_batch(&self.store, &refs, sc)
                .expect("rows grouped by exact congruence");
            let n_nodes = refs[0].count();
            let qd = rows[idxs[0]].1.cols();
            let joint = if n_nodes > 1 && self.config.use_attention {
                let mut qb = sc.take(kn, qd);
                for (r, &i) in idxs.iter().enumerate() {
                    qb.row_slice_mut(r).copy_from_slice(rows[i].1.data());
                }
                let j =
                    self.attn.forward_inference_batch(&self.store, &qb, &nodes_all, n_nodes, sc);
                sc.recycle(qb);
                sc.recycle(nodes_all);
                j
            } else {
                let mut j = sc.take(kn, qd + self.plan_enc.out_dim());
                for (r, &i) in idxs.iter().enumerate() {
                    let row = j.row_slice_mut(r);
                    row[..qd].copy_from_slice(rows[i].1.data());
                    row[qd..].copy_from_slice(nodes_all.row_slice((r + 1) * n_nodes - 1));
                }
                sc.recycle(nodes_all);
                j
            };
            if samples == 0 {
                let p = self.vae.forward_inference_batch(&self.store, &joint, sc);
                sc.recycle(joint);
                for (r, &i) in idxs.iter().enumerate() {
                    let raw = norm.decode([p.get(r, 0), p.get(r, 1), p.get(r, 2)]);
                    mean_out[i] =
                        Prediction { cardinality: raw[0], cost: raw[1], runtime_ms: raw[2] };
                }
                sc.recycle(p);
            } else {
                let eps_refs: Vec<&Tensor> =
                    idxs.iter().map(|&i| rows[i].2.expect("risk rows carry eps")).collect();
                let p =
                    self.vae.forward_inference_sampled_multi(&self.store, &joint, &eps_refs, sc);
                sc.recycle(joint);
                let mut times = Vec::with_capacity(samples);
                for (k, &i) in idxs.iter().enumerate() {
                    times.clear();
                    for si in 0..samples {
                        let r = si * kn + k;
                        let raw = norm.decode([p.get(r, 0), p.get(r, 1), p.get(r, 2)]);
                        times.push(raw[2]);
                    }
                    risk_out[i] = mean_sigma(&times);
                }
                sc.recycle(p);
            }
        });
    }

    /// Reference prediction through the autodiff tape (the training-path
    /// forward). The fast path is property-tested to match this within 1e-5;
    /// it also backs prediction when `config.fast_inference` is off.
    pub fn predict_tape(&self, query: &Query, plan: &PlanNode) -> Prediction {
        let norm = self.normalizer.as_ref().expect("model must be fitted before predict");
        let fq = {
            let mut sess = self.lock_fallback_session();
            self.feat.featurize(&mut sess.feat, query, plan, None, norm, "")
        };
        let (preds, _mu) = self.forward_tape(&fq);
        let raw = norm.decode(preds);
        Prediction { cardinality: raw[0], cost: raw[1], runtime_ms: raw[2] }
    }

    /// The 32-d latent mean of a QEP (Fig. 5's latent space).
    pub fn latent_mu(&self, query: &Query, plan: &PlanNode) -> Vec<f32> {
        let norm = self.normalizer.as_ref().expect("model must be fitted before latent_mu");
        let fq = {
            let mut sess = self.lock_fallback_session();
            self.feat.featurize(&mut sess.feat, query, plan, None, norm, "")
        };
        let (_preds, mu) = self.forward_tape(&fq);
        mu
    }

    fn forward_tape(&self, fq: &FeaturizedQep) -> ([f32; 3], Vec<f32>) {
        let mut g = Graph::new();
        let (joint, _aux) = self.encode_joint(&mut g, fq);
        let eps = Tensor::zeros(1, self.config.vae_latent);
        let out = self.vae.forward(&mut g, &self.store, joint, eps);
        let p = g.value(out.predictions);
        let preds = [p.get(0, 0), p.get(0, 1), p.get(0, 2)];
        let mu = g.value(out.mu).data().to_vec();
        (preds, mu)
    }

    /// Predicted runtime only (the MCTS scoring function).
    pub fn predict_runtime_ms(&self, query: &Query, plan: &PlanNode) -> f64 {
        self.predict(query, plan).runtime_ms
    }

    /// QPAttention scores: for each attention head, the softmax weight the
    /// query embedding puts on every plan node (postorder). This is the
    /// paper's §4.3 introspection — "which nodes in the plan have the
    /// higher impact on the final estimations". Single-node plans (no
    /// attention) return an empty vector.
    pub fn attention_scores(&self, query: &Query, plan: &PlanNode) -> Vec<Vec<f32>> {
        let norm = self.normalizer.as_ref().expect("model must be fitted first");
        let fq = {
            let mut sess = self.lock_fallback_session();
            self.feat.featurize(&mut sess.feat, query, plan, None, norm, "")
        };
        if fq.plan.count() <= 1 || !self.config.use_attention {
            return Vec::new();
        }
        let mut g = Graph::new();
        let qv = self.query_enc.forward(&mut g, &self.store, &fq.query);
        let ep = self.plan_enc.forward(&mut g, &self.store, &fq.plan);
        let (_out, scores) = self.attn.forward(&mut g, &self.store, qv, ep.nodes);
        scores.iter().map(|&s| g.value(s).data().to_vec()).collect()
    }
}

/// Cached per-query inference state: the tape-free query embedding plus the
/// plan featurization cache, both shared by every candidate plan of one
/// query. Built by [`QPSeeker::query_context`].
pub struct QueryContext {
    qemb: Tensor,
    plan_cache: PlanFeatCache,
    /// False when the fast path cannot serve this query (toggle off, or
    /// more than 64 relations); predictions then take the tape path.
    /// Crate-visible so the MCTS loop can pick the matching plan
    /// materialization (see `PlanAssembler::build_for_eval`).
    pub(crate) fast: bool,
    /// Reusable featurization buffer for the batched prediction path, so a
    /// steady stream of batch flushes allocates no new `Vec<FeatNode>`s.
    feat_batch: Vec<FeatNode>,
}

/// One epoch boundary of a journaled training run, as persisted by
/// [`QPSeeker::fit_resumable`]: everything needed to continue the run and
/// land on bitwise-identical parameters.
///
/// The RNG/noise cursor is implicit: it is a pure function of
/// (`epochs_done`, `n_samples`, batch size), so resume replays the
/// completed epochs' draws instead of serializing generator internals —
/// both of which are validated before any state is restored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainSnapshot {
    /// [`ModelConfig::fingerprint`] of the run that wrote the snapshot.
    pub config_fingerprint: u64,
    /// Training-set size the epoch plan was built from.
    pub n_samples: usize,
    /// Completed epochs (also the snapshot's sequence number).
    pub epochs_done: usize,
    /// The run's total epoch budget.
    pub total_epochs: usize,
    /// Optimizer moments and step counter, exact.
    pub optimizer: Adam,
    /// Every parameter tensor at the epoch boundary.
    pub store: ParamStore,
    /// The fitted target normalizer.
    pub normalizer: Option<TargetNormalizer>,
    /// Per-epoch mean losses so far (the eventual [`TrainReport`] prefix).
    pub epoch_losses: Vec<f64>,
    /// Last completed epoch's mean prediction loss.
    pub final_pred: f64,
    /// Last completed epoch's mean KL.
    pub final_kl: f64,
    /// Accumulated numerical-guard counters.
    pub guards: StepReport,
}

/// Where the epoch loop picks up after a snapshot restore.
struct ResumePoint {
    opt: Adam,
    start_epoch: usize,
    epoch_losses: Vec<f64>,
    final_pred: f64,
    final_kl: f64,
    guards: StepReport,
}

/// One sample's contribution to a training step.
struct SampleGrad {
    buf: GradBuffer,
    /// Per-sample total loss, pre-scaled by `1/batch` (sums to batch loss).
    loss: f64,
    /// Per-sample prediction MSE (batch value = mean over samples).
    pred: f64,
    /// Per-sample KL (batch value = mean over samples).
    kl: f64,
}

/// Row `i` of the batch noise tensor as a standalone `[1, latent]` tensor.
fn eps_row(eps_all: &Tensor, i: usize) -> Tensor {
    Tensor::row(eps_all.row_slice(i).to_vec())
}

/// Mean and population standard deviation, accumulated in `f64` in slice
/// order — a fixed reduction order, so the result is bitwise reproducible
/// for a fixed sample sequence.
fn mean_sigma(times: &[f64]) -> (f64, f64) {
    let n = times.len() as f64;
    let mut mean = 0.0;
    for &t in times {
        mean += t;
    }
    mean /= n;
    let mut var = 0.0;
    for &t in times {
        let d = t - mean;
        var += d * d;
    }
    var /= n;
    (mean, var.sqrt())
}

/// Number of nodes carrying ground truth (the auxiliary-loss rows).
fn count_truth_nodes(node: &crate::featurize::FeatNode) -> usize {
    usize::from(node.truth.is_some()) + node.children.iter().map(count_truth_nodes).sum::<usize>()
}

/// Walker pairing postorder node vars with featurized truths.
struct NodeTruthWalker<'v, 'o> {
    vars: &'v [Var],
    pos: usize,
    out: &'o mut Vec<(Var, [f32; 3])>,
}

fn collect_node_truths(node: &crate::featurize::FeatNode, w: &mut NodeTruthWalker) {
    for c in &node.children {
        collect_node_truths(c, w);
    }
    let var = w.vars[w.pos];
    w.pos += 1;
    if let Some(t) = node.truth {
        w.out.push((var, t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::optimizer::PgOptimizer;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, SyntheticConfig};

    fn tiny_qeps(db: &Database, n: usize) -> Vec<Qep> {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: n, seed: 3 });
        w.qeps
    }

    #[test]
    fn model_constructs_with_paper_scale_parameter_count() {
        let db = Arc::new(imdb::generate(0.02, 1));
        let model = QPSeeker::new(&db, ModelConfig::paper());
        let params = model.num_parameters();
        // The paper quotes 10.8M; our schema dims land in the same regime.
        assert!((8_000_000..16_000_000).contains(&params), "paper-config parameter count {params}");
    }

    #[test]
    fn training_reduces_loss_and_predicts_finite() {
        let db = Arc::new(imdb::generate(0.05, 1));
        let qeps = tiny_qeps(&db, 24);
        let refs: Vec<&Qep> = qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        let report = model.fit(&refs).expect("training succeeds");
        assert_eq!(report.epoch_losses.len(), ModelConfig::small().epochs);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should drop: {first} -> {last}");
        let p = model.predict(&qeps[0].query, &qeps[0].plan);
        assert!(p.cardinality.is_finite() && p.cardinality >= 0.0);
        assert!(p.runtime_ms.is_finite() && p.runtime_ms >= 0.0);
    }

    #[test]
    fn prediction_is_deterministic() {
        let db = Arc::new(imdb::generate(0.05, 1));
        let qeps = tiny_qeps(&db, 10);
        let refs: Vec<&Qep> = qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        let a = model.predict(&qeps[0].query, &qeps[0].plan);
        let b = model.predict(&qeps[0].query, &qeps[0].plan);
        assert_eq!(a, b);
    }

    #[test]
    fn latent_dimension_matches_config() {
        let db = Arc::new(imdb::generate(0.05, 1));
        let qeps = tiny_qeps(&db, 8);
        let refs: Vec<&Qep> = qeps.iter().collect();
        let cfg = ModelConfig::small();
        let latent = cfg.vae_latent;
        let mut model = QPSeeker::new(&db, cfg);
        model.fit(&refs).expect("training succeeds");
        let mu = model.latent_mu(&qeps[0].query, &qeps[0].plan);
        assert_eq!(mu.len(), latent);
        assert!(mu.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_plans_of_same_query_get_different_predictions() {
        let db = Arc::new(imdb::generate(0.05, 1));
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("cast_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let qeps = tiny_qeps(&db, 12);
        let refs: Vec<&Qep> = qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        use qpseeker_engine::plan::{JoinOp, ScanOp};
        let mk = |op| {
            PlanNode::join(
                &q,
                op,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
            )
        };
        let a = model.predict(&q, &mk(JoinOp::HashJoin));
        let b = model.predict(&q, &mk(JoinOp::NestedLoopJoin));
        assert_ne!(a.runtime_ms, b.runtime_ms);
    }

    #[test]
    fn batched_predictions_bitwise_equal_scalar_fast_path() {
        let db = Arc::new(imdb::generate(0.05, 1));
        let mut q = Query::new("q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("cast_info"), RelRef::new("movie_info")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("cast_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        let qeps = tiny_qeps(&db, 12);
        let refs: Vec<&Qep> = qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        use qpseeker_engine::plan::{JoinOp, ScanOp};
        let mk = |a: &str, b: &str, c: &str, j1, j2| {
            PlanNode::join(
                &q,
                j2,
                PlanNode::join(
                    &q,
                    j1,
                    PlanNode::scan(&q, a, ScanOp::SeqScan),
                    PlanNode::scan(&q, b, ScanOp::IndexScan),
                ),
                PlanNode::scan(&q, c, ScanOp::SeqScan),
            )
        };
        let plans = [
            mk("title", "cast_info", "movie_info", JoinOp::HashJoin, JoinOp::HashJoin),
            mk("cast_info", "title", "movie_info", JoinOp::MergeJoin, JoinOp::NestedLoopJoin),
            mk("movie_info", "title", "cast_info", JoinOp::NestedLoopJoin, JoinOp::HashJoin),
            mk("title", "movie_info", "cast_info", JoinOp::HashJoin, JoinOp::MergeJoin),
            mk("title", "cast_info", "movie_info", JoinOp::MergeJoin, JoinOp::MergeJoin),
        ];
        let plan_refs: Vec<&PlanNode> = plans.iter().collect();
        let batched = model.predict_batch(&q, &plan_refs);
        assert_eq!(batched.len(), plans.len());
        for (p, plan) in plans.iter().enumerate() {
            let single = model.predict(&q, plan);
            assert_eq!(batched[p], single, "plan {p}: batched != scalar");
        }
    }

    #[test]
    #[should_panic(expected = "must be fitted")]
    fn predict_before_fit_panics() {
        let db = Arc::new(imdb::generate(0.02, 1));
        let model = QPSeeker::new(&db, ModelConfig::small());
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title")];
        let plan = PgOptimizer::new(&db).plan(&q);
        model.predict(&q, &plan);
    }

    #[test]
    fn fit_on_empty_is_a_typed_error() {
        let db = Arc::new(imdb::generate(0.02, 1));
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        let err = model.fit(&[]).unwrap_err();
        assert_eq!(err, CoreError::EmptyTrainingSet);
        assert!(err.to_string().contains("empty QEP set"));
    }
}

#[cfg(test)]
mod attention_tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    #[test]
    fn attention_scores_are_distributions_over_plan_nodes() {
        let db = Arc::new(imdb::generate(0.05, 1));
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        let qep = w.qeps.iter().find(|q| q.plan.len() > 1).expect("join plan exists");
        let scores = model.attention_scores(&qep.query, &qep.plan);
        assert_eq!(scores.len(), ModelConfig::small().attn_heads);
        for head in &scores {
            assert_eq!(head.len(), qep.plan.len());
            let sum: f32 = head.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "head weights must sum to 1, got {sum}");
            assert!(head.iter().all(|&w| w >= 0.0));
        }
        // Single-node plans have no attention.
        let single = w.qeps.iter().find(|q| q.plan.len() == 1).expect("scan-only query");
        assert!(model.attention_scores(&single.query, &single.plan).is_empty());
    }
}
