//! Evaluation metrics: Q-error and its percentile summaries (the measure
//! used throughout the paper's Tables 2-5), plus the per-outcome counters
//! the supervised serving loop reports.

use qpseeker_nn::isa::Isa;
use serde::{Deserialize, Serialize};

/// Per-outcome counters for a supervised serving loop
/// ([`crate::serve::Supervisor`]). Every admitted or shed query lands in
/// exactly one of the disposition counters, so operators can audit where
/// load went; the breaker counters expose the circuit's history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// The kernel ISA tier this process selected at startup (see
    /// [`qpseeker_nn::isa::active`]); surfaced here so serving metrics
    /// record which code path produced the numbers.
    pub isa: Isa,
    /// Queries admitted past the queue and actually served.
    pub admitted: usize,
    /// Admitted queries served by the neural planner.
    pub served_neural: usize,
    /// Of the neurally served queries, those answered from the fingerprint
    /// plan cache without running MCTS (always `<= served_neural`).
    pub cache_hits: usize,
    /// Admitted queries served by the classical optimizer (fallback,
    /// breaker-open, or no model).
    pub served_classical: usize,
    /// Admitted queries that panicked outside the planner's own boundary;
    /// the worker survived and recorded the failure. Always
    /// `admitted = served_neural + served_classical + failed`.
    pub failed: usize,
    /// Rejected at admission: the bounded queue was full.
    pub shed_queue_full: usize,
    /// Rejected at admission: the deadline is unmeetable even unqueued.
    pub shed_deadline: usize,
    /// Admitted but dropped at dequeue: queue wait consumed the deadline.
    pub expired_in_queue: usize,
    /// Times the circuit breaker tripped open (neural → classical-only).
    pub breaker_trips: usize,
    /// Times a half-open probe run closed the breaker again.
    pub breaker_recoveries: usize,
    /// Half-open probe queries sent through the neural path.
    pub probes: usize,
    /// Candidate plans the search layer asked the model to score, summed
    /// over every neurally served query (a cache hit scores nothing).
    /// Counted identically whether scoring ran per-session or through the
    /// shared [`crate::evalbroker::EvalBroker`] — fusing changes *where*
    /// rows are evaluated, never how many.
    pub eval_candidates: usize,
    /// Fused forward passes the eval broker executed (zero when serving
    /// without a broker).
    pub fused_batches: usize,
    /// Candidate rows carried by those fused passes. `fused_rows /
    /// fused_batches` is the mean occupancy — the whole point of fusing.
    pub fused_rows: usize,
    /// Largest row count any single fused forward pass carried.
    pub fused_occupancy_max: usize,
    /// Broker buckets flushed because they reached the size target.
    pub broker_flush_size: usize,
    /// Broker buckets flushed by the deadline window (including forced
    /// progress flushes), rather than by reaching the size target.
    pub broker_flush_deadline: usize,
}

impl ServeCounters {
    /// Queries that arrived, in any disposition.
    pub fn total_seen(&self) -> usize {
        self.admitted + self.shed_queue_full + self.shed_deadline + self.expired_in_queue
    }

    /// Load-shedding events of any kind.
    pub fn total_shed(&self) -> usize {
        self.shed_queue_full + self.shed_deadline + self.expired_in_queue
    }

    /// The disposition conservation invariant every serving loop must hold,
    /// per tenant and in merged totals: every admitted query lands in
    /// exactly one of neural / classical / failed, and cache hits are a
    /// subset of the neural count.
    pub fn conservation_holds(&self) -> bool {
        self.admitted == self.served_neural + self.served_classical + self.failed
            && self.cache_hits <= self.served_neural
    }

    /// Mean rows per fused forward pass, or 0 when no broker ran. The
    /// fusing win condition: this should sit well above the per-session
    /// `batch_eval` whenever several workers score concurrently.
    pub fn fused_occupancy_mean(&self) -> f64 {
        if self.fused_batches == 0 {
            0.0
        } else {
            self.fused_rows as f64 / self.fused_batches as f64
        }
    }

    /// Accumulate another tally into this one (merging per-tenant or
    /// per-worker shards into totals). The ISA tag is taken from `other`;
    /// shards within one process always agree on it.
    pub fn merge(&mut self, other: &ServeCounters) {
        self.admitted += other.admitted;
        self.served_neural += other.served_neural;
        self.cache_hits += other.cache_hits;
        self.served_classical += other.served_classical;
        self.failed += other.failed;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_deadline += other.shed_deadline;
        self.expired_in_queue += other.expired_in_queue;
        self.breaker_trips += other.breaker_trips;
        self.breaker_recoveries += other.breaker_recoveries;
        self.probes += other.probes;
        self.eval_candidates += other.eval_candidates;
        self.fused_batches += other.fused_batches;
        self.fused_rows += other.fused_rows;
        self.fused_occupancy_max = self.fused_occupancy_max.max(other.fused_occupancy_max);
        self.broker_flush_size += other.broker_flush_size;
        self.broker_flush_deadline += other.broker_flush_deadline;
        self.isa = other.isa;
    }
}

impl std::fmt::Display for ServeCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "isa={} served={} (neural={} cache_hits={} classical={} failed={}) shed={} (queue_full={} deadline={} expired={}) breaker(trips={} recoveries={} probes={}) eval(candidates={} fused_batches={} occupancy_mean={:.2} occupancy_max={} flush_size={} flush_deadline={})",
            self.isa.name(),
            self.admitted,
            self.served_neural,
            self.cache_hits,
            self.served_classical,
            self.failed,
            self.total_shed(),
            self.shed_queue_full,
            self.shed_deadline,
            self.expired_in_queue,
            self.breaker_trips,
            self.breaker_recoveries,
            self.probes,
            self.eval_candidates,
            self.fused_batches,
            self.fused_occupancy_mean(),
            self.fused_occupancy_max,
            self.broker_flush_size,
            self.broker_flush_deadline,
        )
    }
}

/// Lifecycle counters for the online adaptation loop
/// ([`crate::online::OnlinePlanner`]): how many observations were logged,
/// how retrain rounds resolved, and how often the publication cell swapped
/// or rolled back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineCounters {
    /// Experience records durably appended to the WAL.
    pub records_logged: usize,
    /// Fine-tune rounds started (whatever their outcome).
    pub retrain_rounds: usize,
    /// Candidates that passed the promotion gate and were published.
    pub promotions: usize,
    /// Candidates rejected: held-out prediction error worse than serving.
    pub rejected_gate: usize,
    /// Candidates rejected: non-finite parameters (automatic reject).
    pub rejected_nonfinite: usize,
    /// Published candidates the regression monitor rolled back.
    pub rollbacks: usize,
}

impl std::fmt::Display for OnlineCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "experience={} rounds={} promoted={} rejected(gate={} nonfinite={}) rollbacks={}",
            self.records_logged,
            self.retrain_rounds,
            self.promotions,
            self.rejected_gate,
            self.rejected_nonfinite,
            self.rollbacks,
        )
    }
}

/// Q-error: `max(pred/true, true/pred)`, both floored at 1 (Moerkotte et
/// al.). Always ≥ 1; 1 means a perfect estimate.
pub fn q_error(pred: f64, truth: f64) -> f64 {
    let p = pred.max(1.0);
    let t = truth.max(1.0);
    (p / t).max(t / p)
}

/// Q-error percentile summary (one row of the paper's tables).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QErrorSummary {
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub mean: f64,
    pub std: f64,
    pub count: usize,
}

impl QErrorSummary {
    /// Summarize a set of (pred, truth) pairs.
    ///
    /// # Panics
    /// Panics on an empty input.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let errs: Vec<f64> = pairs.iter().map(|&(p, t)| q_error(p, t)).collect();
        Self::from_errors(errs)
    }

    pub fn from_errors(mut errs: Vec<f64>) -> Self {
        assert!(!errs.is_empty(), "q-error summary of empty sample");
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
        let pct = |p: f64| errs[((errs.len() - 1) as f64 * p).round() as usize];
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let var = errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errs.len() as f64;
        Self {
            p50: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            mean,
            std: var.sqrt(),
            count: errs.len(),
        }
    }
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "50%={:.2} 90%={:.2} 95%={:.2} 99%={:.2} std={:.2} (n={})",
            self.p50, self.p90, self.p95, self.p99, self.std, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0); // symmetric
        assert!(q_error(0.0, 5.0) >= 1.0); // floored
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn q_error_always_at_least_one() {
        for p in [0.0, 0.5, 1.0, 7.0, 1e9] {
            for t in [0.0, 0.5, 1.0, 7.0, 1e9] {
                assert!(q_error(p, t) >= 1.0, "q_error({p},{t})");
            }
        }
    }

    #[test]
    fn summary_percentiles() {
        let pairs: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0)).collect();
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.count, 100);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn perfect_predictions_summarize_to_one() {
        let pairs = vec![(3.0, 3.0); 10];
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.p50, 1.0);
        assert_eq!(s.p99, 1.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        QErrorSummary::from_errors(vec![]);
    }

    #[test]
    fn display_is_compact() {
        let s = QErrorSummary::from_pairs(&[(2.0, 1.0), (4.0, 1.0)]);
        let text = format!("{s}");
        assert!(text.contains("50%="));
        assert!(text.contains("n=2"));
    }

    #[test]
    fn serve_counters_partition_the_stream() {
        let c = ServeCounters {
            isa: Isa::default(),
            admitted: 10,
            served_neural: 6,
            cache_hits: 2,
            served_classical: 3,
            failed: 1,
            shed_queue_full: 2,
            shed_deadline: 1,
            expired_in_queue: 1,
            breaker_trips: 1,
            breaker_recoveries: 1,
            probes: 3,
            ..ServeCounters::default()
        };
        assert_eq!(c.total_seen(), 14);
        assert_eq!(c.total_shed(), 4);
        assert!(c.conservation_holds());
        let text = c.to_string();
        assert!(text.contains("queue_full=2") && text.contains("trips=1"));
        assert!(text.contains("failed=1") && text.contains("cache_hits=2"));
    }

    #[test]
    fn merge_sums_every_disposition_and_preserves_conservation() {
        let a = ServeCounters {
            admitted: 5,
            served_neural: 3,
            cache_hits: 1,
            served_classical: 2,
            shed_queue_full: 1,
            breaker_trips: 1,
            ..ServeCounters::default()
        };
        let b = ServeCounters {
            admitted: 4,
            served_neural: 1,
            served_classical: 2,
            failed: 1,
            shed_deadline: 2,
            probes: 3,
            ..ServeCounters::default()
        };
        assert!(a.conservation_holds() && b.conservation_holds());
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.admitted, 9);
        assert_eq!(merged.served_neural, 4);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.served_classical, 4);
        assert_eq!(merged.failed, 1);
        assert_eq!(merged.total_seen(), 12);
        assert_eq!(merged.breaker_trips, 1);
        assert_eq!(merged.probes, 3);
        assert!(merged.conservation_holds(), "conservation is closed under merge");
    }

    #[test]
    fn fused_counters_merge_exactly() {
        let a = ServeCounters {
            eval_candidates: 40,
            fused_batches: 3,
            fused_rows: 30,
            fused_occupancy_max: 16,
            broker_flush_size: 2,
            broker_flush_deadline: 1,
            ..ServeCounters::default()
        };
        let b = ServeCounters {
            eval_candidates: 10,
            fused_batches: 1,
            fused_rows: 10,
            fused_occupancy_max: 10,
            broker_flush_deadline: 1,
            ..ServeCounters::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.eval_candidates, 50);
        assert_eq!(merged.fused_batches, 4);
        assert_eq!(merged.fused_rows, 40);
        assert_eq!(merged.fused_occupancy_max, 16, "occupancy max merges by max");
        assert_eq!(merged.broker_flush_size, 2);
        assert_eq!(merged.broker_flush_deadline, 2);
        assert_eq!(merged.fused_occupancy_mean(), 10.0);
        assert_eq!(ServeCounters::default().fused_occupancy_mean(), 0.0);
        let text = merged.to_string();
        assert!(text.contains("candidates=50") && text.contains("occupancy_max=16"));
    }

    #[test]
    fn cache_hits_exceeding_neural_breaks_conservation() {
        let c = ServeCounters {
            admitted: 2,
            served_neural: 1,
            cache_hits: 2,
            served_classical: 1,
            ..ServeCounters::default()
        };
        assert!(!c.conservation_holds());
    }
}
