//! Graceful-degradation serving path.
//!
//! Production neural planners cannot afford to fail a query because the
//! model did: [`plan_with_fallback`] runs the MCTS planner under a deadline
//! watchdog with NaN/Inf prediction checks and bounded retry + exponential
//! backoff for transient faults, and falls back to the classical DP/greedy
//! optimizer whenever the neural path cannot produce a valid plan in time.
//! The [`ServeResult`] records which path served and every failure seen on
//! the way, so chaos tests (and operators) can audit degradation decisions.

use crate::mcts::{MctsConfig, MctsPlanner};
use crate::model::QPSeeker;
use qpseeker_engine::optimizer::PgOptimizer;
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_storage::{Database, FaultConfig, FaultInjector, InferenceFault};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Serving-path configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// MCTS settings for each neural attempt (the seed is varied per
    /// attempt so a retry explores differently).
    pub mcts: MctsConfig,
    /// Wall-clock budget for one neural attempt, in milliseconds. An
    /// attempt that exceeds it is discarded.
    pub deadline_ms: f64,
    /// Retries after the first failed neural attempt.
    pub max_retries: usize,
    /// First backoff pause; doubles per retry. Zero disables sleeping
    /// (virtual backoff is still recorded).
    pub backoff_base_ms: f64,
    /// Optional injected inference faults (chaos testing).
    pub faults: Option<FaultConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            mcts: MctsConfig::default(),
            deadline_ms: 1_000.0,
            max_retries: 2,
            backoff_base_ms: 0.0,
            faults: None,
        }
    }
}

/// Which optimizer produced the served plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The QPSeeker MCTS planner.
    Neural,
    /// The classical DP/greedy cost-based optimizer.
    Classical,
}

/// Why a neural attempt was rejected (and, for the last one, why the
/// query fell back to the classical optimizer).
#[derive(Debug, Clone, PartialEq)]
pub enum FallbackReason {
    /// No model was provided (e.g. checkpoint failed to load).
    ModelUnavailable(String),
    /// The cost model predicted NaN or Inf for the chosen plan.
    NonFinitePrediction,
    /// The attempt blew through its deadline.
    DeadlineExceeded { elapsed_ms: f64, deadline_ms: f64 },
    /// MCTS produced a plan that failed validation against the query.
    InvalidPlan(String),
    /// The planner panicked; the panic was contained.
    PlannerPanicked(String),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::ModelUnavailable(why) => write!(f, "model unavailable: {why}"),
            FallbackReason::NonFinitePrediction => f.write_str("non-finite cost prediction"),
            FallbackReason::DeadlineExceeded { elapsed_ms, deadline_ms } => {
                write!(f, "deadline exceeded: {elapsed_ms:.1}ms > {deadline_ms:.1}ms")
            }
            FallbackReason::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
            FallbackReason::PlannerPanicked(why) => write!(f, "planner panicked: {why}"),
        }
    }
}

/// Outcome of [`plan_with_fallback`]: always carries a valid, executable
/// plan, plus the full degradation audit trail.
#[derive(Debug, Clone)]
pub struct ServeResult {
    pub plan: PlanNode,
    pub served_by: ServedBy,
    /// Neural attempts made (0 when the model was unavailable).
    pub attempts: usize,
    /// Total backoff charged between attempts, in milliseconds.
    pub backoff_ms: f64,
    /// Why the query was served classically (`None` on the neural path).
    pub fallback_reason: Option<FallbackReason>,
    /// Every failed neural attempt, in order.
    pub attempt_failures: Vec<FallbackReason>,
    /// The model's runtime prediction for the served plan (neural path only).
    pub predicted_ms: Option<f64>,
}

/// Plan `query`, preferring the neural planner but guaranteeing a valid
/// plan: each neural attempt is guarded by a deadline watchdog, a finite-
/// prediction check, plan validation and a panic boundary; failures retry
/// with exponential backoff (a different MCTS seed each time) up to
/// `cfg.max_retries`, after which the classical optimizer serves the query.
pub fn plan_with_fallback(
    db: &Database,
    query: &Query,
    model: Option<&QPSeeker<'_>>,
    cfg: &ServeConfig,
) -> ServeResult {
    let injector = cfg.faults.clone().map(FaultInjector::new);
    let mut failures: Vec<FallbackReason> = Vec::new();
    let mut backoff_ms = 0.0;

    let model = match model {
        Some(m) => m,
        None => {
            let reason = FallbackReason::ModelUnavailable("no model loaded".into());
            return classical(db, query, 0, backoff_ms, vec![reason.clone()], reason);
        }
    };

    let attempts = cfg.max_retries + 1;
    for attempt in 0..attempts {
        if attempt > 0 {
            let pause = cfg.backoff_base_ms * (1 << (attempt - 1)) as f64;
            backoff_ms += pause;
            if pause > 0.0 {
                std::thread::sleep(std::time::Duration::from_micros((pause * 1_000.0) as u64));
            }
        }

        let mut mcts = cfg.mcts.clone();
        mcts.seed ^= attempt as u64;
        // Never let one attempt's internal budget exceed the watchdog.
        mcts.budget_ms = mcts.budget_ms.min(cfg.deadline_ms);
        let planner = MctsPlanner::new(mcts);

        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| planner.plan(model, query)));
        let mut elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;

        let mut result = match outcome {
            Ok(r) => r,
            Err(payload) => {
                failures.push(FallbackReason::PlannerPanicked(panic_text(payload)));
                continue;
            }
        };

        // Injected inference faults (chaos testing): a stall exhausts the
        // deadline, a NaN fault poisons the prediction.
        if let Some(fault) = injector.as_ref().and_then(|fi| fi.inference_fault(&query.id, attempt))
        {
            match fault {
                InferenceFault::Stall => elapsed_ms += cfg.deadline_ms,
                InferenceFault::NanPrediction => result.predicted_ms = f64::NAN,
            }
        }

        if !result.predicted_ms.is_finite() {
            failures.push(FallbackReason::NonFinitePrediction);
            continue;
        }
        if elapsed_ms > cfg.deadline_ms {
            failures.push(FallbackReason::DeadlineExceeded {
                elapsed_ms,
                deadline_ms: cfg.deadline_ms,
            });
            continue;
        }
        if let Err(e) = result.plan.validate(query) {
            failures.push(FallbackReason::InvalidPlan(e.to_string()));
            continue;
        }

        return ServeResult {
            plan: result.plan,
            served_by: ServedBy::Neural,
            attempts: attempt + 1,
            backoff_ms,
            fallback_reason: None,
            attempt_failures: failures,
            predicted_ms: Some(result.predicted_ms),
        };
    }

    let reason = failures.last().cloned().unwrap_or(FallbackReason::NonFinitePrediction);
    classical(db, query, attempts, backoff_ms, failures, reason)
}

fn classical(
    db: &Database,
    query: &Query,
    attempts: usize,
    backoff_ms: f64,
    attempt_failures: Vec<FallbackReason>,
    reason: FallbackReason,
) -> ServeResult {
    ServeResult {
        plan: PgOptimizer::new(db).plan(query),
        served_by: ServedBy::Classical,
        attempts,
        backoff_ms,
        fallback_reason: Some(reason),
        attempt_failures,
        predicted_ms: None,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    fn db_and_workload() -> (Database, Vec<Query>) {
        let db = qpseeker_storage::datagen::imdb::generate(0.04, 2);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 8, seed: 7 });
        let queries = w.qeps.iter().map(|q| q.query.clone()).collect();
        (db, queries)
    }

    fn fitted_model(db: &Database) -> QPSeeker<'_> {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs);
        model
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            mcts: MctsConfig { budget_ms: 30.0, max_simulations: 60, ..MctsConfig::default() },
            deadline_ms: 5_000.0,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        }
    }

    #[test]
    fn healthy_model_serves_neurally() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &quick_cfg());
        assert_eq!(r.served_by, ServedBy::Neural);
        assert!(r.fallback_reason.is_none());
        assert!(r.predicted_ms.is_some());
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn missing_model_degrades_to_classical() {
        let (db, queries) = db_and_workload();
        let r = plan_with_fallback(&db, &queries[0], None, &quick_cfg());
        assert_eq!(r.served_by, ServedBy::Classical);
        assert_eq!(r.attempts, 0);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::ModelUnavailable(_))));
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn certain_inference_faults_force_classical_fallback() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.faults = Some(FaultConfig { inference_nan_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.served_by, ServedBy::Classical);
        assert_eq!(r.attempts, 2, "one attempt plus one retry");
        assert_eq!(r.attempt_failures.len(), 2);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::NonFinitePrediction)));
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn retry_can_recover_from_a_transient_fault() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        // Find a (seed, query) pair where attempt 0 faults but attempt 1
        // does not — the retry must then serve neurally.
        let mut cfg = quick_cfg();
        let mut found = false;
        'outer: for seed in 0..40u64 {
            let faults = FaultConfig { seed, inference_nan_p: 0.5, ..FaultConfig::default() };
            let fi = FaultInjector::new(faults.clone());
            for q in &queries {
                if fi.inference_fault(&q.id, 0).is_some() && fi.inference_fault(&q.id, 1).is_none()
                {
                    cfg.faults = Some(faults);
                    let r = plan_with_fallback(&db, q, Some(&model), &cfg);
                    assert_eq!(r.served_by, ServedBy::Neural, "retry should have recovered");
                    assert_eq!(r.attempts, 2);
                    assert_eq!(r.attempt_failures.len(), 1);
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no (seed, query) pair with a transient first-attempt fault");
    }

    #[test]
    fn stall_faults_trip_the_deadline_watchdog() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.max_retries = 0;
        cfg.faults = Some(FaultConfig { inference_stall_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.served_by, ServedBy::Classical);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::DeadlineExceeded { .. })));
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.max_retries = 3;
        // Virtual backoff only (no sleeping in tests beyond microseconds).
        cfg.backoff_base_ms = 0.001;
        cfg.faults = Some(FaultConfig { inference_nan_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.attempts, 4);
        // 0.001 + 0.002 + 0.004
        assert!((r.backoff_ms - 0.007).abs() < 1e-9, "backoff was {}", r.backoff_ms);
    }
}
