//! Graceful-degradation serving path.
//!
//! Production neural planners cannot afford to fail a query because the
//! model did: [`plan_with_fallback`] runs the MCTS planner under a deadline
//! watchdog with NaN/Inf prediction checks and bounded retry + exponential
//! backoff for transient faults, and falls back to the classical DP/greedy
//! optimizer whenever the neural path cannot produce a valid plan in time.
//! The [`ServeResult`] records which path served and every failure seen on
//! the way, so chaos tests (and operators) can audit degradation decisions.
//!
//! [`Supervisor`] lifts the single-query path to a query *stream*: a
//! bounded admission queue with deadline-aware load-shedding (every
//! rejection carries a [`ShedReason`]), and a sliding-window
//! [`CircuitBreaker`] that trips to classical-only planning when the neural
//! failure rate crosses a threshold, then recovers through half-open
//! probes. Queue dynamics run on a deterministic virtual clock, so breaker
//! and shedding behavior is exactly reproducible in tests.
//!
//! With `workers > 1` the supervisor serves admitted requests on a real
//! thread pool: each worker owns a [`PlannerSession`] over the one shared
//! model, pulling jobs off an atomic cursor. Admission control stays
//! sequential in arrival order — dispositions depend only on the virtual
//! clock, never on planning results — so shedding is deterministic for a
//! given worker count, and plan choices are deterministic for *any* worker
//! count (MCTS is seeded per query). Each request runs inside its own panic
//! boundary: a panicked request records [`Disposition::Failed`] and the
//! worker moves on. `workers <= 1` keeps the fully sequential,
//! single-threaded path for tests.

use crate::error::panic_message;
use crate::evalbroker::{BrokerConfig, BrokerMember, EvalBroker};
use crate::mcts::MctsConfig;
use crate::metrics::ServeCounters;
use crate::model::QPSeeker;
use crate::plancache::{query_fingerprint, CachedPlan, PlanCacheCtx};
use crate::registry::ModelCell;
use crate::search::strategy::{StrategyConfig, StrategyPlanner};
use crate::session::PlannerSession;
use qpseeker_engine::optimizer::PgOptimizer;
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_storage::{Database, FaultConfig, FaultInjector, InferenceFault};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Serving-path configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// MCTS settings for each neural attempt (the seed is varied per
    /// attempt so a retry explores differently). Budget, evaluation cap,
    /// seed and batch size also parameterize the beam strategy.
    pub mcts: MctsConfig,
    /// Which search runs and how candidates are scored: strategy kind
    /// (left-deep MCTS or bushy beam), risk weight λ, latent sample count,
    /// beam width. The default reproduces the pre-strategy-layer planner
    /// bit for bit.
    pub strategy: StrategyConfig,
    /// Wall-clock budget for one neural attempt, in milliseconds. An
    /// attempt that exceeds it is discarded.
    pub deadline_ms: f64,
    /// Retries after the first failed neural attempt.
    pub max_retries: usize,
    /// First backoff pause; doubles per retry. Zero disables sleeping
    /// (virtual backoff is still recorded).
    pub backoff_base_ms: f64,
    /// Optional injected inference faults (chaos testing).
    pub faults: Option<FaultConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            mcts: MctsConfig::default(),
            strategy: StrategyConfig::default(),
            deadline_ms: 1_000.0,
            max_retries: 2,
            backoff_base_ms: 0.0,
            faults: None,
        }
    }
}

/// Which optimizer produced the served plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The QPSeeker MCTS planner.
    Neural,
    /// The classical DP/greedy cost-based optimizer.
    Classical,
}

/// Why a neural attempt was rejected (and, for the last one, why the
/// query fell back to the classical optimizer).
#[derive(Debug, Clone, PartialEq)]
pub enum FallbackReason {
    /// No model was provided (e.g. checkpoint failed to load).
    ModelUnavailable(String),
    /// The cost model predicted NaN or Inf for the chosen plan.
    NonFinitePrediction,
    /// The attempt blew through its deadline.
    DeadlineExceeded { elapsed_ms: f64, deadline_ms: f64 },
    /// MCTS produced a plan that failed validation against the query.
    InvalidPlan(String),
    /// The planner panicked; the panic was contained.
    PlannerPanicked(String),
    /// The supervisor's circuit breaker is open: the neural path was not
    /// even attempted for this query.
    BreakerOpen,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::ModelUnavailable(why) => write!(f, "model unavailable: {why}"),
            FallbackReason::NonFinitePrediction => f.write_str("non-finite cost prediction"),
            FallbackReason::DeadlineExceeded { elapsed_ms, deadline_ms } => {
                write!(f, "deadline exceeded: {elapsed_ms:.1}ms > {deadline_ms:.1}ms")
            }
            FallbackReason::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
            FallbackReason::PlannerPanicked(why) => write!(f, "planner panicked: {why}"),
            FallbackReason::BreakerOpen => f.write_str("circuit breaker open"),
        }
    }
}

/// Outcome of [`plan_with_fallback`]: always carries a valid, executable
/// plan, plus the full degradation audit trail.
#[derive(Debug, Clone)]
pub struct ServeResult {
    pub plan: PlanNode,
    pub served_by: ServedBy,
    /// Neural attempts made (0 when the model was unavailable).
    pub attempts: usize,
    /// Total backoff charged between attempts, in milliseconds.
    pub backoff_ms: f64,
    /// Why the query was served classically (`None` on the neural path).
    pub fallback_reason: Option<FallbackReason>,
    /// Every failed neural attempt, in order.
    pub attempt_failures: Vec<FallbackReason>,
    /// The model's runtime prediction for the served plan (neural path only).
    pub predicted_ms: Option<f64>,
    /// True when the plan came from the fingerprint plan cache (no MCTS
    /// ran; `served_by` is still `Neural` — the cached plan was produced by
    /// the neural path under the same model epoch).
    pub cache_hit: bool,
    /// Candidate plans the successful neural attempt asked the cost model
    /// to score (0 on the classical path and on cache hits). Search is
    /// deterministic per seed and scoring is bitwise identical with or
    /// without a shared eval broker, so this count is invariant across
    /// broker modes and worker counts.
    pub evals: usize,
}

/// Plan `query`, preferring the neural planner but guaranteeing a valid
/// plan: each neural attempt is guarded by a deadline watchdog, a finite-
/// prediction check, plan validation and a panic boundary; failures retry
/// with exponential backoff (a different MCTS seed each time) up to
/// `cfg.max_retries`, after which the classical optimizer serves the query.
///
/// Convenience wrapper over [`plan_with_fallback_in`] that borrows the
/// model's internal fallback session; serving workers hold their own
/// [`PlannerSession`] and call the `_in` variant directly.
pub fn plan_with_fallback(
    db: &Database,
    query: &Query,
    model: Option<&QPSeeker>,
    cfg: &ServeConfig,
) -> ServeResult {
    match model {
        Some(m) => {
            let mut sess = m.lock_fallback_session();
            plan_with_fallback_in(db, query, model, cfg, &mut sess)
        }
        None => plan_with_fallback_in(db, query, None, cfg, &mut PlannerSession::new()),
    }
}

/// [`plan_with_fallback`] against a caller-owned [`PlannerSession`] — the
/// lock-free entry point each serving worker uses with its own session.
pub fn plan_with_fallback_in(
    db: &Database,
    query: &Query,
    model: Option<&QPSeeker>,
    cfg: &ServeConfig,
    sess: &mut PlannerSession,
) -> ServeResult {
    let injector = cfg.faults.clone().map(FaultInjector::new);
    let mut failures: Vec<FallbackReason> = Vec::new();
    let mut backoff_ms = 0.0;

    let model = match model {
        Some(m) => m,
        None => {
            let reason = FallbackReason::ModelUnavailable("no model loaded".into());
            return classical(db, query, 0, backoff_ms, vec![reason.clone()], reason);
        }
    };

    let attempts = cfg.max_retries + 1;
    for attempt in 0..attempts {
        if attempt > 0 {
            let pause = cfg.backoff_base_ms * (1 << (attempt - 1)) as f64;
            backoff_ms += pause;
            if pause > 0.0 {
                std::thread::sleep(std::time::Duration::from_micros((pause * 1_000.0) as u64));
            }
        }

        let mut mcts = cfg.mcts.clone();
        mcts.seed ^= attempt as u64;
        // Never let one attempt's internal budget exceed the watchdog.
        mcts.budget_ms = mcts.budget_ms.min(cfg.deadline_ms);
        let planner = StrategyPlanner::from_config(&cfg.strategy, mcts);

        // Injected inference faults are decided up front so a Panic fault
        // can fire *inside* the panic boundary — the contained-panic path
        // is exercised end to end, not merely simulated after the fact.
        let fault = injector.as_ref().and_then(|fi| fi.inference_fault(&query.id, attempt));

        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if fault == Some(InferenceFault::Panic) {
                panic!("injected inference panic");
            }
            planner.plan_with_session(model, query, sess)
        }));
        let mut elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;

        let mut result = match outcome {
            Ok(r) => r,
            Err(payload) => {
                failures.push(FallbackReason::PlannerPanicked(panic_message(payload)));
                continue;
            }
        };

        // Remaining fault classes apply post-hoc: a stall exhausts the
        // deadline, a NaN fault poisons the prediction.
        match fault {
            Some(InferenceFault::Stall) => elapsed_ms += cfg.deadline_ms,
            Some(InferenceFault::NanPrediction) => result.predicted_ms = f64::NAN,
            Some(InferenceFault::Panic) | None => {}
        }

        if !result.predicted_ms.is_finite() {
            failures.push(FallbackReason::NonFinitePrediction);
            continue;
        }
        if elapsed_ms > cfg.deadline_ms {
            failures.push(FallbackReason::DeadlineExceeded {
                elapsed_ms,
                deadline_ms: cfg.deadline_ms,
            });
            continue;
        }
        if let Err(e) = result.plan.validate(query) {
            failures.push(FallbackReason::InvalidPlan(e.to_string()));
            continue;
        }

        return ServeResult {
            plan: result.plan,
            served_by: ServedBy::Neural,
            attempts: attempt + 1,
            backoff_ms,
            fallback_reason: None,
            attempt_failures: failures,
            predicted_ms: Some(result.predicted_ms),
            cache_hit: false,
            evals: result.plans_evaluated,
        };
    }

    let reason = failures.last().cloned().unwrap_or(FallbackReason::NonFinitePrediction);
    classical(db, query, attempts, backoff_ms, failures, reason)
}

fn classical(
    db: &Database,
    query: &Query,
    attempts: usize,
    backoff_ms: f64,
    attempt_failures: Vec<FallbackReason>,
    reason: FallbackReason,
) -> ServeResult {
    ServeResult {
        plan: PgOptimizer::new(db).plan(query),
        served_by: ServedBy::Classical,
        attempts,
        backoff_ms,
        fallback_reason: Some(reason),
        attempt_failures,
        predicted_ms: None,
        cache_hit: false,
        evals: 0,
    }
}

/// Supervised-serving configuration: the per-query [`ServeConfig`] plus the
/// stream-level circuit-breaker and admission-control knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Per-query serving settings (deadline, retries, faults).
    pub serve: ServeConfig,
    /// Sliding-window length for the breaker's failure-rate estimate.
    pub window: usize,
    /// Outcomes required in the window before the breaker may trip.
    pub min_samples: usize,
    /// Neural failure (classical-fallback) rate in the window that opens
    /// the circuit.
    pub failure_threshold: f64,
    /// Queries served classically while open before a half-open probe.
    pub cooldown_queries: usize,
    /// Consecutive successful probes required to close the circuit again.
    pub probe_successes: usize,
    /// Bounded admission-queue depth; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Virtual per-query service time (ms) driving the admission clock.
    pub service_ms: f64,
    /// Serving workers. `<= 1` runs the deterministic single-threaded loop;
    /// larger values spawn that many real threads, each with its own
    /// [`PlannerSession`], and model that many virtual servers on the
    /// admission clock.
    pub workers: usize,
    /// Optional fingerprint plan cache this loop serves through: a lookup
    /// hit returns the cached plan without running MCTS, and every neural
    /// success is inserted, stamped with the epoch it planned under (see
    /// [`crate::plancache`] for the invalidation protocol).
    pub cache: Option<PlanCacheCtx>,
    /// Route candidate scoring through a shared [`EvalBroker`]: every
    /// worker becomes a broker member and congruent scoring requests from
    /// all of them fuse into wide forward passes. Plans are bitwise
    /// identical to broker-off serving (batched inference matches scalar
    /// row for row); only where the arithmetic runs changes. `None` keeps
    /// per-session scoring.
    pub broker: Option<BrokerConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            window: 16,
            min_samples: 8,
            failure_threshold: 0.5,
            cooldown_queries: 8,
            probe_successes: 3,
            queue_capacity: 32,
            service_ms: 10.0,
            workers: 1,
            cache: None,
            broker: None,
        }
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Neural serving; outcomes feed the sliding window.
    Closed,
    /// Classical-only serving; a cooldown counts down to a probe.
    Open,
    /// Probing: neural attempts allowed, one failure re-opens.
    HalfOpen,
}

/// Sliding-window circuit breaker over neural serving outcomes.
///
/// Closed → Open when the window holds at least `min_samples` outcomes and
/// the failure rate reaches `failure_threshold`; Open → HalfOpen after
/// `cooldown_queries` classical-only queries; HalfOpen → Closed after
/// `probe_successes` consecutive neural successes, or back to Open on any
/// probe failure.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    window: VecDeque<bool>,
    window_len: usize,
    min_samples: usize,
    threshold: f64,
    cooldown: usize,
    cooldown_left: usize,
    probes_needed: usize,
    probe_streak: usize,
    trips: usize,
    recoveries: usize,
    probes: usize,
}

impl CircuitBreaker {
    fn new(cfg: &SupervisorConfig) -> Self {
        Self {
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(cfg.window),
            window_len: cfg.window.max(1),
            min_samples: cfg.min_samples.max(1),
            threshold: cfg.failure_threshold,
            cooldown: cfg.cooldown_queries,
            cooldown_left: 0,
            probes_needed: cfg.probe_successes.max(1),
            probe_streak: 0,
            trips: 0,
            recoveries: 0,
            probes: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decide whether the next query may take the neural path. Open-state
    /// calls count down the cooldown; the call that exhausts it transitions
    /// to half-open and admits a probe.
    fn allow_neural(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                self.probes += 1;
                true
            }
            BreakerState::Open => {
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    self.probe_streak = 0;
                    self.probes += 1;
                    true
                } else {
                    self.cooldown_left -= 1;
                    false
                }
            }
        }
    }

    /// Feed back the outcome of a neural-path query (`true` = served
    /// neurally, `false` = fell back to classical).
    fn record(&mut self, neural_ok: bool) {
        match self.state {
            BreakerState::Closed => {
                if self.window.len() == self.window_len {
                    self.window.pop_front();
                }
                self.window.push_back(neural_ok);
                if self.window.len() >= self.min_samples {
                    let failures = self.window.iter().filter(|ok| !**ok).count();
                    if failures as f64 / self.window.len() as f64 >= self.threshold {
                        self.state = BreakerState::Open;
                        self.cooldown_left = self.cooldown;
                        self.window.clear();
                        self.trips += 1;
                    }
                }
            }
            BreakerState::HalfOpen => {
                if neural_ok {
                    self.probe_streak += 1;
                    if self.probe_streak >= self.probes_needed {
                        self.state = BreakerState::Closed;
                        self.probe_streak = 0;
                        self.recoveries += 1;
                    }
                } else {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.cooldown;
                    self.probe_streak = 0;
                }
            }
            // Open-state queries never reach the neural path; nothing to
            // record.
            BreakerState::Open => {}
        }
    }
}

/// Lock the shared breaker, recovering from poisoning: a worker that
/// panicked while holding the lock left valid (if mid-transition) breaker
/// state behind, and wedging the whole pool over it would be strictly
/// worse than a possibly-stale failure window.
fn lock_breaker<'a, 'b>(
    m: &'a Mutex<&'b mut CircuitBreaker>,
) -> MutexGuard<'a, &'b mut CircuitBreaker> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One query in a supervised stream, stamped with virtual arrival and
/// deadline times (absolute milliseconds on the supervisor's clock).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    pub query: Query,
    /// Virtual arrival time.
    pub arrival_ms: f64,
    /// Absolute deadline; the answer is useless after this instant.
    pub deadline_ms: f64,
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, PartialEq)]
pub enum ShedReason {
    /// The bounded admission queue was at capacity when the query arrived.
    QueueFull { depth: usize },
    /// Even served immediately the query could not meet its deadline.
    DeadlineUnmeetable { earliest_finish_ms: f64, deadline_ms: f64 },
    /// Admitted, but queue wait consumed the deadline before service began.
    ExpiredInQueue { would_finish_ms: f64, deadline_ms: f64 },
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            ShedReason::DeadlineUnmeetable { earliest_finish_ms, deadline_ms } => write!(
                f,
                "deadline unmeetable: earliest finish {earliest_finish_ms:.1}ms > deadline {deadline_ms:.1}ms"
            ),
            ShedReason::ExpiredInQueue { would_finish_ms, deadline_ms } => write!(
                f,
                "expired in queue: would finish {would_finish_ms:.1}ms > deadline {deadline_ms:.1}ms"
            ),
        }
    }
}

/// Final disposition of one supervised request.
#[derive(Debug, Clone)]
pub enum Disposition {
    /// Served (neurally or classically); the full single-query audit trail.
    Served(ServeResult),
    /// Shed without planning, with the recorded reason.
    Shed(ShedReason),
    /// Admitted, but the request panicked outside the neural planner's own
    /// boundary (e.g. in the classical fallback). The worker survived; the
    /// panic message is recorded.
    Failed(String),
}

/// One request's outcome in a [`Supervisor::run`] batch.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// `query.id` of the request.
    pub query_id: String,
    pub disposition: Disposition,
}

/// Supervised serving loop over a stream of [`QueryRequest`]s.
///
/// State (breaker, counters, virtual clock) persists across [`Self::run`]
/// calls, so a faulted batch can trip the breaker and a later clean batch
/// can demonstrate half-open recovery.
pub struct Supervisor {
    cfg: SupervisorConfig,
    breaker: CircuitBreaker,
    counters: ServeCounters,
    /// Virtual completion times of admitted-but-unfinished queries.
    in_flight: VecDeque<f64>,
    /// When each of the `workers` virtual servers frees up.
    server_free: Vec<f64>,
}

impl Supervisor {
    pub fn new(cfg: SupervisorConfig) -> Self {
        let breaker = CircuitBreaker::new(&cfg);
        let servers = cfg.workers.max(1);
        Self {
            cfg,
            breaker,
            counters: ServeCounters::default(),
            in_flight: VecDeque::new(),
            server_free: vec![0.0; servers],
        }
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Accumulated per-outcome counters, stamped with the process's active
    /// kernel ISA tier.
    pub fn counters(&self) -> ServeCounters {
        let mut c = self.counters;
        c.isa = qpseeker_nn::isa::active();
        c.breaker_trips = self.breaker.trips;
        c.breaker_recoveries = self.breaker.recoveries;
        c.probes = self.breaker.probes;
        c
    }

    /// The virtual instant at which all admitted work completes — the
    /// stream's makespan so far on the admission clock. Throughput benches
    /// divide served queries by this to get queries per virtual second.
    pub fn virtual_now_ms(&self) -> f64 {
        self.server_free.iter().copied().fold(0.0, f64::max)
    }

    /// Swap the injected fault configuration between batches (chaos tests:
    /// fault a stream to trip the breaker, clear to watch it recover).
    pub fn set_faults(&mut self, faults: Option<FaultConfig>) {
        self.cfg.serve.faults = faults;
    }

    /// Swap the plan-cache context between batches (the multi-tenant
    /// supervisor refreshes the stats version here before each run).
    pub fn set_cache(&mut self, cache: Option<PlanCacheCtx>) {
        self.cfg.cache = cache;
    }

    /// Process a batch of requests ordered by arrival time: admission
    /// control against the bounded queue, deadline-aware shedding, then
    /// service through the circuit breaker. Every admitted query is served
    /// — neurally when the breaker allows and the attempt succeeds,
    /// classically otherwise — and every shed carries its reason.
    ///
    /// Admission runs sequentially in arrival order regardless of the
    /// worker count (dispositions depend only on the virtual clock, never
    /// on planning results); admitted requests are then planned inline
    /// when `workers <= 1`, or by a pool of scoped threads each owning a
    /// [`PlannerSession`] otherwise.
    pub fn run(
        &mut self,
        db: &Database,
        model: Option<&QPSeeker>,
        requests: &[QueryRequest],
    ) -> Vec<SupervisedOutcome> {
        self.run_inner(db, Source::Fixed(model), requests, None)
    }

    /// [`Self::run`] reading the model through a [`ModelCell`] instead of a
    /// fixed reference: each request loads the cell's current
    /// `(model, epoch)` pair at the moment it starts planning and finishes
    /// on that `Arc` even if a publish or rollback lands mid-request
    /// (zero-downtime hot-swap). A worker that observes an epoch change
    /// resets its [`PlannerSession`] so no cache entry computed against the
    /// old weights scores a plan for the new ones.
    pub fn run_with_cell(
        &mut self,
        db: &Database,
        cell: &ModelCell,
        requests: &[QueryRequest],
    ) -> Vec<SupervisedOutcome> {
        self.run_inner(db, Source::Cell(cell), requests, None)
    }

    /// [`Self::run`] with externally provided broker seats, one per worker
    /// — the multi-tenant supervisor registers every lane's workers on one
    /// shared broker before any lane thread starts, then hands each lane
    /// its seats here. The caller owns the broker (and drains its stats);
    /// this supervisor's own `cfg.broker` is ignored when seats are passed.
    pub(crate) fn run_seated(
        &mut self,
        db: &Database,
        model: Option<&QPSeeker>,
        requests: &[QueryRequest],
        seats: Vec<BrokerMember>,
    ) -> Vec<SupervisedOutcome> {
        self.run_inner(db, Source::Fixed(model), requests, Some(seats))
    }

    /// [`Self::run_with_cell`] with externally provided broker seats (see
    /// [`Self::run_seated`]).
    pub(crate) fn run_with_cell_seated(
        &mut self,
        db: &Database,
        cell: &ModelCell,
        requests: &[QueryRequest],
        seats: Vec<BrokerMember>,
    ) -> Vec<SupervisedOutcome> {
        self.run_inner(db, Source::Cell(cell), requests, Some(seats))
    }

    fn run_inner(
        &mut self,
        db: &Database,
        source: Source<'_>,
        requests: &[QueryRequest],
        seats: Option<Vec<BrokerMember>>,
    ) -> Vec<SupervisedOutcome> {
        // Phase 1: admission, in arrival order.
        let mut dispositions: Vec<Option<Disposition>> = Vec::with_capacity(requests.len());
        let mut jobs: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            match self.admit(req) {
                Some(reason) => dispositions.push(Some(Disposition::Shed(reason))),
                None => {
                    dispositions.push(None);
                    jobs.push(i);
                }
            }
        }

        // Phase 2: plan every admitted request. The breaker is shared
        // behind a mutex; per-outcome tallies are sharded per worker and
        // merged after the join, so counter totals are exact regardless of
        // interleaving.
        let workers = self.cfg.workers.max(1);
        let serve_cfg = self.cfg.serve.clone();
        let cache_ctx = self.cfg.cache.clone();
        let cache_ctx = cache_ctx.as_ref();
        // Broker seats, one per worker: external (tenant mode — the caller
        // registered every lane's workers on one shared broker before any
        // lane thread started, and owns the broker's stats), or pool-local
        // (all `workers` members registered here, before any worker thread
        // spawns, so round accounting never sees a half-formed pool).
        let own_broker = if seats.is_none() { self.cfg.broker.map(EvalBroker::new) } else { None };
        let mut seats = match (seats, &own_broker) {
            (Some(s), _) => {
                assert_eq!(s.len(), workers, "one broker seat per worker");
                Some(s)
            }
            (None, Some(b)) => Some(b.register_members(workers)),
            (None, None) => None,
        };
        let breaker = Mutex::new(&mut self.breaker);
        let shards: Vec<(Vec<(usize, Disposition)>, ServeCounters)> = if workers == 1 {
            let mut sess = PlannerSession::new();
            sess.broker = seats.take().and_then(|mut s| s.pop());
            let mut tally = ServeCounters::default();
            let mut held: HeldModel = None;
            let served = jobs
                .iter()
                .map(|&i| {
                    let (model, epoch) = source.resolve(&mut held, &mut sess);
                    let d = serve_admitted(
                        db,
                        model,
                        epoch,
                        &requests[i].query,
                        &serve_cfg,
                        cache_ctx,
                        &breaker,
                        &mut sess,
                        &mut tally,
                    );
                    (i, d)
                })
                .collect();
            vec![(served, tally)]
        } else if let Some(seats) = seats.take() {
            // Broker-on pool: static round-robin partition — worker `w`
            // serves jobs[w], jobs[w+W], …. Job→worker assignment must not
            // depend on thread scheduling: which requests are in flight
            // together feeds fused-batch composition and the flush policy,
            // and the occupancy counters are part of the deterministic
            // surface. (Plan *choices* are schedule-independent either way;
            // the partition pins the counters too.)
            std::thread::scope(|s| {
                let handles: Vec<_> = seats
                    .into_iter()
                    .enumerate()
                    .map(|(w, seat)| {
                        let (jobs, breaker, serve_cfg, source) =
                            (&jobs, &breaker, &serve_cfg, source);
                        s.spawn(move || {
                            let mut sess = PlannerSession::new();
                            sess.broker = Some(seat);
                            let mut tally = ServeCounters::default();
                            let mut held: HeldModel = None;
                            let mut served = Vec::new();
                            let mut k = w;
                            while let Some(&i) = jobs.get(k) {
                                let (model, epoch) = source.resolve(&mut held, &mut sess);
                                let d = serve_admitted(
                                    db,
                                    model,
                                    epoch,
                                    &requests[i].query,
                                    serve_cfg,
                                    cache_ctx,
                                    breaker,
                                    &mut sess,
                                    &mut tally,
                                );
                                served.push((i, d));
                                k += workers;
                            }
                            // Dropping the session retires the seat: the
                            // broker stops waiting on this worker as soon
                            // as its slice of the job list is done.
                            (served, tally)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker exited through the per-request boundary"))
                    .collect()
            })
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (jobs, cursor, breaker, serve_cfg, source) =
                            (&jobs, &cursor, &breaker, &serve_cfg, source);
                        s.spawn(move || {
                            let mut sess = PlannerSession::new();
                            let mut tally = ServeCounters::default();
                            let mut held: HeldModel = None;
                            let mut served = Vec::new();
                            loop {
                                let k = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = jobs.get(k) else { break };
                                let (model, epoch) = source.resolve(&mut held, &mut sess);
                                let d = serve_admitted(
                                    db,
                                    model,
                                    epoch,
                                    &requests[i].query,
                                    serve_cfg,
                                    cache_ctx,
                                    breaker,
                                    &mut sess,
                                    &mut tally,
                                );
                                served.push((i, d));
                            }
                            (served, tally)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker exited through the per-request boundary"))
                    .collect()
            })
        };
        // `breaker` (the Mutex over `&mut self.breaker`) is done; NLL ends
        // its borrow here, so the counters below are accessible again.
        let _ = breaker;
        if let Some(b) = &own_broker {
            b.take_stats().add_to(&mut self.counters);
        }
        for (served, tally) in shards {
            self.counters.served_neural += tally.served_neural;
            self.counters.cache_hits += tally.cache_hits;
            self.counters.served_classical += tally.served_classical;
            self.counters.failed += tally.failed;
            self.counters.eval_candidates += tally.eval_candidates;
            for (i, d) in served {
                dispositions[i] = Some(d);
            }
        }

        requests
            .iter()
            .zip(dispositions)
            .map(|(req, d)| SupervisedOutcome {
                query_id: req.query.id.clone(),
                disposition: d.expect("every admitted job produced a disposition"),
            })
            .collect()
    }

    /// Admission decision for one arrival against the bounded queue and
    /// the `workers`-server virtual clock. `None` admits (and charges the
    /// earliest-free virtual server); `Some` is the shed reason.
    fn admit(&mut self, req: &QueryRequest) -> Option<ShedReason> {
        // Drain virtually-completed work as of this arrival.
        while self.in_flight.front().is_some_and(|&t| t <= req.arrival_ms) {
            self.in_flight.pop_front();
        }
        // A deadline that cannot be met even on an idle server is rejected
        // before it takes a queue slot.
        let earliest_finish = req.arrival_ms + self.cfg.service_ms;
        if earliest_finish > req.deadline_ms {
            self.counters.shed_deadline += 1;
            return Some(ShedReason::DeadlineUnmeetable {
                earliest_finish_ms: earliest_finish,
                deadline_ms: req.deadline_ms,
            });
        }
        let depth = self.in_flight.len();
        if depth >= self.cfg.queue_capacity {
            self.counters.shed_queue_full += 1;
            return Some(ShedReason::QueueFull { depth });
        }
        let server = self
            .server_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let start = req.arrival_ms.max(self.server_free[server]);
        let would_finish = start + self.cfg.service_ms;
        if would_finish > req.deadline_ms {
            // Admitted to the queue, but its slack was eaten waiting:
            // dropped at dequeue without charging the server.
            self.counters.expired_in_queue += 1;
            return Some(ShedReason::ExpiredInQueue {
                would_finish_ms: would_finish,
                deadline_ms: req.deadline_ms,
            });
        }
        self.server_free[server] = would_finish;
        self.in_flight.push_back(would_finish);
        self.counters.admitted += 1;
        None
    }
}

/// The `(model, epoch)` pair a serving worker is currently planning against
/// when reading through a [`ModelCell`].
type HeldModel = Option<(Arc<QPSeeker>, u64)>;

/// Where phase 2 gets its model from: a fixed borrow for the whole batch
/// ([`Supervisor::run`]) or a per-request load from the publication cell
/// ([`Supervisor::run_with_cell`]).
#[derive(Clone, Copy)]
enum Source<'a> {
    Fixed(Option<&'a QPSeeker>),
    Cell(&'a ModelCell),
}

impl<'a> Source<'a> {
    /// Resolve the model and its publication epoch for one request. On the
    /// cell path this pins the current `Arc` into `held` for the request's
    /// duration and resets the worker's session when the publication epoch
    /// moved since its last request. The returned epoch is the one plan-
    /// cache lookups and inserts for this request are stamped with, so the
    /// (model, epoch, cache-entry) triple is always consistent — a swap
    /// landing after this call cannot mix states. Fixed sources have no
    /// publication history and report epoch 0.
    fn resolve<'h>(
        &self,
        held: &'h mut HeldModel,
        sess: &mut PlannerSession,
    ) -> (Option<&'h QPSeeker>, u64)
    where
        'a: 'h,
    {
        match *self {
            Source::Fixed(m) => (m, 0),
            Source::Cell(cell) => {
                let (arc, epoch) = cell.load();
                let stale = held.as_ref().is_none_or(|(_, e)| *e != epoch);
                if stale {
                    sess.reset();
                    *held = Some((arc, epoch));
                }
                (held.as_ref().map(|(a, _)| a.as_ref()), epoch)
            }
        }
    }
}

/// Serve one admitted request through the plan cache and the breaker,
/// inside a per-request panic boundary. Tallies land in the caller's shard
/// (`served_neural`, `cache_hits`, `served_classical`, `failed` only).
///
/// Cache protocol: the lookup and any insert are stamped with `epoch` — the
/// publication epoch of the model this request resolved — so a hit is
/// guaranteed to have been planned by a model of exactly that epoch, and an
/// insert racing a swap produces an entry that every post-swap lookup
/// rejects. A hit bypasses MCTS *and* the breaker bookkeeping (no neural
/// attempt was made to record). Both sides also carry the request's
/// strategy stamp, so a strategy or λ change can never serve the other
/// configuration's plan.
#[allow(clippy::too_many_arguments)]
fn serve_admitted(
    db: &Database,
    model: Option<&QPSeeker>,
    epoch: u64,
    query: &Query,
    cfg: &ServeConfig,
    cache: Option<&PlanCacheCtx>,
    breaker: &Mutex<&mut CircuitBreaker>,
    sess: &mut PlannerSession,
    tally: &mut ServeCounters,
) -> Disposition {
    let strategy = cfg.strategy.cache_stamp();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let fp = cache.map(|ctx| (ctx, query_fingerprint(query)));
        if let Some((ctx, fp)) = fp {
            if let Some(hit) =
                ctx.cache.lookup(&ctx.tenant, query, fp, epoch, ctx.stats_version, strategy)
            {
                return ServeResult {
                    plan: hit.plan,
                    served_by: ServedBy::Neural,
                    attempts: 0,
                    backoff_ms: 0.0,
                    fallback_reason: None,
                    attempt_failures: Vec::new(),
                    predicted_ms: Some(hit.predicted_ms),
                    cache_hit: true,
                    evals: 0,
                };
            }
        }
        let neural_allowed = model.is_some() && lock_breaker(breaker).allow_neural();
        if neural_allowed {
            let r = plan_with_fallback_in(db, query, model, cfg, sess);
            lock_breaker(breaker).record(r.served_by == ServedBy::Neural);
            if r.served_by == ServedBy::Neural {
                if let (Some((ctx, fp)), Some(predicted_ms)) = (fp, r.predicted_ms) {
                    ctx.cache.insert(
                        &ctx.tenant,
                        query,
                        fp,
                        CachedPlan {
                            plan: r.plan.clone(),
                            predicted_ms,
                            epoch,
                            stats_version: ctx.stats_version,
                            strategy,
                        },
                    );
                }
            }
            r
        } else {
            let reason = if model.is_some() {
                FallbackReason::BreakerOpen
            } else {
                FallbackReason::ModelUnavailable("no model loaded".into())
            };
            classical(db, query, 0, 0.0, vec![reason.clone()], reason)
        }
    }));
    match attempt {
        Ok(result) => {
            tally.eval_candidates += result.evals;
            match result.served_by {
                ServedBy::Neural => {
                    tally.served_neural += 1;
                    if result.cache_hit {
                        tally.cache_hits += 1;
                    }
                }
                ServedBy::Classical => tally.served_classical += 1,
            }
            Disposition::Served(result)
        }
        Err(payload) => {
            tally.failed += 1;
            Disposition::Failed(panic_message(payload))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
    use std::sync::Arc;

    fn db_and_workload() -> (Arc<Database>, Vec<Query>) {
        let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 8, seed: 7 });
        let queries = w.qeps.iter().map(|q| q.query.clone()).collect();
        (db, queries)
    }

    fn fitted_model(db: &Arc<Database>) -> QPSeeker {
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        model
    }

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            mcts: MctsConfig { budget_ms: 30.0, max_simulations: 60, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 5_000.0,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        }
    }

    #[test]
    fn healthy_model_serves_neurally() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &quick_cfg());
        assert_eq!(r.served_by, ServedBy::Neural);
        assert!(r.fallback_reason.is_none());
        assert!(r.predicted_ms.is_some());
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn missing_model_degrades_to_classical() {
        let (db, queries) = db_and_workload();
        let r = plan_with_fallback(&db, &queries[0], None, &quick_cfg());
        assert_eq!(r.served_by, ServedBy::Classical);
        assert_eq!(r.attempts, 0);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::ModelUnavailable(_))));
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn certain_inference_faults_force_classical_fallback() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.faults = Some(FaultConfig { inference_nan_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.served_by, ServedBy::Classical);
        assert_eq!(r.attempts, 2, "one attempt plus one retry");
        assert_eq!(r.attempt_failures.len(), 2);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::NonFinitePrediction)));
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn injected_panic_is_contained_by_the_attempt_boundary() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.faults = Some(FaultConfig { inference_panic_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.served_by, ServedBy::Classical);
        assert_eq!(r.attempts, 2);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::PlannerPanicked(_))));
        assert!(r.attempt_failures.iter().all(|f| matches!(f, FallbackReason::PlannerPanicked(_))));
        assert!(r.plan.validate(&queries[0]).is_ok());
    }

    #[test]
    fn retry_can_recover_from_a_transient_fault() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        // Find a (seed, query) pair where attempt 0 faults but attempt 1
        // does not — the retry must then serve neurally.
        let mut cfg = quick_cfg();
        let mut found = false;
        'outer: for seed in 0..40u64 {
            let faults = FaultConfig { seed, inference_nan_p: 0.5, ..FaultConfig::default() };
            let fi = FaultInjector::new(faults.clone());
            for q in &queries {
                if fi.inference_fault(&q.id, 0).is_some() && fi.inference_fault(&q.id, 1).is_none()
                {
                    cfg.faults = Some(faults);
                    let r = plan_with_fallback(&db, q, Some(&model), &cfg);
                    assert_eq!(r.served_by, ServedBy::Neural, "retry should have recovered");
                    assert_eq!(r.attempts, 2);
                    assert_eq!(r.attempt_failures.len(), 1);
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no (seed, query) pair with a transient first-attempt fault");
    }

    #[test]
    fn stall_faults_trip_the_deadline_watchdog() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.max_retries = 0;
        cfg.faults = Some(FaultConfig { inference_stall_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.served_by, ServedBy::Classical);
        assert!(matches!(r.fallback_reason, Some(FallbackReason::DeadlineExceeded { .. })));
    }

    fn tight_breaker_cfg() -> SupervisorConfig {
        SupervisorConfig {
            window: 4,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown_queries: 2,
            probe_successes: 2,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn breaker_trips_then_recovers_through_half_open_probes() {
        let mut b = CircuitBreaker::new(&tight_breaker_cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..4 {
            assert!(b.allow_neural());
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        // Cooldown: two classical-only queries, then a probe is admitted.
        assert!(!b.allow_neural());
        assert!(!b.allow_neural());
        assert!(b.allow_neural(), "cooldown exhausted: probe expected");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        assert!(b.allow_neural());
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries, 1);
        assert_eq!(b.probes, 2);
    }

    #[test]
    fn probe_failure_reopens_the_circuit() {
        let mut b = CircuitBreaker::new(&tight_breaker_cfg());
        for _ in 0..4 {
            b.allow_neural();
            b.record(false);
        }
        assert!(!b.allow_neural());
        assert!(!b.allow_neural());
        assert!(b.allow_neural());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "failed probe must re-open");
        // And the cooldown restarts from the top.
        assert!(!b.allow_neural());
        assert!(!b.allow_neural());
        assert!(b.allow_neural());
    }

    #[test]
    fn closed_breaker_tolerates_failures_below_threshold() {
        let mut b = CircuitBreaker::new(&tight_breaker_cfg());
        for i in 0..32 {
            assert!(b.allow_neural());
            b.record(i % 4 != 0); // 25% failures < 50% threshold
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips, 0);
    }

    #[test]
    fn supervisor_sheds_with_recorded_reasons_instead_of_blocking() {
        let (db, queries) = db_and_workload();
        let cfg =
            SupervisorConfig { queue_capacity: 2, service_ms: 10.0, ..SupervisorConfig::default() };
        let mut sup = Supervisor::new(cfg);
        let req = |i: usize, arrival: f64, deadline: f64| QueryRequest {
            query: queries[i % queries.len()].clone(),
            arrival_ms: arrival,
            deadline_ms: deadline,
        };
        let stream = vec![
            req(0, 0.0, 1e9),   // served, finishes at 10
            req(1, 0.0, 1e9),   // served, finishes at 20
            req(2, 0.0, 1e9),   // depth 2 == capacity -> QueueFull
            req(3, 1.0, 5.0),   // cannot finish by 5 even unqueued -> DeadlineUnmeetable
            req(4, 12.0, 25.0), // feasible alone, but queue wait -> ExpiredInQueue
        ];
        let outcomes = sup.run(&db, None, &stream);
        assert!(matches!(&outcomes[0].disposition, Disposition::Served(_)));
        assert!(matches!(&outcomes[1].disposition, Disposition::Served(_)));
        assert!(matches!(
            &outcomes[2].disposition,
            Disposition::Shed(ShedReason::QueueFull { depth: 2 })
        ));
        assert!(matches!(
            &outcomes[3].disposition,
            Disposition::Shed(ShedReason::DeadlineUnmeetable { .. })
        ));
        assert!(matches!(
            &outcomes[4].disposition,
            Disposition::Shed(ShedReason::ExpiredInQueue { .. })
        ));
        let c = sup.counters();
        assert!(c.conservation_holds(), "{c}");
        assert_eq!(c.admitted, 2);
        assert_eq!(c.served_classical, 2, "no model: everything admitted serves classically");
        assert_eq!(c.shed_queue_full, 1);
        assert_eq!(c.shed_deadline, 1);
        assert_eq!(c.expired_in_queue, 1);
        assert_eq!(c.total_seen(), 5);
        // Every served query still carries a valid plan.
        for o in &outcomes {
            if let Disposition::Served(r) = &o.disposition {
                assert!(r.plan.validate(&queries[0]).is_ok() || r.attempts == 0);
            }
        }
    }

    #[test]
    fn queue_drains_as_virtual_time_advances() {
        let (db, queries) = db_and_workload();
        let cfg =
            SupervisorConfig { queue_capacity: 1, service_ms: 10.0, ..SupervisorConfig::default() };
        let mut sup = Supervisor::new(cfg);
        let req = |arrival: f64| QueryRequest {
            query: queries[0].clone(),
            arrival_ms: arrival,
            deadline_ms: 1e9,
        };
        // Second arrival while the first is in service -> shed; third after
        // the first completes -> admitted again.
        let outcomes = sup.run(&db, None, &[req(0.0), req(5.0), req(11.0)]);
        assert!(matches!(&outcomes[0].disposition, Disposition::Served(_)));
        assert!(matches!(
            &outcomes[1].disposition,
            Disposition::Shed(ShedReason::QueueFull { .. })
        ));
        assert!(matches!(&outcomes[2].disposition, Disposition::Served(_)));
        assert!(sup.counters().conservation_holds(), "{}", sup.counters());
    }

    #[test]
    fn worker_pool_serves_every_admitted_request() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let cfg = SupervisorConfig {
            serve: quick_cfg(),
            workers: 4,
            queue_capacity: 64,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(cfg);
        let stream: Vec<QueryRequest> = queries
            .iter()
            .map(|q| QueryRequest { query: q.clone(), arrival_ms: 0.0, deadline_ms: 1e9 })
            .collect();
        let outcomes = sup.run(&db, Some(&model), &stream);
        assert_eq!(outcomes.len(), stream.len());
        for o in &outcomes {
            assert!(matches!(&o.disposition, Disposition::Served(_)), "{:?}", o.disposition);
        }
        let c = sup.counters();
        assert_eq!(c.admitted, stream.len());
        assert!(c.conservation_holds(), "{c}");
        // Four virtual servers drain eight simultaneous arrivals in two
        // service slots.
        assert!((sup.virtual_now_ms() - 20.0).abs() < 1e-9, "{}", sup.virtual_now_ms());
    }

    #[test]
    fn multi_server_admission_overlaps_service() {
        let (db, queries) = db_and_workload();
        // One server sheds the second simultaneous arrival at capacity 1;
        // two servers with capacity 2 absorb both.
        let cfg = SupervisorConfig {
            workers: 2,
            queue_capacity: 2,
            service_ms: 10.0,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(cfg);
        let req = |arrival: f64| QueryRequest {
            query: queries[0].clone(),
            arrival_ms: arrival,
            deadline_ms: 15.0 + arrival,
        };
        let outcomes = sup.run(&db, None, &[req(0.0), req(0.0)]);
        assert!(matches!(&outcomes[0].disposition, Disposition::Served(_)));
        assert!(
            matches!(&outcomes[1].disposition, Disposition::Served(_)),
            "second server should absorb the simultaneous arrival"
        );
        assert!((sup.virtual_now_ms() - 10.0).abs() < 1e-9);
        assert!(sup.counters().conservation_holds(), "{}", sup.counters());
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let (db, queries) = db_and_workload();
        let model = fitted_model(&db);
        let mut cfg = quick_cfg();
        cfg.max_retries = 3;
        // Virtual backoff only (no sleeping in tests beyond microseconds).
        cfg.backoff_base_ms = 0.001;
        cfg.faults = Some(FaultConfig { inference_nan_p: 1.0, ..FaultConfig::default() });
        let r = plan_with_fallback(&db, &queries[0], Some(&model), &cfg);
        assert_eq!(r.attempts, 4);
        // 0.001 + 0.002 + 0.004
        assert!((r.backoff_ms - 0.007).abs() < 1e-9, "backoff was {}", r.backoff_ms);
    }
}
