//! Strategy-layer acceptance harness for BENCH_PR9.json.
//!
//! Two experiments on a skewed, join-heavy IMDb stream, with the cost
//! model trained on a JOB workload with plan-space variety (sampled
//! plans, not only optimizer-chosen ones — a model that has never seen a
//! bad plan cannot rank plans):
//!
//! 1. **Beam vs MCTS on large queries.** Left-deep MCTS samples a
//!    factorially large order space, so on ≥ 8-relation queries its
//!    coverage is necessarily sparse; rollout-scored beam search spends
//!    the same evaluation cap systematically near the greedy frontier
//!    over the bushy space. Acceptance: beam's predicted plan cost is
//!    ≤ MCTS on every large query and strictly better on at least one.
//!
//! 2. **Risk-aware scoring (λ > 0) vs mean-only (λ = 0).** The same
//!    skewed stream is planned under both scorings and every chosen plan
//!    is executed; ranking by `mean + λ·σ` over seeded latent samples
//!    steers away from plans the cost model is unsure about, which cuts
//!    the executed-runtime tail. Runtimes are the engine's *virtual*
//!    milliseconds, so the comparison is deterministic.
//!
//! Run with `cargo run --release -p qpseeker-bench --example strategy_bench`.

use qpseeker_core::prelude::*;
use qpseeker_engine::executor::Executor;
use qpseeker_engine::query::Query;
use qpseeker_storage::datagen::imdb;
use qpseeker_workloads::gen::QueryBuilder;
use qpseeker_workloads::{job, JobConfig, Qep};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Knobs shared by both strategies: same evaluation cap, same seed.
fn search_cfg(max_simulations: usize) -> MctsConfig {
    MctsConfig { budget_ms: 1e9, max_simulations, seed: 0x9e15, ..MctsConfig::default() }
}

/// Grow connected join-heavy queries over the IMDb FK graph. Repeated
/// tables are allowed (self-join aliases), which is how the builder
/// reaches past the schema's star topology.
fn grow_queries(
    db: &qpseeker_storage::Database,
    want: usize,
    min_rels: usize,
    target_rels: usize,
    seed: u64,
) -> Vec<Query> {
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut attempt = 0usize;
    while out.len() < want && attempt < want * 200 {
        attempt += 1;
        let (rels, joins) = qb.grow(&mut rng, "title", target_rels, true);
        if rels.len() < min_rels {
            continue;
        }
        let mut q = Query::new(format!("strat_{seed:x}_{}", out.len()));
        q.relations = rels;
        q.joins = joins;
        qb.add_filters(&mut rng, &mut q, 2);
        assert!(q.validate(db).is_ok() && q.is_connected());
        out.push(q);
    }
    assert_eq!(out.len(), want, "FK graph too small to grow {want} queries of ≥{min_rels} rels");
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let db = std::sync::Arc::new(imdb::generate(0.04, 2));
    let workload = job::generate(
        &db,
        &JobConfig {
            n_queries: 16,
            n_templates: 6,
            target_qeps: 320,
            keep_fraction: 1.0,
            ..Default::default()
        },
    );
    let refs: Vec<&Qep> = workload.qeps.iter().collect();
    let mut cfg = ModelConfig::small();
    cfg.epochs = 10;
    let mut model = QPSeeker::new(&db, cfg);
    model.fit(&refs).expect("training succeeds");

    // ---- Experiment 1: beam vs left-deep MCTS on ≥ 8-relation queries ----
    let big = grow_queries(&db, 6, 8, 10, 0xa7);
    let mcts = MctsPlanner::new(search_cfg(2048));
    let beam = StrategyPlanner::from_config(
        &StrategyConfig { kind: StrategyKind::Beam, ..Default::default() },
        search_cfg(2048),
    );
    let mut beam_wins = 0usize;
    let mut ratios = Vec::new();
    for q in &big {
        let m = mcts.plan(&model, q);
        let b = beam.plan(&model, q);
        assert!(
            b.predicted_ms <= m.predicted_ms,
            "acceptance: beam must not trail MCTS on {} ({} rels): beam {:.3} vs mcts {:.3}",
            q.id,
            q.num_relations(),
            b.predicted_ms,
            m.predicted_ms,
        );
        if b.predicted_ms < m.predicted_ms {
            beam_wins += 1;
        }
        ratios.push(b.predicted_ms / m.predicted_ms);
    }
    assert!(beam_wins >= 1, "acceptance: beam must strictly beat MCTS on ≥ 1 large query");
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;

    // ---- Experiment 2: p99 executed runtime, λ = 0.5 vs λ = 0 ----
    // Skewed stream: hot join-heavy 9-relation templates with Zipf-ish
    // repeat counts, plus a cold tail of mid-size joins. Planning is
    // deterministic, so each distinct query is planned once and weighted.
    let mut hot: Vec<Query> = Vec::new();
    for seed in [0xa7u64, 0x33, 0x111] {
        hot.extend(grow_queries(&db, 6, 5, 9, seed));
    }
    let tail = grow_queries(&db, 12, 5, 6, 0xfee1);
    let mut work: Vec<(&Query, usize)> = Vec::new();
    for (i, q) in hot.iter().enumerate() {
        work.push((q, 12usize.saturating_sub(i).max(1)));
    }
    for q in &tail {
        work.push((q, 1));
    }
    let stream_len: usize = work.iter().map(|(_, w)| w).sum();

    let exec = Executor::new(&db);
    let mut p99 = [0.0f64; 2];
    let mut mean_exec = [0.0f64; 2];
    for (i, lambda) in [0.0, 0.5].into_iter().enumerate() {
        let strat = StrategyConfig { risk_lambda: lambda, ..Default::default() };
        let planner = StrategyPlanner::from_config(&strat, search_cfg(256));
        let mut times: Vec<f64> = Vec::with_capacity(stream_len);
        for (q, wt) in &work {
            let t = exec.execute(&planner.plan(&model, q).plan).time_ms;
            times.extend(std::iter::repeat_n(t, *wt));
        }
        mean_exec[i] = times.iter().sum::<f64>() / times.len() as f64;
        times.sort_by(|a, b| a.total_cmp(b));
        p99[i] = percentile(&times, 0.99);
    }
    assert!(
        p99[1] < p99[0],
        "acceptance: λ=0.5 must reduce p99 executed runtime: {:.3} vs {:.3}",
        p99[1],
        p99[0],
    );

    println!(
        "{{\"big_queries\": {nb}, \"big_query_min_rels\": 8, \"eval_cap\": 2048, \
         \"beam_wins\": {wins}, \"beam_vs_mcts_mean_cost_ratio\": {ratio:.4}, \
         \"stream_len\": {sl}, \"risk_lambda\": 0.5, \"risk_eval_cap\": 256, \
         \"p99_exec_ms_lambda_0\": {p0:.3}, \"p99_exec_ms_lambda_0_5\": {p1:.3}, \
         \"p99_improvement_pct\": {imp:.1}, \
         \"mean_exec_ms_lambda_0\": {m0:.3}, \"mean_exec_ms_lambda_0_5\": {m1:.3}}}",
        nb = big.len(),
        wins = beam_wins,
        ratio = mean_ratio,
        sl = stream_len,
        p0 = p99[0],
        p1 = p99[1],
        imp = 100.0 * (p99[0] - p99[1]) / p99[0],
        m0 = mean_exec[0],
        m1 = mean_exec[1],
    );
}
