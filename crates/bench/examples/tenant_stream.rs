//! Mixed-tenant serving harness for BENCH_PR8.json: a 2000-request stream
//! (10x the PR 4 serve-scaling stream) interleaving IMDb-shaped and
//! Stack-shaped tenants through the multi-tenant supervisor, with the
//! fingerprint plan cache off and on. Reports per-configuration throughput
//! on the admission clock, the cache hit rate, and verifies the acceptance
//! invariant that cached serving chooses bitwise-identical plans.
//!
//! Run with `cargo run --release -p qpseeker-bench --example tenant_stream`.

use qpseeker_core::prelude::*;
use qpseeker_engine::plan::PlanNode;
use qpseeker_storage::Database;
use qpseeker_workloads::{
    stack, synthetic, tenants, Qep, StackConfig, SyntheticConfig, TenantStreamConfig,
};
use std::sync::Arc;
use std::time::Instant;

fn base_cfg() -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 12, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        failure_threshold: 2.0, // throughput, not degradation, is under test
        queue_capacity: 4096,
        service_ms: 5.0,
        workers: 2,
        ..SupervisorConfig::default()
    }
}

fn fit(db: &Arc<Database>, qeps: &[Qep]) -> Arc<QPSeeker> {
    let refs: Vec<&Qep> = qeps.iter().collect();
    let mut model = QPSeeker::new(db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");
    Arc::new(model)
}

fn fit_imdb_model(db: &Arc<Database>, seed: u64) -> Arc<QPSeeker> {
    let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed });
    fit(db, &w.qeps)
}

/// The synthetic (MSCN-shaped) generator walks IMDb fact tables, so the
/// Stack tenant trains on its native join-heavy workload instead.
fn fit_stack_model(db: &Arc<Database>, seed: u64) -> Arc<QPSeeker> {
    let w = stack::generate(db, &StackConfig { n_queries: 8, seed });
    fit(db, &w.qeps)
}

fn plans_by_tenant(outcomes: &[TenantOutcome], tenant: &str) -> Vec<PlanNode> {
    outcomes
        .iter()
        .filter(|o| o.tenant == tenant)
        .filter_map(|o| match &o.outcome.disposition {
            Disposition::Served(r) => Some(r.plan.clone()),
            _ => None,
        })
        .collect()
}

fn main() {
    let imdb = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
    let stack = Arc::new(qpseeker_storage::datagen::stack::generate(0.03, 2));
    let imdb_model = fit_imdb_model(&imdb, 3);
    let stack_model = fit_stack_model(&stack, 5);

    const TENANTS: [&str; 3] = ["movies-a", "movies-b", "forum"];
    let registry = ModelRegistry::new(usize::MAX);
    registry.register("movies-a", Arc::clone(&imdb), Arc::clone(&imdb_model));
    registry.register("movies-b", Arc::clone(&imdb), Arc::clone(&imdb_model));
    registry.register("forum", Arc::clone(&stack), Arc::clone(&stack_model));

    // 10x the PR 4 serve-scaling stream, mixed across the three tenants
    // with verbatim re-issues so the cache has something to hit.
    let items = tenants::generate_stream(
        &[("movies-a", &imdb), ("movies-b", &imdb), ("forum", &stack)],
        &TenantStreamConfig {
            n_requests: 2000,
            seed: 0xbe4c,
            mean_interarrival_ms: 2.0,
            repeat_p: 0.4,
            deadline_slack_ms: 1e9,
            pool_size: 64,
        },
    );
    let stream: Vec<TenantRequest> = items
        .into_iter()
        .map(|i| TenantRequest {
            tenant: i.tenant,
            req: QueryRequest {
                query: i.query,
                arrival_ms: i.arrival_ms,
                deadline_ms: i.deadline_ms,
            },
        })
        .collect();

    let specs = || {
        vec![
            TenantSpec::new("movies-a", Arc::clone(&imdb)),
            TenantSpec::new("movies-b", Arc::clone(&imdb)).with_weight(2.0),
            TenantSpec::new("forum", Arc::clone(&stack)),
        ]
    };

    let run = |cache: Option<Arc<PlanCache>>| {
        let mut sup =
            MultiTenantSupervisor::new(MultiTenantConfig { base: base_cfg(), cache }, specs());
        let start = Instant::now();
        let outcomes = sup.run(&registry, &stream);
        let wall = start.elapsed().as_secs_f64();
        let merged = sup.merged_counters();
        assert!(merged.conservation_holds(), "conservation broken: {merged}");
        assert_eq!(merged.admitted, stream.len(), "unsaturated stream admits everything");
        let qps = merged.admitted as f64 / (sup.virtual_now_ms() / 1e3);
        (outcomes, merged, qps, wall)
    };

    let (plain_outcomes, _, plain_qps, plain_wall) = run(None);
    let cache = Arc::new(PlanCache::new(8, 4096));
    let (cached_outcomes, cached_counters, cached_qps, cached_wall) = run(Some(Arc::clone(&cache)));

    let mut plans_identical = true;
    for t in TENANTS {
        plans_identical &=
            plans_by_tenant(&plain_outcomes, t) == plans_by_tenant(&cached_outcomes, t);
    }
    let stats = cache.stats();
    let hit_rate = stats.hit_rate();

    println!(
        "{{\"stream_queries\": {n}, \"tenants\": {t}, \
         \"virtual_qps_cache_off\": {q0:.1}, \"virtual_qps_cache_on\": {q1:.1}, \
         \"wall_s_cache_off\": {w0:.2}, \"wall_s_cache_on\": {w1:.2}, \
         \"wall_speedup_cache_on\": {sp:.2}, \
         \"cache_hit_rate\": {hr:.3}, \"cache_hits\": {hits}, \
         \"plans_identical_cache_on_off\": {ident}}}",
        n = stream.len(),
        t = TENANTS.len(),
        q0 = plain_qps,
        q1 = cached_qps,
        w0 = plain_wall,
        w1 = cached_wall,
        sp = plain_wall / cached_wall.max(1e-9),
        hr = hit_rate,
        hits = cached_counters.cache_hits,
        ident = plans_identical,
    );
    assert!(
        cached_counters.cache_hits > 0,
        "acceptance: repeat_p=0.4 over 2000 requests must produce cache hits"
    );
    assert!(plans_identical, "acceptance: cache hits must be bitwise identical to cache-miss MCTS");
}
