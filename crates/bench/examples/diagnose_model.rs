//! Diagnostic: does the trained cost model rank plans usefully on held-out queries?
use qpseeker_core::prelude::*;
use qpseeker_engine::prelude::*;
use qpseeker_workloads::{job, JobConfig, Qep, SamplingConfig};

fn main() {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.06, 77));
    let workload = job::generate(
        &db,
        &JobConfig {
            n_queries: 16,
            n_templates: 6,
            target_qeps: 320,
            keep_fraction: 1.0,
            ..Default::default()
        },
    );
    println!("workload {} qeps", workload.num_qeps());
    let (train, eval) = workload.split(0.75, true);
    let mut cfg = match std::env::var("CFG").as_deref() {
        Ok("bench") => ModelConfig::bench(),
        _ => ModelConfig::small(),
    };
    cfg.epochs = std::env::var("EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
    cfg.node_loss_weight = std::env::var("NODEW").ok().and_then(|v| v.parse().ok()).unwrap_or(0.1);
    if let Ok(l) = std::env::var("LAT") {
        cfg.vae_latent = l.parse().unwrap();
    }
    if let Ok(b) = std::env::var("BETA") {
        cfg.beta = b.parse().unwrap();
    }
    let mut model = QPSeeker::new(&db, cfg);
    let rep = model.fit(&train).expect("training succeeds");
    println!("loss {:?} -> {:?}", rep.epoch_losses.first(), rep.epoch_losses.last());

    let ex = Executor::new(&db);
    let mut seen = std::collections::HashSet::new();
    let queries: Vec<&Query> = eval
        .iter()
        .filter(|q| seen.insert(q.query.id.clone()))
        .map(|q: &&Qep| &q.query)
        .take(5)
        .collect();
    for q in queries {
        // sample candidate plans uniformly
        let plans = qpseeker_workloads::sample_plans(
            &db,
            q,
            &SamplingConfig {
                max_orderings: 30,
                operators_per_ordering: 2,
                keep_fraction: 1.0,
                seed: 5,
            },
        );
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for sp in plans.iter().take(40) {
            preds.push(model.predict_runtime_ms(q, &sp.plan));
            actuals.push(ex.execute(&sp.plan).time_ms);
        }
        // rank correlation (Spearman via rank vectors)
        let rank = |v: &Vec<f64>| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
            let mut r = vec![0.0; v.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        };
        let rp = rank(&preds);
        let ra = rank(&actuals);
        let n = rp.len() as f64;
        let mp = rp.iter().sum::<f64>() / n;
        let ma = ra.iter().sum::<f64>() / n;
        let cov = rp.iter().zip(&ra).map(|(a, b)| (a - mp) * (b - ma)).sum::<f64>();
        let sp_ = (rp.iter().map(|a| (a - mp).powi(2)).sum::<f64>()
            * ra.iter().map(|b| (b - ma).powi(2)).sum::<f64>())
        .sqrt();
        let rho = cov / sp_.max(1e-9);
        // model-argmin plan actual time vs best actual vs median actual
        let amin = preds.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let mut sorted = actuals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{}: joins={} rho={:.2} argmin_actual={:.1} best={:.1} median={:.1} worst={:.1}",
            q.id,
            q.num_joins(),
            rho,
            actuals[amin],
            sorted[0],
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1]
        );
    }
}
