//! Serving-throughput scaling harness for BENCH_PR4.json and, since PR 10,
//! the continuous-batching acceptance run for BENCH_PR10.json.
//!
//! Part 1 (PR 4): the same saturated request stream through the supervised
//! serving loop at 1, 2 and 4 workers, measuring queries/sec on the
//! admission clock (virtual makespan) plus wall time, and verifying the
//! acceptance invariant that plan choices are bitwise identical across
//! worker counts.
//!
//! Part 2 (PR 10): a mixed-tenant stream — three lanes sharing one model
//! `Arc`, one lane risk-aware (λ=0.5), plan cache off, small per-session
//! `batch_eval` — run broker-off and broker-on. The broker must deliver
//! ≥ 1.4x wall-clock throughput and ≥ 2x the per-session batch occupancy
//! while serving bitwise-identical plans. Results land in BENCH_PR10.json
//! at the repo root.
//!
//! Run with `cargo run --release -p qpseeker-bench --example serve_scaling`.

use qpseeker_core::prelude::*;
use qpseeker_engine::plan::PlanNode;
use qpseeker_storage::Database;
use qpseeker_workloads::{synthetic, tenants, Qep, SyntheticConfig, TenantStreamConfig};
use std::sync::Arc;
use std::time::Instant;

fn pool_cfg(workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 16, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        failure_threshold: 2.0, // never trips: scaling, not degradation, is under test
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        ..SupervisorConfig::default()
    }
}

fn main() {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 12, seed: 3 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");

    // Saturated stream: 200 queries all arriving at t=0 so the pool's
    // virtual servers are never idle.
    let requests: Vec<QueryRequest> =
        synthetic::generate_queries(&db, &SyntheticConfig { n_queries: 200, seed: 0xbe4c })
            .into_iter()
            .map(|(query, _sql)| QueryRequest { query, arrival_ms: 0.0, deadline_ms: 1e12 })
            .collect();

    let mut reference_plans: Option<Vec<PlanNode>> = None;
    let mut qps = Vec::new();
    let mut wall_s = Vec::new();
    let mut plans_identical = true;
    for workers in [1usize, 2, 4] {
        let mut sup = Supervisor::new(pool_cfg(workers));
        let start = Instant::now();
        let outcomes = sup.run(&db, Some(&model), &requests);
        let wall = start.elapsed().as_secs_f64();
        let served = sup.counters().served_neural + sup.counters().served_classical;
        assert_eq!(served, requests.len(), "saturated stream must serve everything");
        let makespan_s = sup.virtual_now_ms() / 1e3;
        qps.push(served as f64 / makespan_s);
        wall_s.push(wall);
        let plans: Vec<PlanNode> = outcomes
            .into_iter()
            .map(|o| match o.disposition {
                Disposition::Served(r) => r.plan,
                other => panic!("query {}: not served: {other:?}", o.query_id),
            })
            .collect();
        match &reference_plans {
            None => reference_plans = Some(plans),
            Some(reference) => plans_identical &= reference == &plans,
        }
    }

    let speedup = qps[2] / qps[0];
    println!(
        "{{\"stream_queries\": {n}, \"virtual_qps_workers_1\": {q1:.1}, \
         \"virtual_qps_workers_2\": {q2:.1}, \"virtual_qps_workers_4\": {q4:.1}, \
         \"speedup_4_vs_1\": {speedup:.2}, \"plans_identical_across_worker_counts\": {ident}, \
         \"wall_s_workers_1\": {w1:.2}, \"wall_s_workers_2\": {w2:.2}, \"wall_s_workers_4\": {w4:.2}}}",
        n = requests.len(),
        q1 = qps[0],
        q2 = qps[1],
        q4 = qps[2],
        ident = plans_identical,
        w1 = wall_s[0],
        w2 = wall_s[1],
        w4 = wall_s[2],
    );
    assert!(speedup >= 2.5, "acceptance: expected >= 2.5x at 4 workers, got {speedup:.2}x");
    assert!(plans_identical, "acceptance: plan choices must not depend on the worker count");

    continuous_batching_bench(&db);
}

/// PR 10 acceptance: cross-request continuous batching on a mixed-tenant
/// stream. Per-session batches are deliberately small (`batch_eval = 2`)
/// so per-forward fixed cost dominates broker-off scoring; the broker then
/// wins by fusing rows from every lane into wide GEMMs.
const BATCH_EVAL: usize = 2;

fn brokered_cfg(broker: Option<BrokerConfig>) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            // Simulation-capped, never wall-clock: the eval volume per query
            // is deterministic, and at 400 rollouts the candidate scoring
            // dominates the wall time — the regime continuous batching is
            // for.
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 400, ..MctsConfig::default() },
            strategy: StrategyConfig { batch_eval: Some(BATCH_EVAL), ..StrategyConfig::default() },
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        failure_threshold: 2.0, // throughput, not degradation, is under test
        queue_capacity: 4096,
        service_ms: 5.0,
        workers: 4,
        broker,
        ..SupervisorConfig::default()
    }
}

fn continuous_batching_bench(db: &Arc<Database>) {
    // A serving-tier model whose weight panels overflow the per-core cache:
    // small-batch inference is then memory-bound, so an un-fused forward
    // re-streams every panel from DRAM — exactly the per-call fixed cost
    // continuous batching amortizes. (The test-tier configs are cache
    // resident end to end and have nothing to amortize.) Trained for two
    // epochs only: the bench asserts determinism, not plan quality.
    let config = ModelConfig {
        set_mlp_hidden: 192,
        set_mlp_out: 192,
        set_mlp_layers: 2,
        plan_node_out: 384,
        attn_heads: 4,
        attn_head_dim: 96,
        vae_layers: 4,
        epochs: 2,
        ..ModelConfig::bench()
    };
    let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(db, config);
    model.fit(&refs).expect("training succeeds");
    let model = Arc::new(model);

    const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];
    let registry = ModelRegistry::new(usize::MAX);
    for t in TENANTS {
        registry.register(t, Arc::clone(db), Arc::clone(&model));
    }
    // A saturated mixed-tenant stream, plan cache off, no repeats: every
    // request pays full search, so scoring dominates the wall clock.
    let items = tenants::generate_stream(
        &[("alpha", db), ("beta", db), ("gamma", db)],
        &TenantStreamConfig {
            n_requests: 150,
            seed: 0xbea7,
            mean_interarrival_ms: 2.0,
            repeat_p: 0.0,
            deadline_slack_ms: 1e9,
            pool_size: 50,
        },
    );
    let stream: Vec<TenantRequest> = items
        .into_iter()
        .map(|i| TenantRequest {
            tenant: i.tenant,
            req: QueryRequest {
                query: i.query,
                arrival_ms: i.arrival_ms,
                deadline_ms: i.deadline_ms,
            },
        })
        .collect();

    let specs = || {
        vec![
            TenantSpec::new("alpha", Arc::clone(db)),
            // λ = 0.5 on one lane: risk-aware scoring mixes multi-sample
            // submissions into the same broker, bucketed separately.
            TenantSpec::new("beta", Arc::clone(db)).with_strategy(StrategyConfig {
                risk_lambda: 0.5,
                batch_eval: Some(BATCH_EVAL),
                ..StrategyConfig::default()
            }),
            TenantSpec::new("gamma", Arc::clone(db)).with_weight(2.0),
        ]
    };
    let run = |broker: Option<BrokerConfig>| {
        let mut sup = MultiTenantSupervisor::new(
            MultiTenantConfig { base: brokered_cfg(broker), cache: None },
            specs(),
        );
        let start = Instant::now();
        let outcomes = sup.run(&registry, &stream);
        let wall = start.elapsed().as_secs_f64();
        let merged = sup.merged_counters();
        assert!(merged.conservation_holds(), "conservation broken: {merged}");
        assert_eq!(merged.admitted, stream.len(), "unsaturated stream admits everything");
        let plans: Vec<PlanNode> = outcomes
            .into_iter()
            .map(|o| match o.outcome.disposition {
                Disposition::Served(r) => r.plan,
                other => panic!("query {}: not served: {other:?}", o.outcome.query_id),
            })
            .collect();
        (plans, merged, wall)
    };

    // Warm-up (untimed) so page-cache and allocator state do not favour
    // whichever configuration happens to run second.
    let _ = run(None);

    let (plans_off, off, wall_off) = run(None);
    // A longer micro-batch window than the serving default: buckets
    // accumulate rows across rounds while other buckets drain, so fused
    // passes run wider. (Virtual rounds, so this costs no latency floor.)
    let (plans_on, on, wall_on) =
        run(Some(BrokerConfig { batch_target: 64, batch_window_us: 1000 }));

    assert_eq!(plans_off, plans_on, "acceptance: the broker must not change any plan");
    assert_eq!(
        on.eval_candidates, off.eval_candidates,
        "acceptance: fusion must not change how many candidates were scored"
    );

    let qps_off = stream.len() as f64 / wall_off;
    let qps_on = stream.len() as f64 / wall_on;
    let speedup = qps_on / qps_off;
    // Candidate plans scored per 100 ms of wall time — the "how much search
    // the same hardware buys" view of the same measurement.
    let plans_per_100ms_off = off.eval_candidates as f64 / (wall_off * 10.0);
    let plans_per_100ms_on = on.eval_candidates as f64 / (wall_on * 10.0);
    let occupancy = on.fused_occupancy_mean();

    let json = format!(
        "{{\"stream_queries\": {n}, \"tenants\": {t}, \"workers_per_lane\": 4, \
         \"batch_eval\": {be}, \"risk_lambda_beta\": 0.5, \
         \"wall_qps_broker_off\": {qoff:.1}, \"wall_qps_broker_on\": {qon:.1}, \
         \"speedup_broker_on_vs_off\": {speedup:.2}, \
         \"plans_per_100ms_broker_off\": {poff:.0}, \"plans_per_100ms_broker_on\": {pon:.0}, \
         \"eval_candidates\": {ec}, \"fused_batches\": {fb}, \
         \"mean_fused_occupancy\": {occ:.2}, \"max_fused_occupancy\": {occ_max}, \
         \"flush_size\": {fs}, \"flush_deadline\": {fd}, \
         \"plans_identical_broker_on_vs_off\": true}}",
        n = stream.len(),
        t = TENANTS.len(),
        be = BATCH_EVAL,
        qoff = qps_off,
        qon = qps_on,
        poff = plans_per_100ms_off,
        pon = plans_per_100ms_on,
        ec = on.eval_candidates,
        fb = on.fused_batches,
        occ = occupancy,
        occ_max = on.fused_occupancy_max,
        fs = on.broker_flush_size,
        fd = on.broker_flush_deadline,
    );
    println!("{json}");
    if let Err(e) = std::fs::write("BENCH_PR10.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_PR10.json: {e}");
    }

    assert!(
        speedup >= 1.4,
        "acceptance: continuous batching must buy >= 1.4x wall throughput, got {speedup:.2}x"
    );
    assert!(
        occupancy >= 2.0 * BATCH_EVAL as f64,
        "acceptance: mean fused occupancy {occupancy:.2} must be >= 2x batch_eval ({BATCH_EVAL})"
    );
}
