//! Serving-throughput scaling harness for BENCH_PR4.json: runs the same
//! saturated request stream through the supervised serving loop at 1, 2
//! and 4 workers, measures queries/sec on the admission clock (virtual
//! makespan) plus wall time, and verifies the acceptance invariant that
//! plan choices are bitwise identical across worker counts.
//!
//! Run with `cargo run --release -p qpseeker-bench --example serve_scaling`.

use qpseeker_core::prelude::*;
use qpseeker_engine::plan::PlanNode;
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::time::Instant;

fn pool_cfg(workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 16, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        failure_threshold: 2.0, // never trips: scaling, not degradation, is under test
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        ..SupervisorConfig::default()
    }
}

fn main() {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 12, seed: 3 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");

    // Saturated stream: 200 queries all arriving at t=0 so the pool's
    // virtual servers are never idle.
    let requests: Vec<QueryRequest> =
        synthetic::generate_queries(&db, &SyntheticConfig { n_queries: 200, seed: 0xbe4c })
            .into_iter()
            .map(|(query, _sql)| QueryRequest { query, arrival_ms: 0.0, deadline_ms: 1e12 })
            .collect();

    let mut reference_plans: Option<Vec<PlanNode>> = None;
    let mut qps = Vec::new();
    let mut wall_s = Vec::new();
    let mut plans_identical = true;
    for workers in [1usize, 2, 4] {
        let mut sup = Supervisor::new(pool_cfg(workers));
        let start = Instant::now();
        let outcomes = sup.run(&db, Some(&model), &requests);
        let wall = start.elapsed().as_secs_f64();
        let served = sup.counters().served_neural + sup.counters().served_classical;
        assert_eq!(served, requests.len(), "saturated stream must serve everything");
        let makespan_s = sup.virtual_now_ms() / 1e3;
        qps.push(served as f64 / makespan_s);
        wall_s.push(wall);
        let plans: Vec<PlanNode> = outcomes
            .into_iter()
            .map(|o| match o.disposition {
                Disposition::Served(r) => r.plan,
                other => panic!("query {}: not served: {other:?}", o.query_id),
            })
            .collect();
        match &reference_plans {
            None => reference_plans = Some(plans),
            Some(reference) => plans_identical &= reference == &plans,
        }
    }

    let speedup = qps[2] / qps[0];
    println!(
        "{{\"stream_queries\": {n}, \"virtual_qps_workers_1\": {q1:.1}, \
         \"virtual_qps_workers_2\": {q2:.1}, \"virtual_qps_workers_4\": {q4:.1}, \
         \"speedup_4_vs_1\": {speedup:.2}, \"plans_identical_across_worker_counts\": {ident}, \
         \"wall_s_workers_1\": {w1:.2}, \"wall_s_workers_2\": {w2:.2}, \"wall_s_workers_4\": {w4:.2}}}",
        n = requests.len(),
        q1 = qps[0],
        q2 = qps[1],
        q4 = qps[2],
        ident = plans_identical,
        w1 = wall_s[0],
        w2 = wall_s[1],
        w4 = wall_s[2],
    );
    assert!(speedup >= 2.5, "acceptance: expected >= 2.5x at 4 workers, got {speedup:.2}x");
    assert!(plans_identical, "acceptance: plan choices must not depend on the worker count");
}
