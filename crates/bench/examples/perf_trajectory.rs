//! Perf-trajectory harness: measures the inference-path hot spots (matmul
//! kernel, one cost-model forward, MCTS plans-evaluated-per-100ms) and
//! writes a machine-readable BENCH_PR<N>.json at repo root.
//!
//! Run with `cargo run --release -p qpseeker-bench --example perf_trajectory`.
//!
//! The kernel ISA tier is selected once per process (`qpseeker_nn::isa`),
//! so per-tier numbers come from re-executing this binary as a child with
//! `QPS_FORCE_ISA` set (`QPS_BENCH_CHILD=1` marks the child role). Each
//! child also fingerprints the plans a simulation-capped search chooses —
//! across forced ISAs and across root-parallel shard counts 1/2/4 — so the
//! merged report proves the speedups changed throughput, never answers.

use qpseeker_core::prelude::*;
use qpseeker_engine::query::{ColRef, JoinPred, Query, RelRef};
use qpseeker_nn::isa::Isa;
use qpseeker_nn::tensor::Tensor;
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::hint::black_box;
use std::time::Instant;

fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup, then the minimum over 5 timed repetitions.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Standard workload: 5-way star joins over the IMDb FK schema (the same
/// shape as the optimizer bench), where the left-deep plan space is far
/// larger than the budget so plans-evaluated measures search throughput.
fn star_queries() -> Vec<Query> {
    (0..5)
        .map(|i| {
            let mut q = Query::new(format!("star-{i}"));
            for t in ["title", "movie_info", "movie_keyword", "cast_info", "movie_companies"] {
                q.relations.push(RelRef::new(t));
            }
            for t in ["movie_info", "movie_keyword", "cast_info", "movie_companies"] {
                q.joins.push(JoinPred {
                    left: ColRef::new(t, "movie_id"),
                    right: ColRef::new("title", "id"),
                });
            }
            q
        })
        .collect()
}

/// Combined fingerprint of the plans a deterministic (simulation-capped)
/// search picks for every star query under `parallel_sims` shards.
fn plan_fingerprint(model: &QPSeeker, queries: &[Query], parallel_sims: usize) -> u64 {
    let mut all = String::new();
    for q in queries {
        let planner = MctsPlanner::new(MctsConfig {
            budget_ms: 1e9,
            max_simulations: 300,
            seed: 0xacc5,
            parallel_sims,
            ..Default::default()
        });
        let r = planner.plan(model, q);
        all.push_str(&format!("{:?}\n", r.plan));
    }
    fnv(all.as_bytes())
}

/// Child role: measure under the ISA tier `QPS_FORCE_ISA` selected and
/// print one JSON line on stdout.
fn child() {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.06, 1));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 40, seed: 1 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");
    model.store.warm_packed();

    // --- matmul kernel (sizes shaped like the small-config VAE encoder) ---
    let a = Tensor::from_vec(8, 96, (0..8 * 96).map(|i| (i as f32 * 0.37).sin()).collect());
    let b = Tensor::from_vec(96, 96, (0..96 * 96).map(|i| (i as f32 * 0.11).cos()).collect());
    let matmul_ms = time_ms(200, || {
        black_box(black_box(&a).matmul(black_box(&b)));
    });

    // --- one full model forward (predict) on a join query ---
    let qep = w.qeps.iter().find(|q| q.query.num_joins() >= 1).expect("join query");
    let predict_ms = time_ms(50, || {
        black_box(model.predict(black_box(&qep.query), black_box(&qep.plan)));
    });

    // --- batched forward: 16 candidates in one pass (per-plan cost) ---
    let pool: Vec<&qpseeker_engine::plan::PlanNode> = vec![&qep.plan; 16];
    let predict_batch_ms = time_ms(50, || {
        black_box(model.predict_batch(black_box(&qep.query), black_box(&pool)));
    }) / 16.0;

    // --- MCTS throughput: plans evaluated under a 100 ms budget ---
    let queries = star_queries();
    let run_mcts = |batch_eval: usize| -> (f64, f64) {
        // Best of 3 repetitions: a wall-clock-budget search measures machine
        // capability, and a background-load hiccup only ever removes plans.
        let mut best = (0.0f64, 0.0f64);
        for _rep in 0..3 {
            let mut total_plans = 0usize;
            let mut total_sims = 0usize;
            for q in &queries {
                let planner = MctsPlanner::new(MctsConfig {
                    budget_ms: 100.0,
                    max_simulations: usize::MAX,
                    seed: 0xacc5,
                    batch_eval,
                    ..Default::default()
                });
                let r = planner.plan(&model, q);
                total_plans += r.plans_evaluated;
                total_sims += r.simulations;
            }
            let plans = total_plans as f64 / queries.len() as f64;
            if plans > best.0 {
                best = (plans, total_sims as f64 / queries.len() as f64);
            }
        }
        best
    };
    // Scalar path first (batch_eval = 1), then the default batched path.
    let (plans_scalar, _) = run_mcts(1);
    let (plans_per_100ms, sims_per_100ms) = run_mcts(MctsConfig::default().batch_eval);

    // --- answer invariance: classic plan fingerprint + shard counts ---
    let fp = plan_fingerprint(&model, &queries, 0);
    let fp_shards: Vec<u64> =
        [1usize, 2, 4].iter().map(|&s| plan_fingerprint(&model, &queries, s)).collect();
    let shards_equal = fp_shards.windows(2).all(|w| w[0] == w[1]);
    assert!(shards_equal, "shard counts disagreed: {fp_shards:x?}");

    println!(
        "{{\"isa\": \"{}\", \"matmul_8x96x96_ms\": {matmul_ms:.6}, \
         \"predict_ms\": {predict_ms:.4}, \
         \"predict_batch16_per_plan_ms\": {predict_batch_ms:.4}, \
         \"mcts_plans_per_100ms\": {plans_per_100ms:.1}, \
         \"mcts_plans_per_100ms_scalar\": {plans_scalar:.1}, \
         \"mcts_sims_per_100ms\": {sims_per_100ms:.1}, \
         \"plan_fp\": \"{fp:016x}\", \
         \"plan_fp_shards\": \"{:016x}\", \
         \"shards_bitwise_equal\": {shards_equal}}}",
        qpseeker_nn::isa::active().name(),
        fp_shards[0],
    );
}

fn field<'v>(v: &'v serde::Value, name: &str) -> &'v serde::Value {
    v.as_obj()
        .and_then(|o| o.iter().find(|(k, _)| k == name))
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("child JSON missing field {name}"))
}

fn main() {
    if std::env::var("QPS_BENCH_CHILD").is_ok() {
        child();
        return;
    }

    // Parent: one child process per CPU-supported tier, worst to best.
    let exe = std::env::current_exe().expect("current_exe");
    let mut children: Vec<(Isa, String, serde::Value)> = Vec::new();
    for isa in Isa::supported() {
        eprintln!("benchmarking tier {} ...", isa.name());
        let out = std::process::Command::new(&exe)
            .env("QPS_FORCE_ISA", isa.name())
            .env("QPS_BENCH_CHILD", "1")
            .output()
            .expect("spawn bench child");
        assert!(
            out.status.success(),
            "child {} failed:\n{}",
            isa.name(),
            String::from_utf8_lossy(&out.stderr)
        );
        let line = String::from_utf8(out.stdout).expect("child emits utf8").trim().to_string();
        let parsed = serde_json::parse(&line).expect("child emits one JSON object");
        children.push((isa, line, parsed));
    }

    // Answer invariance across tiers: every child must have chosen the
    // same plans (predicted floats differ across tiers; argmins must not).
    let fps: Vec<&str> =
        children.iter().map(|(_, _, v)| field(v, "plan_fp").as_str().unwrap()).collect();
    let isas_equal = fps.windows(2).all(|w| w[0] == w[1]);
    assert!(isas_equal, "forced ISAs chose different plans: {fps:?}");
    let shards_equal = children
        .iter()
        .all(|(_, _, v)| matches!(field(v, "shards_bitwise_equal"), serde::Value::Bool(true)));

    let (mut best_isa, mut best_plans) = ("scalar", f64::MIN);
    for (isa, _, v) in &children {
        let plans = field(v, "mcts_plans_per_100ms").as_f64().unwrap();
        if plans > best_plans {
            best_plans = plans;
            best_isa = isa.name();
        }
    }
    const PR5_BASELINE: f64 = 5049.6;

    let per_isa: Vec<String> =
        children.iter().map(|(isa, line, _)| format!("\"{}\": {line}", isa.name())).collect();
    let json = format!(
        "{{\"best_isa\": \"{best_isa}\", \"mcts_plans_per_100ms\": {best_plans:.1}, \
         \"speedup_vs_pr5\": {:.2}, \
         \"plans_bitwise_equal_across_isas\": {isas_equal}, \
         \"shards_bitwise_equal\": {shards_equal}, \
         \"per_isa\": {{{}}}}}",
        best_plans / PR5_BASELINE,
        per_isa.join(", "),
    );
    println!("{json}");
    // Persist the trajectory point for the PR record.
    if let Err(e) = std::fs::write("BENCH_PR7.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_PR7.json: {e}");
    }
}
