//! Perf-trajectory harness: measures the inference-path hot spots (matmul
//! kernel, one cost-model forward, MCTS plans-evaluated-per-100ms) and
//! prints a machine-readable JSON blob for BENCH_PR<N>.json at repo root.
//!
//! Run with `cargo run --release -p qpseeker-bench --example perf_trajectory`.

use qpseeker_core::prelude::*;
use qpseeker_nn::tensor::Tensor;
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::hint::black_box;
use std::time::Instant;

fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup, then the minimum over 5 timed repetitions.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

fn main() {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.06, 1));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 40, seed: 1 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");

    // --- matmul kernel (sizes shaped like the small-config VAE encoder) ---
    let a = Tensor::from_vec(8, 96, (0..8 * 96).map(|i| (i as f32 * 0.37).sin()).collect());
    let b = Tensor::from_vec(96, 96, (0..96 * 96).map(|i| (i as f32 * 0.11).cos()).collect());
    let matmul_ms = time_ms(200, || {
        black_box(black_box(&a).matmul(black_box(&b)));
    });

    // --- one full model forward (predict) on a join query ---
    let qep = w.qeps.iter().find(|q| q.query.num_joins() >= 1).expect("join query");
    let predict_ms = time_ms(50, || {
        black_box(model.predict(black_box(&qep.query), black_box(&qep.plan)));
    });

    // --- batched forward: 16 candidates in one pass (per-plan cost) ---
    let pool: Vec<&qpseeker_engine::plan::PlanNode> = vec![&qep.plan; 16];
    let predict_batch_ms = time_ms(50, || {
        black_box(model.predict_batch(black_box(&qep.query), black_box(&pool)));
    }) / 16.0;

    // --- MCTS throughput: plans evaluated under a 100 ms budget ---
    // Standard workload: 5-way star joins over the IMDb FK schema (the same
    // shape as the optimizer bench), where the left-deep plan space is far
    // larger than the budget so plans-evaluated measures search throughput.
    use qpseeker_engine::query::{ColRef, JoinPred, Query, RelRef};
    let queries: Vec<Query> = (0..5)
        .map(|i| {
            let mut q = Query::new(format!("star-{i}"));
            for t in ["title", "movie_info", "movie_keyword", "cast_info", "movie_companies"] {
                q.relations.push(RelRef::new(t));
            }
            for t in ["movie_info", "movie_keyword", "cast_info", "movie_companies"] {
                q.joins.push(JoinPred {
                    left: ColRef::new(t, "movie_id"),
                    right: ColRef::new("title", "id"),
                });
            }
            q
        })
        .collect();
    let run_mcts = |batch_eval: usize| -> (f64, f64) {
        // Best of 3 repetitions: a wall-clock-budget search measures machine
        // capability, and a background-load hiccup only ever removes plans.
        let mut best = (0.0f64, 0.0f64);
        for _rep in 0..3 {
            let mut total_plans = 0usize;
            let mut total_sims = 0usize;
            for q in &queries {
                let planner = MctsPlanner::new(MctsConfig {
                    budget_ms: 100.0,
                    max_simulations: usize::MAX,
                    seed: 0xacc5,
                    batch_eval,
                    ..Default::default()
                });
                let r = planner.plan(&model, q);
                total_plans += r.plans_evaluated;
                total_sims += r.simulations;
            }
            let plans = total_plans as f64 / queries.len() as f64;
            if plans > best.0 {
                best = (plans, total_sims as f64 / queries.len() as f64);
            }
        }
        best
    };
    // Scalar path first (batch_eval = 1), then the default batched path.
    let (plans_scalar, _) = run_mcts(1);
    let (plans_per_100ms, sims_per_100ms) = run_mcts(MctsConfig::default().batch_eval);

    let json = format!(
        "{{\"matmul_8x96x96_ms\": {matmul_ms:.6}, \"predict_ms\": {predict_ms:.4}, \
         \"predict_batch16_per_plan_ms\": {predict_batch_ms:.4}, \
         \"mcts_plans_per_100ms\": {plans_per_100ms:.1}, \
         \"mcts_plans_per_100ms_scalar\": {plans_scalar:.1}, \
         \"mcts_sims_per_100ms\": {sims_per_100ms:.1}}}"
    );
    println!("{json}");
    // Persist the trajectory point for the PR record.
    if let Err(e) = std::fs::write("BENCH_PR5.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_PR5.json: {e}");
    }
}
