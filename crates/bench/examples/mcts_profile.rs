//! Profiling driver: train once, then spin the MCTS hot loop long enough
//! for a sampling profiler to see it clearly (the perf_trajectory harness
//! spends most of its wall-clock training, which drowns the search in
//! profiles). Run under `gprofng collect app` or similar:
//!
//! ```text
//! cargo build --release -p qpseeker-bench --example mcts_profile
//! gprofng collect app -o /tmp/mcts.er target/release/examples/mcts_profile
//! gprofng display text -functions /tmp/mcts.er
//! ```

use qpseeker_core::prelude::*;
use qpseeker_engine::query::{ColRef, JoinPred, Query, RelRef};
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

fn main() {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.06, 1));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 40, seed: 1 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");
    model.store.warm_packed();

    let queries: Vec<Query> = (0..5)
        .map(|i| {
            let mut q = Query::new(format!("star-{i}"));
            for t in ["title", "movie_info", "movie_keyword", "cast_info", "movie_companies"] {
                q.relations.push(RelRef::new(t));
            }
            for t in ["movie_info", "movie_keyword", "cast_info", "movie_companies"] {
                q.joins.push(JoinPred {
                    left: ColRef::new(t, "movie_id"),
                    right: ColRef::new("title", "id"),
                });
            }
            q
        })
        .collect();

    let batch_eval = std::env::var("QPS_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| MctsConfig::default().batch_eval);
    let iters: usize = std::env::var("QPS_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(40);
    eprintln!("training done; entering MCTS loop (batch_eval {batch_eval})");
    let mut total = 0usize;
    for _ in 0..iters {
        for q in &queries {
            let planner = MctsPlanner::new(MctsConfig {
                budget_ms: 100.0,
                max_simulations: usize::MAX,
                seed: 0xacc5,
                batch_eval,
                ..Default::default()
            });
            total += planner.plan(&model, q).plans_evaluated;
        }
    }
    eprintln!("plans per 100ms: {:.1}", total as f64 / (iters * queries.len()) as f64);
}
