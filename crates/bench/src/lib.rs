//! `qpseeker-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! index), plus `all_experiments`, which runs everything and writes the
//! machine-readable rows that `EXPERIMENTS.md` reports. Criterion
//! micro-benches for the substrates live in `benches/`.
//!
//! All experiments are seeded and run at a reduced scale (`Scale`), keeping
//! the paper's ratios; the *shapes* of the results (who wins, by what
//! factor) are the reproduction target, not the absolute numbers.

use qpseeker_core::prelude::*;
use qpseeker_engine::executor::Executor;
use qpseeker_engine::explain::Explain;
use qpseeker_storage::Database;
use qpseeker_workloads::{
    job, stack as stack_wl, synthetic, JobConfig, Qep, StackConfig, SyntheticConfig, Workload,
};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    pub db_scale: f64,
    pub synthetic_queries: usize,
    pub job_qeps: usize,
    pub stack_queries: usize,
    pub epochs: usize,
    pub seed: u64,
}

impl Scale {
    /// Fast smoke scale (CI / --quick).
    pub fn quick() -> Self {
        Self {
            db_scale: 0.08,
            synthetic_queries: 120,
            job_qeps: 300,
            stack_queries: 80,
            epochs: 4,
            seed: 0xe5d,
        }
    }

    /// Default bench scale (minutes per experiment).
    pub fn standard() -> Self {
        Self {
            db_scale: 0.25,
            synthetic_queries: 600,
            job_qeps: 1_500,
            stack_queries: 300,
            epochs: 10,
            seed: 0xe5d,
        }
    }

    /// Parse from CLI args: `--quick` or `--standard` (default standard),
    /// with `QPS_*` environment overrides for individual knobs.
    pub fn from_args() -> Self {
        let mut s =
            if std::env::args().any(|a| a == "--quick") { Self::quick() } else { Self::standard() };
        let get = |k: &str| std::env::var(k).ok();
        if let Some(v) = get("QPS_DB_SCALE").and_then(|v| v.parse().ok()) {
            s.db_scale = v;
        }
        if let Some(v) = get("QPS_SYNTH_QUERIES").and_then(|v| v.parse().ok()) {
            s.synthetic_queries = v;
        }
        if let Some(v) = get("QPS_JOB_QEPS").and_then(|v| v.parse().ok()) {
            s.job_qeps = v;
        }
        if let Some(v) = get("QPS_STACK_QUERIES").and_then(|v| v.parse().ok()) {
            s.stack_queries = v;
        }
        if let Some(v) = get("QPS_EPOCHS").and_then(|v| v.parse().ok()) {
            s.epochs = v;
        }
        if let Some(v) = get("QPS_SEED").and_then(|v| v.parse().ok()) {
            s.seed = v;
        }
        s
    }

    pub fn model_config(&self) -> ModelConfig {
        let mut cfg = ModelConfig::bench();
        cfg.epochs = self.epochs;
        cfg
    }
}

/// Lazily built experiment context: databases + workloads.
pub struct Context {
    pub scale: Scale,
    pub imdb: Arc<Database>,
    pub stack_db: Arc<Database>,
}

impl Context {
    pub fn new(scale: Scale) -> Self {
        eprintln!("[ctx] generating databases (scale {})...", scale.db_scale);
        let imdb = Arc::new(qpseeker_storage::datagen::imdb::generate(scale.db_scale, scale.seed));
        let stack_db =
            Arc::new(qpseeker_storage::datagen::stack::generate(scale.db_scale, scale.seed ^ 1));
        Self { scale, imdb, stack_db }
    }

    pub fn synthetic(&self) -> Workload {
        eprintln!("[ctx] generating Synthetic workload...");
        synthetic::generate(
            &self.imdb,
            &SyntheticConfig { n_queries: self.scale.synthetic_queries, seed: self.scale.seed },
        )
    }

    pub fn job(&self) -> Workload {
        eprintln!("[ctx] generating JOB workload (sampled QEPs)...");
        job::generate(
            &self.imdb,
            &JobConfig { target_qeps: self.scale.job_qeps, ..Default::default() },
        )
    }

    pub fn stack(&self) -> Workload {
        eprintln!("[ctx] generating Stack workload...");
        stack_wl::generate(
            &self.stack_db,
            &StackConfig { n_queries: self.scale.stack_queries, seed: self.scale.seed },
        )
    }

    /// Database for a workload by name.
    pub fn db_of(&self, workload: &Workload) -> &Arc<Database> {
        if workload.database == "stack" {
            &self.stack_db
        } else {
            &self.imdb
        }
    }
}

/// Q-error summaries of a trained QPSeeker model on an eval set.
pub struct ModelQErrors {
    pub cardinality: QErrorSummary,
    pub cost: QErrorSummary,
    pub runtime: QErrorSummary,
}

/// Evaluate a trained model against ground truth.
pub fn eval_qpseeker(model: &QPSeeker, eval: &[&Qep]) -> ModelQErrors {
    let mut card = Vec::new();
    let mut cost = Vec::new();
    let mut time = Vec::new();
    for qep in eval {
        let p = model.predict(&qep.query, &qep.plan);
        card.push((p.cardinality, qep.cardinality()));
        cost.push((p.cost, qep.cost()));
        time.push((p.runtime_ms, qep.runtime_ms()));
    }
    ModelQErrors {
        cardinality: QErrorSummary::from_pairs(&card),
        cost: QErrorSummary::from_pairs(&cost),
        runtime: QErrorSummary::from_pairs(&time),
    }
}

/// PostgreSQL-baseline Q-errors: EXPLAIN estimates vs ground truth.
pub fn eval_postgres(db: &Database, eval: &[&Qep]) -> ModelQErrors {
    let explain = Explain::new(db);
    let mut card = Vec::new();
    let mut cost = Vec::new();
    let mut time = Vec::new();
    for qep in eval {
        let e = explain.plan_estimate(&qep.query, &qep.plan);
        card.push((e.rows, qep.cardinality()));
        cost.push((e.cost, qep.cost()));
        time.push((e.time_ms, qep.runtime_ms()));
    }
    ModelQErrors {
        cardinality: QErrorSummary::from_pairs(&card),
        cost: QErrorSummary::from_pairs(&cost),
        runtime: QErrorSummary::from_pairs(&time),
    }
}

/// Train a QPSeeker instance on a workload split and return it with the
/// eval set. JOB (sampled) splits at query level (paper §6.3).
pub fn train_model<'a>(
    db: &Arc<Database>,
    workload: &'a Workload,
    cfg: ModelConfig,
) -> Result<(QPSeeker, Vec<&'a Qep>), CoreError> {
    let at_query_level = workload.plan_source == qpseeker_workloads::PlanSource::Sampling;
    let (train, eval) = workload.split(0.8, at_query_level);
    eprintln!(
        "[train] {}: {} train / {} eval QEPs, beta={}",
        workload.name,
        train.len(),
        eval.len(),
        cfg.beta
    );
    let mut model = QPSeeker::new(db, cfg);
    let report = model.fit(&train)?;
    eprintln!(
        "[train] {}: loss {:.3} -> {:.3} in {:.1}s",
        workload.name,
        report.epoch_losses.first().unwrap_or(&f64::NAN),
        report.epoch_losses.last().unwrap_or(&f64::NAN),
        report.train_seconds
    );
    Ok((model, eval))
}

/// Execute a plan and return its virtual runtime (the "run the query" step
/// of the planning experiments).
pub fn run_plan_ms(db: &Database, plan: &qpseeker_engine::plan::PlanNode) -> f64 {
    Executor::new(db).execute(plan).time_ms
}

/// Results directory (`target/experiment-results` by default). Not created
/// until [`emit`] first writes into it.
pub fn results_dir() -> PathBuf {
    std::env::var("QPS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiment-results"))
}

fn io_err(op: &'static str, path: &std::path::Path, e: std::io::Error) -> CoreError {
    CoreError::Io { op, path: path.display().to_string(), message: e.to_string() }
}

/// Write one experiment's rows as pretty JSON (atomic temp-file + rename, so
/// a crash mid-run never leaves a truncated results file), and echo a
/// markdown table.
pub fn emit<T: Serialize>(name: &str, rows: &T, markdown: &str) -> Result<(), CoreError> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| io_err("create_dir", &dir, e))?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(rows)?;
    write_atomic(&path, &json, None)?;
    println!("\n## {name}\n");
    println!("{markdown}");
    let log_path = dir.join("experiments.md");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .map_err(|e| io_err("open", &log_path, e))?;
    writeln!(log, "\n## {name}\n\n{markdown}").map_err(|e| io_err("append", &log_path, e))?;
    eprintln!("[emit] wrote {}", path.display());
    Ok(())
}

/// Format a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str(&format!("| {} |\n", headers.join(" | ")));
    s.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for r in rows {
        s.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    s
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        "inf".into()
    } else if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.123), "0.12");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }

    #[test]
    fn quick_scale_is_smaller_than_standard() {
        let q = Scale::quick();
        let s = Scale::standard();
        assert!(q.synthetic_queries < s.synthetic_queries);
        assert!(q.epochs < s.epochs);
    }
}

pub mod experiments;
