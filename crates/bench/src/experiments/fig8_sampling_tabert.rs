//! **Fig. 8** — (left) impact of the query-sampling fraction and of the
//! TaBERT configuration on plan quality; (right) average time spent inside
//! TaBERT per configuration.
//!
//! Paper shape: a cost model trained on QEPs sampled from only 10% of the
//! Stack queries is not competitive, while 25% and 50% perform like 100%;
//! TaBERT K/size barely moves accuracy but strongly moves encoding time
//! (K=3 pays row-wise attention, Large pays 3× parameters).

use crate::{emit, fmt, markdown_table, run_plan_ms, Context};
use qpseeker_core::prelude::*;
use qpseeker_engine::query::Query;
use qpseeker_tabert::{ModelSize, TabertConfig};
use qpseeker_workloads::{sample_plans, stack as stack_wl, Qep, SamplingConfig, StackConfig};
use serde::Serialize;

#[derive(Serialize)]
pub struct FractionRow {
    pub query_fraction: f64,
    pub train_qeps: usize,
    /// Total executed runtime of the plans chosen by MCTS on the eval set.
    pub plans_total_ms: f64,
    /// Runtime prediction q-error median on the eval set.
    pub runtime_qerr_p50: f64,
}

#[derive(Serialize)]
pub struct TabertRow {
    pub k: usize,
    pub size: String,
    pub runtime_qerr_p50: f64,
    /// Average simulated TaBERT milliseconds per featurized QEP.
    pub avg_tabert_ms_per_qep: f64,
}

#[derive(Serialize)]
pub struct Output {
    pub fractions: Vec<FractionRow>,
    pub tabert: Vec<TabertRow>,
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let db = &ctx.stack_db;
    // Query pool + sampled QEP pool (the Stack sampling experiment).
    let queries = stack_wl::generate_queries(
        db,
        &StackConfig { n_queries: ctx.scale.stack_queries, seed: ctx.scale.seed },
    );
    let n_eval = (queries.len() / 5).max(5);
    let (eval_queries, train_queries) = queries.split_at(n_eval);

    // Target QEP count shared by every fraction (the paper resamples "until
    // we reach the initial number of available QEPs").
    let target_qeps = (train_queries.len() * 3).min(ctx.scale.job_qeps);

    let mut fractions = Vec::new();
    let mut eval_qeps_cache: Option<Vec<Qep>> = None;
    for frac in [0.10, 0.25, 0.50, 1.0] {
        let n_q = ((train_queries.len() as f64) * frac).ceil().max(2.0) as usize;
        let subset = &train_queries[..n_q.min(train_queries.len())];
        let per_query = (target_qeps / subset.len()).max(1);
        let mut items = Vec::new();
        for (q, tpl) in subset {
            let cfg = SamplingConfig {
                max_orderings: (per_query * 2).max(20),
                operators_per_ordering: 3,
                keep_fraction: 0.15,
                seed: ctx.scale.seed,
            };
            let mut plans = sample_plans(db, q, &cfg);
            plans.truncate(per_query);
            for sp in plans {
                items.push((q.clone(), sp.plan, tpl.clone()));
            }
        }
        let mut qeps = qpseeker_workloads::qep::measure_parallel(db, items);
        qeps.retain(|q| !q.truth.timed_out);
        let refs: Vec<&Qep> = qeps.iter().collect();
        let mut model = QPSeeker::new(db, ctx.scale.model_config());
        model.fit(&refs)?;

        // Eval 1: plan the held-out queries with MCTS and execute.
        let planner = MctsPlanner::new(MctsConfig::default());
        let mut total = 0.0;
        for (q, _) in eval_queries {
            let res = planner.plan(&model, q);
            total += run_plan_ms(db, &res.plan);
        }
        // Eval 2: runtime q-error on a fixed eval QEP set (optimizer plans).
        let eval_qeps = eval_qeps_cache.get_or_insert_with(|| {
            let opt = qpseeker_engine::optimizer::PgOptimizer::new(db);
            let items: Vec<(Query, qpseeker_engine::plan::PlanNode, String)> =
                eval_queries.iter().map(|(q, t)| (q.clone(), opt.plan(q), t.clone())).collect();
            let mut qeps = qpseeker_workloads::qep::measure_parallel(db, items);
            qeps.retain(|q| !q.truth.timed_out);
            qeps
        });
        let pairs: Vec<(f64, f64)> = eval_qeps
            .iter()
            .map(|qep| (model.predict(&qep.query, &qep.plan).runtime_ms, qep.runtime_ms()))
            .collect();
        let qerr = QErrorSummary::from_pairs(&pairs);
        fractions.push(FractionRow {
            query_fraction: frac,
            train_qeps: qeps.len(),
            plans_total_ms: total,
            runtime_qerr_p50: qerr.p50,
        });
        eprintln!(
            "[fig8] fraction {frac}: total plan time {total:.1} ms, qerr p50 {:.2}",
            qerr.p50
        );
    }

    // --- TaBERT impact: K and model size. ---
    let mut tabert_rows = Vec::new();
    let stack = ctx.stack();
    let (train, eval) = stack.split(0.8, false);
    for (k, size, label) in [
        (1, ModelSize::Base, "base"),
        (3, ModelSize::Base, "base"),
        (1, ModelSize::Large, "large"),
        (3, ModelSize::Large, "large"),
    ] {
        let mut cfg = ctx.scale.model_config();
        cfg.tabert = TabertConfig { k, size, seed: cfg.tabert.seed };
        let mut model = QPSeeker::new(db, cfg);
        model.fit(&train)?;
        let featurized = train.len();
        let pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|qep| (model.predict(&qep.query, &qep.plan).runtime_ms, qep.runtime_ms()))
            .collect();
        let qerr = QErrorSummary::from_pairs(&pairs);
        tabert_rows.push(TabertRow {
            k,
            size: label.into(),
            runtime_qerr_p50: qerr.p50,
            avg_tabert_ms_per_qep: model.tabert_ms() / (featurized + eval.len()).max(1) as f64,
        });
    }

    let mut md = String::from("**Sampling fraction (Stack):**\n\n");
    md.push_str(&markdown_table(
        &["query fraction", "train QEPs", "MCTS plans total (ms)", "runtime q-err p50"],
        &fractions
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.query_fraction * 100.0),
                    r.train_qeps.to_string(),
                    fmt(r.plans_total_ms),
                    fmt(r.runtime_qerr_p50),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    md.push_str("\n**TaBERT configuration:**\n\n");
    md.push_str(&markdown_table(
        &["K", "size", "runtime q-err p50", "avg TaBERT ms/QEP"],
        &tabert_rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.size.clone(),
                    fmt(r.runtime_qerr_p50),
                    fmt(r.avg_tabert_ms_per_qep),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    let out = Output { fractions, tabert: tabert_rows };
    emit("fig8_sampling_and_tabert", &out, &md)?;
    Ok(())
}
