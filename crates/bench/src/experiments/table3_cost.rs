//! **Table 3** — cost-estimation Q-error: QPSeeker vs the Zero-Shot cost
//! model vs PostgreSQL, on all three workloads.
//!
//! Paper shape: each system wins exactly one workload — PostgreSQL on
//! Synthetic, Zero-Shot on JOB, QPSeeker on Stack.

use crate::{emit, eval_postgres, eval_qpseeker, fmt, markdown_table, train_model, Context};
use qpseeker_baselines::{ZeroShot, ZeroShotConfig};
use qpseeker_core::prelude::*;
use qpseeker_workloads::Qep;
use serde::Serialize;

#[derive(Serialize)]
pub struct Row {
    pub workload: String,
    pub system: String,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub std: f64,
}

fn push(rows: &mut Vec<Row>, workload: &str, system: &str, s: &QErrorSummary) {
    rows.push(Row {
        workload: workload.into(),
        system: system.into(),
        p50: s.p50,
        p90: s.p90,
        p95: s.p95,
        p99: s.p99,
        std: s.std,
    });
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    // Zero-Shot pretrains once on its own database family, then transfers.
    eprintln!("[table3] pretraining Zero-Shot on the synthetic database family...");
    let mut zs = ZeroShot::new(ZeroShotConfig::default());
    zs.pretrain();

    let mut rows: Vec<Row> = Vec::new();
    for w in [ctx.synthetic(), ctx.job(), ctx.stack()] {
        let db = ctx.db_of(&w);
        let (model, eval) = train_model(db, &w, ctx.scale.model_config())?;

        let qp = eval_qpseeker(&model, &eval);
        push(&mut rows, &w.name, "QPSeeker", &qp.cost);

        let zs_pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|qep: &&Qep| (zs.predict(db, &qep.query, &qep.plan), qep.cost()))
            .collect();
        push(&mut rows, &w.name, "Zero-Shot", &QErrorSummary::from_pairs(&zs_pairs));

        let pg = eval_postgres(db, &eval);
        push(&mut rows, &w.name, "PostgreSQL", &pg.cost);
    }

    let md_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.system.clone(),
                fmt(r.p50),
                fmt(r.p90),
                fmt(r.p95),
                fmt(r.p99),
                fmt(r.std),
            ]
        })
        .collect();
    let md = markdown_table(&["Workload", "System", "50%", "90%", "95%", "99%", "std"], &md_rows);
    emit("table3_cost_estimation", &rows, &md)?;
    Ok(())
}
