//! **Table 5** — execution-time-estimation Q-error: QPSeeker vs QPPNet vs
//! PostgreSQL.
//!
//! Paper shape: QPSeeker learns best on the complex workloads (clear win on
//! JOB, competitive on Stack); PostgreSQL's time estimates collapse on the
//! many-join workloads; Synthetic favors the simple baselines.

use crate::{emit, eval_postgres, eval_qpseeker, fmt, markdown_table, train_model, Context};
use qpseeker_baselines::{QppNet, QppNetConfig};
use qpseeker_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
pub struct Row {
    pub workload: String,
    pub system: String,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub std: f64,
}

fn push(rows: &mut Vec<Row>, workload: &str, system: &str, s: &QErrorSummary) {
    rows.push(Row {
        workload: workload.into(),
        system: system.into(),
        p50: s.p50,
        p90: s.p90,
        p95: s.p95,
        p99: s.p99,
        std: s.std,
    });
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let mut rows: Vec<Row> = Vec::new();
    for w in [ctx.synthetic(), ctx.job(), ctx.stack()] {
        let db = ctx.db_of(&w);
        let (model, eval) = train_model(db, &w, ctx.scale.model_config())?;

        let qp = eval_qpseeker(&model, &eval);
        push(&mut rows, &w.name, "QPSeeker", &qp.runtime);

        // QPPNet on the same train split.
        let at_query_level = w.plan_source == qpseeker_workloads::PlanSource::Sampling;
        let (train, _) = w.split(0.8, at_query_level);
        let triples: Vec<_> = train.iter().map(|q| (&q.query, &q.plan, q.runtime_ms())).collect();
        let mut net =
            QppNet::new(db, QppNetConfig { epochs: ctx.scale.epochs * 2, ..Default::default() });
        net.fit(&triples);
        let pairs: Vec<(f64, f64)> =
            eval.iter().map(|q| (net.predict(&q.query, &q.plan), q.runtime_ms())).collect();
        push(&mut rows, &w.name, "QPPNet", &QErrorSummary::from_pairs(&pairs));

        let pg = eval_postgres(db, &eval);
        push(&mut rows, &w.name, "PostgreSQL", &pg.runtime);
    }

    let md_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.system.clone(),
                fmt(r.p50),
                fmt(r.p90),
                fmt(r.p95),
                fmt(r.p99),
                fmt(r.std),
            ]
        })
        .collect();
    let md = markdown_table(&["Workload", "System", "50%", "90%", "95%", "99%", "std"], &md_rows);
    emit("table5_runtime", &rows, &md)?;
    Ok(())
}
