//! **Table 4** — cardinality-estimation Q-error: QPSeeker vs MSCN vs
//! PostgreSQL.
//!
//! Paper shape: MSCN wins Synthetic (its home turf), QPSeeker wins JOB, and
//! PostgreSQL is the worst system on Stack (compounding independence errors
//! over many joins).

use crate::{emit, eval_postgres, eval_qpseeker, fmt, markdown_table, train_model, Context};
use qpseeker_baselines::{Mscn, MscnConfig};
use qpseeker_core::prelude::*;
use qpseeker_engine::query::Query;
use qpseeker_workloads::Qep;
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
pub struct Row {
    pub workload: String,
    pub system: String,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub std: f64,
}

fn push(rows: &mut Vec<Row>, workload: &str, system: &str, s: &QErrorSummary) {
    rows.push(Row {
        workload: workload.into(),
        system: system.into(),
        p50: s.p50,
        p90: s.p90,
        p95: s.p95,
        p99: s.p99,
        std: s.std,
    });
}

/// MSCN trains on *queries* (one cardinality per query), so deduplicate the
/// QEPs of sampled workloads by query id.
fn dedup_queries<'a>(qeps: &[&'a Qep]) -> Vec<(&'a Query, f64)> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for q in qeps {
        if seen.insert(q.query.id.clone()) {
            out.push((&q.query, q.cardinality()));
        }
    }
    out
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let mut rows: Vec<Row> = Vec::new();
    for w in [ctx.synthetic(), ctx.job(), ctx.stack()] {
        let db = ctx.db_of(&w);
        let (model, eval) = train_model(db, &w, ctx.scale.model_config())?;

        let qp = eval_qpseeker(&model, &eval);
        push(&mut rows, &w.name, "QPSeeker", &qp.cardinality);

        // MSCN: train on the same training queries.
        let at_query_level = w.plan_source == qpseeker_workloads::PlanSource::Sampling;
        let (train, _) = w.split(0.8, at_query_level);
        let mscn_train = dedup_queries(&train);
        let mut mscn =
            Mscn::new(db, MscnConfig { epochs: ctx.scale.epochs * 2, ..Default::default() });
        mscn.fit(&mscn_train);
        let mscn_eval = dedup_queries(&eval);
        let pairs: Vec<(f64, f64)> =
            mscn_eval.iter().map(|&(q, card)| (mscn.predict(q), card)).collect();
        push(&mut rows, &w.name, "MSCN", &QErrorSummary::from_pairs(&pairs));

        let pg = eval_postgres(db, &eval);
        push(&mut rows, &w.name, "PostgreSQL", &pg.cardinality);
    }

    let md_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.system.clone(),
                fmt(r.p50),
                fmt(r.p90),
                fmt(r.p95),
                fmt(r.p99),
                fmt(r.std),
            ]
        })
        .collect();
    let md = markdown_table(&["Workload", "System", "50%", "90%", "95%", "99%", "std"], &md_rows);
    emit("table4_cardinality", &rows, &md)?;
    Ok(())
}
