//! **Fig. 5** — t-SNE projection of the 32-d latent space of QEPs sampled
//! from the JOB workload, colored by query template.
//!
//! Paper shape: QEPs from the same template cluster together (and related
//! templates land near each other). We quantify the visual claim with a
//! silhouette score against (a) template labels on the learned latents and
//! (b) the same labels on *shuffled* latents as a null baseline.

use crate::{emit, fmt, markdown_table, train_model, Context};
use qpseeker_core::prelude::*;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
pub struct Output {
    pub points: Vec<PointRow>,
    pub silhouette_latent: f64,
    pub silhouette_null: f64,
    pub n_templates: usize,
}

#[derive(Serialize)]
pub struct PointRow {
    pub x: f64,
    pub y: f64,
    pub template: String,
    pub query_id: String,
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let w = ctx.job();
    let db = ctx.db_of(&w);
    let (model, _eval) = train_model(db, &w, ctx.scale.model_config())?;

    // Latents for a bounded sample of QEPs (t-SNE is O(n²)).
    let cap = 400.min(w.qeps.len());
    let mut latents: Vec<Vec<f32>> = Vec::with_capacity(cap);
    let mut labels: Vec<usize> = Vec::with_capacity(cap);
    let mut label_of: HashMap<String, usize> = HashMap::new();
    let mut meta: Vec<(String, String)> = Vec::with_capacity(cap);
    let stride = (w.qeps.len() / cap).max(1);
    for qep in w.qeps.iter().step_by(stride).take(cap) {
        latents.push(model.latent_mu(&qep.query, &qep.plan));
        let next = label_of.len();
        let l = *label_of.entry(qep.template.clone()).or_insert(next);
        labels.push(l);
        meta.push((qep.template.clone(), qep.query.id.clone()));
    }

    let coords = tsne(&latents, &TsneConfig::default());
    let sil = silhouette(&latents, &labels);
    // Null baseline: same labels, latents rotated by half the list.
    let n = latents.len();
    let shuffled: Vec<Vec<f32>> = (0..n).map(|i| latents[(i + n / 2) % n].clone()).collect();
    let sil_null = silhouette(&shuffled, &labels);

    let points: Vec<PointRow> = coords
        .iter()
        .zip(&meta)
        .map(|(c, (template, qid))| PointRow {
            x: c[0],
            y: c[1],
            template: template.clone(),
            query_id: qid.clone(),
        })
        .collect();
    let out = Output {
        points,
        silhouette_latent: sil,
        silhouette_null: sil_null,
        n_templates: label_of.len(),
    };
    let md = markdown_table(
        &["metric", "value"],
        &[
            vec!["QEPs embedded".into(), n.to_string()],
            vec!["templates".into(), label_of.len().to_string()],
            vec!["silhouette (latent, by template)".into(), fmt(sil)],
            vec!["silhouette (null baseline)".into(), fmt(sil_null)],
        ],
    );
    emit("fig5_latent_tsne", &out, &md)?;
    println!(
        "latent clustering {} null baseline ({} vs {})",
        if sil > sil_null { "beats" } else { "DOES NOT beat" },
        fmt(sil),
        fmt(sil_null)
    );
    Ok(())
}
