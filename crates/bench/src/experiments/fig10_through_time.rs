//! **Fig. 10** — queries executed through time: for each evaluation query
//! set (JOB, JOB-light, JOB-extended, Stack) run the plans chosen by
//! QPSeeker, Bao and PostgreSQL in sequence and record the cumulative
//! completion curve.
//!
//! Paper shape: QPSeeker tracks PostgreSQL closely on Stack and JOB, wins on
//! JOB-extended, and loses badly on JOB-light (a couple of memory-heavy
//! regressions); Bao is the slowest almost everywhere.

use crate::{emit, fmt, markdown_table, run_plan_ms, Context};
use qpseeker_baselines::{Bao, BaoConfig};
use qpseeker_core::prelude::*;
use qpseeker_engine::optimizer::PgOptimizer;
use qpseeker_engine::query::Query;
use qpseeker_workloads::{job, JobConfig, Qep};
use serde::Serialize;

#[derive(Serialize)]
pub struct Series {
    pub workload: String,
    pub system: String,
    /// Cumulative virtual milliseconds after each completed query.
    pub cumulative_ms: Vec<f64>,
    pub total_ms: f64,
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let mut series: Vec<Series> = Vec::new();

    // --- IMDb-side query sets, planners trained on Synthetic. ---
    {
        let db = &ctx.imdb;
        let synth = ctx.synthetic();
        // QPSeeker trains on the sampled Synthetic variant (plan-space
        // coverage, §3.1 setting (b)).
        let sampled = qpseeker_workloads::synthetic::generate_sampled(
            db,
            &qpseeker_workloads::SyntheticConfig {
                n_queries: ctx.scale.synthetic_queries,
                seed: ctx.scale.seed,
            },
            4,
        );
        let refs: Vec<&Qep> = sampled.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ctx.scale.model_config());
        model.fit(&refs)?;
        let mut bao = Bao::new(db, BaoConfig { epochs: ctx.scale.epochs, ..Default::default() });
        let bao_train: Vec<&Query> = synth.qeps.iter().map(|q| &q.query).take(120).collect();
        bao.train(&bao_train);
        let sets: Vec<(&str, Vec<(Query, String)>)> = vec![
            ("job", job::job_queries(db, &JobConfig::default())),
            ("job-light", job::job_light_queries(db, ctx.scale.seed)),
            ("job-extended", job::job_extended_queries(db, ctx.scale.seed)),
        ];
        for (name, queries) in sets {
            run_set(ctx, db, name, &queries, &model, &bao, &mut series);
        }
    }

    // --- Stack: planners trained on the Stack training split. ---
    {
        let db = &ctx.stack_db;
        let stack = ctx.stack();
        let (train, eval) = stack.split(0.8, false);
        let mut model = QPSeeker::new(db, ctx.scale.model_config());
        model.fit(&train)?;
        let mut bao = Bao::new(db, BaoConfig { epochs: ctx.scale.epochs, ..Default::default() });
        let bao_train: Vec<&Query> = train.iter().map(|q| &q.query).take(120).collect();
        bao.train(&bao_train);
        let queries: Vec<(Query, String)> =
            eval.iter().map(|q| (q.query.clone(), q.template.clone())).collect();
        run_set(ctx, db, "stack", &queries, &model, &bao, &mut series);
    }

    let md_rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let half = s.cumulative_ms.get(s.cumulative_ms.len() / 2).copied().unwrap_or(0.0);
            vec![
                s.workload.clone(),
                s.system.clone(),
                s.cumulative_ms.len().to_string(),
                fmt(half),
                fmt(s.total_ms),
            ]
        })
        .collect();
    let md = markdown_table(
        &["workload", "system", "queries", "time to 50% (ms)", "total (ms)"],
        &md_rows,
    );
    emit("fig10_queries_through_time", &series, &md)?;
    Ok(())
}

fn run_set(
    _ctx: &Context,
    db: &qpseeker_storage::Database,
    name: &str,
    queries: &[(Query, String)],
    model: &QPSeeker,
    bao: &Bao<'_>,
    series: &mut Vec<Series>,
) {
    eprintln!("[fig10] running {name} ({} queries)...", queries.len());
    let pg = PgOptimizer::new(db);
    let planner = MctsPlanner::new(MctsConfig::default());
    let mut pg_times = Vec::with_capacity(queries.len());
    let mut qp_times = Vec::with_capacity(queries.len());
    let mut bao_times = Vec::with_capacity(queries.len());
    for (q, _) in queries {
        pg_times.push(run_plan_ms(db, &pg.plan(q)));
        let res = planner.plan(model, q);
        qp_times.push(run_plan_ms(db, &res.plan));
        let (bp, _) = bao.plan(q);
        bao_times.push(run_plan_ms(db, &bp));
    }
    for (system, times) in [("PostgreSQL", pg_times), ("QPSeeker", qp_times), ("Bao", bao_times)] {
        let mut cum = Vec::with_capacity(times.len());
        let mut acc = 0.0;
        for t in &times {
            acc += t;
            cum.push(acc);
        }
        series.push(Series {
            workload: name.into(),
            system: system.into(),
            total_ms: acc,
            cumulative_ms: cum,
        });
    }
}
