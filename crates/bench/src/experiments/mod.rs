//! One module per paper table/figure. Every module exposes
//! `run(ctx: &Context)`, prints a markdown table and writes JSON rows to the
//! results directory.

pub mod ablations;
pub mod fig10_through_time;
pub mod fig5_latent;
pub mod fig8_sampling_tabert;
pub mod fig9_job_margin;
pub mod table1_workloads;
pub mod table2_beta;
pub mod table3_cost;
pub mod table4_cardinality;
pub mod table5_runtime;
