//! **Table 1** — evaluation workloads (queries, QEPs, plan source, database)
//! plus the §6 distribution discussion (runtime/cost/cardinality shapes,
//! the paper's Fig. 7-style statistics).

use crate::{emit, fmt, markdown_table, Context};
use qpseeker_core::prelude::CoreError;
use qpseeker_workloads::{job, WorkloadSummary};
use serde::Serialize;

#[derive(Serialize)]
pub struct Row {
    pub workload: String,
    pub queries: usize,
    pub qeps: usize,
    pub plan_source: String,
    pub database: String,
    pub max_joins: usize,
    pub runtime_p50_ms: f64,
    pub runtime_p99_ms: f64,
    pub card_min: f64,
    pub card_max: f64,
}

fn row(s: &WorkloadSummary) -> Row {
    Row {
        workload: s.name.clone(),
        queries: s.num_queries,
        qeps: s.num_qeps,
        plan_source: format!("{:?}", s.plan_source),
        database: s.database.clone(),
        max_joins: s.max_joins,
        runtime_p50_ms: s.runtime_ms.p50,
        runtime_p99_ms: s.runtime_ms.p99,
        card_min: s.cardinality.min,
        card_max: s.cardinality.max,
    }
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let mut rows = Vec::new();
    for w in [ctx.synthetic(), ctx.job(), ctx.stack()] {
        rows.push(row(&w.summary()));
    }
    // Eval-only query sets.
    let light = job::job_light_queries(&ctx.imdb, ctx.scale.seed);
    let ext = job::job_extended_queries(&ctx.imdb, ctx.scale.seed);
    for (name, qs) in [("job-light", light), ("job-extended", ext)] {
        rows.push(Row {
            workload: name.into(),
            queries: qs.len(),
            qeps: 0,
            plan_source: "eval-only".into(),
            database: "imdb".into(),
            max_joins: qs.iter().map(|(q, _)| q.num_joins()).max().unwrap_or(0),
            runtime_p50_ms: f64::NAN,
            runtime_p99_ms: f64::NAN,
            card_min: f64::NAN,
            card_max: f64::NAN,
        });
    }

    let md_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.queries.to_string(),
                r.qeps.to_string(),
                r.plan_source.clone(),
                r.database.clone(),
                r.max_joins.to_string(),
                fmt(r.runtime_p50_ms),
                fmt(r.runtime_p99_ms),
                fmt(r.card_min),
                fmt(r.card_max),
            ]
        })
        .collect();
    let md = markdown_table(
        &[
            "Workload",
            "Queries",
            "QEPs",
            "Plan Source",
            "Database",
            "Max joins",
            "runtime p50 (ms)",
            "runtime p99 (ms)",
            "card min",
            "card max",
        ],
        &md_rows,
    );
    emit("table1_workloads", &rows, &md)?;
    Ok(())
}
