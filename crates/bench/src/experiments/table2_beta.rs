//! **Table 2** — the effect of β ∈ {100, 200, 300} on QPSeeker's Q-error
//! percentiles for cardinality, cost and runtime, per workload.
//!
//! Paper shape to reproduce: β = 100 is the best (or tied-best) runtime
//! predictor on the complex workloads (JOB, Stack); Synthetic is the hardest
//! workload for QPSeeker (sparse set encodings).

use crate::{emit, eval_qpseeker, fmt, markdown_table, train_model, Context};
use qpseeker_core::prelude::CoreError;
use serde::Serialize;

#[derive(Serialize)]
pub struct Row {
    pub workload: String,
    pub beta: f64,
    pub target: String,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub std: f64,
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let mut rows: Vec<Row> = Vec::new();
    let workloads = [ctx.synthetic(), ctx.job(), ctx.stack()];
    for w in &workloads {
        let db = ctx.db_of(w);
        for beta in [100.0, 200.0, 300.0] {
            let mut cfg = ctx.scale.model_config();
            cfg.beta = beta;
            let (model, eval) = train_model(db, w, cfg)?;
            let e = eval_qpseeker(&model, &eval);
            for (target, s) in
                [("cardinality", &e.cardinality), ("cost", &e.cost), ("runtime", &e.runtime)]
            {
                rows.push(Row {
                    workload: w.name.clone(),
                    beta,
                    target: target.into(),
                    p50: s.p50,
                    p90: s.p90,
                    p95: s.p95,
                    p99: s.p99,
                    std: s.std,
                });
            }
        }
    }

    let md_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{}", r.beta),
                r.target.clone(),
                fmt(r.p50),
                fmt(r.p90),
                fmt(r.p95),
                fmt(r.p99),
                fmt(r.std),
            ]
        })
        .collect();
    let md =
        markdown_table(&["Workload", "β", "Target", "50%", "90%", "95%", "99%", "std"], &md_rows);
    emit("table2_beta_effect", &rows, &md)?;

    // Headline check: report which β wins runtime per workload.
    for w in ["synthetic", "job", "stack"] {
        let best = rows
            .iter()
            .filter(|r| r.workload == w && r.target == "runtime")
            .min_by(|a, b| a.p50.partial_cmp(&b.p50).expect("finite"));
        if let Some(b) = best {
            println!("best runtime beta for {w}: {}", b.beta);
        }
    }
    Ok(())
}
