//! Ablations beyond the paper (DESIGN.md §8):
//!
//! * **QPAttention off** — plain concatenation instead of cross-attention;
//! * **β = 0** — plain autoencoder (no KL regularizer);
//! * **uniform plan sampling** — keep a uniform sample instead of the
//!   cheapest 15% by the user cost model;
//! * **planner comparison** — MCTS vs greedy one-step vs exhaustive
//!   enumeration (small queries), measuring executed plan quality and
//!   planning effort.

use crate::{emit, fmt, markdown_table, run_plan_ms, train_model, Context};
use qpseeker_core::prelude::*;
use qpseeker_engine::inject::LeftDeepSpec;
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::Query;
use qpseeker_workloads::{enumerate_orderings, job, JobConfig, Qep};
use serde::Serialize;

#[derive(Serialize)]
pub struct VariantRow {
    pub variant: String,
    pub runtime_qerr_p50: f64,
    pub runtime_qerr_p95: f64,
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    model_ablations(ctx)?;
    sampling_ablation(ctx)?;
    planner_ablation(ctx)
}

/// Attention / β ablations on JOB.
fn model_ablations(ctx: &Context) -> Result<(), CoreError> {
    let w = ctx.job();
    let db = ctx.db_of(&w);
    let mut rows = Vec::new();
    type Patch = Box<dyn Fn(&mut ModelConfig)>;
    let variants: Vec<(&str, Patch)> = vec![
        ("full (attention, beta=100)", Box::new(|_c: &mut ModelConfig| {})),
        ("no attention (concat)", Box::new(|c: &mut ModelConfig| c.use_attention = false)),
        ("beta=0 (plain AE)", Box::new(|c: &mut ModelConfig| c.beta = 0.0)),
        ("no node loss", Box::new(|c: &mut ModelConfig| c.node_loss_weight = 0.0)),
    ];
    for (name, patch) in variants {
        let mut cfg = ctx.scale.model_config();
        patch(&mut cfg);
        let (model, eval) = train_model(db, &w, cfg)?;
        let pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|q| (model.predict(&q.query, &q.plan).runtime_ms, q.runtime_ms()))
            .collect();
        let s = QErrorSummary::from_pairs(&pairs);
        rows.push(VariantRow {
            variant: name.into(),
            runtime_qerr_p50: s.p50,
            runtime_qerr_p95: s.p95,
        });
    }
    let md = markdown_table(
        &["variant", "runtime q-err p50", "runtime q-err p95"],
        &rows
            .iter()
            .map(|r| vec![r.variant.clone(), fmt(r.runtime_qerr_p50), fmt(r.runtime_qerr_p95)])
            .collect::<Vec<_>>(),
    );
    emit("ablation_model", &rows, &md)?;
    Ok(())
}

/// Top-15% (paper) vs uniform plan sampling for the training set.
fn sampling_ablation(ctx: &Context) -> Result<(), CoreError> {
    let db = &ctx.imdb;
    let cfg_queries =
        JobConfig { n_queries: 40, target_qeps: ctx.scale.job_qeps / 2, ..Default::default() };
    let queries = job::job_queries(db, &cfg_queries);
    let per_query = (cfg_queries.target_qeps / queries.len().max(1)).max(1);

    let mut rows = Vec::new();
    for (name, keep_fraction) in [("top 15% by user cost model", 0.15), ("uniform sample", 1.0)] {
        let mut items = Vec::new();
        for (q, tpl) in &queries {
            let scfg = qpseeker_workloads::SamplingConfig {
                max_orderings: (per_query * 2).max(30),
                operators_per_ordering: 3,
                keep_fraction,
                seed: ctx.scale.seed,
            };
            let mut plans = qpseeker_workloads::sample_plans(db, q, &scfg);
            if keep_fraction >= 1.0 {
                // Uniform: stride through the full candidate list.
                let stride = (plans.len() / per_query).max(1);
                plans = plans.into_iter().step_by(stride).take(per_query).collect();
            } else {
                plans.truncate(per_query);
            }
            for sp in plans {
                items.push((q.clone(), sp.plan, tpl.clone()));
            }
        }
        let mut qeps = qpseeker_workloads::qep::measure_parallel(db, items);
        qeps.retain(|q| !q.truth.timed_out);
        let workload = qpseeker_workloads::Workload {
            name: format!("job-{name}"),
            database: "imdb".into(),
            plan_source: qpseeker_workloads::PlanSource::Sampling,
            qeps,
        };
        let (model, eval) = train_model(db, &workload, ctx.scale.model_config())?;
        let pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|q: &&Qep| (model.predict(&q.query, &q.plan).runtime_ms, q.runtime_ms()))
            .collect();
        let s = QErrorSummary::from_pairs(&pairs);
        rows.push(VariantRow {
            variant: name.into(),
            runtime_qerr_p50: s.p50,
            runtime_qerr_p95: s.p95,
        });
    }
    let md = markdown_table(
        &["sampling strategy", "runtime q-err p50", "runtime q-err p95"],
        &rows
            .iter()
            .map(|r| vec![r.variant.clone(), fmt(r.runtime_qerr_p50), fmt(r.runtime_qerr_p95)])
            .collect::<Vec<_>>(),
    );
    emit("ablation_sampling", &rows, &md)?;
    Ok(())
}

#[derive(Serialize)]
pub struct PlannerRow {
    pub planner: String,
    pub total_executed_ms: f64,
    pub avg_plans_scored: f64,
}

/// MCTS vs greedy vs exhaustive planning with the same learned model.
fn planner_ablation(ctx: &Context) -> Result<(), CoreError> {
    let w = ctx.synthetic();
    let db = ctx.db_of(&w);
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(db, ctx.scale.model_config());
    model.fit(&refs)?;

    // Small JOB queries (exhaustive enumeration must stay tractable).
    let queries: Vec<Query> = job::job_light_queries(db, ctx.scale.seed)
        .into_iter()
        .map(|(q, _)| q)
        .filter(|q| q.num_relations() <= 4)
        .take(20)
        .collect();

    let mut rows = Vec::new();

    // MCTS.
    let planner = MctsPlanner::new(MctsConfig::default());
    let mut total = 0.0;
    let mut scored = 0usize;
    for q in &queries {
        let res = planner.plan(&model, q);
        scored += res.plans_evaluated;
        total += run_plan_ms(db, &res.plan);
    }
    rows.push(PlannerRow {
        planner: "MCTS (200ms budget)".into(),
        total_executed_ms: total,
        avg_plans_scored: scored as f64 / queries.len() as f64,
    });

    // Greedy one-step: extend with the action whose completed-by-
    // cheapest-scan plan scores best — approximated by evaluating each
    // next-relation choice with HashJoin/SeqScan completion.
    let mut total = 0.0;
    let mut scored = 0usize;
    for q in &queries {
        let (plan, s) = greedy_plan(&model, q);
        scored += s;
        total += run_plan_ms(db, &plan);
    }
    rows.push(PlannerRow {
        planner: "greedy one-step".into(),
        total_executed_ms: total,
        avg_plans_scored: scored as f64 / queries.len() as f64,
    });

    // Exhaustive: every left-deep ordering with Hash/SeqScan operators
    // plus operator variants on the final join.
    let mut total = 0.0;
    let mut scored = 0usize;
    for q in &queries {
        let mut best: Option<(f64, PlanNode)> = None;
        for ordering in enumerate_orderings(q, 500) {
            for join_op in JoinOp::ALL {
                let spec = LeftDeepSpec {
                    scans: ordering.iter().map(|a| (a.clone(), ScanOp::SeqScan)).collect(),
                    joins: vec![join_op; ordering.len().saturating_sub(1)],
                };
                let Ok(plan) = spec.compile(q) else { continue };
                let t = model.predict_runtime_ms(q, &plan);
                scored += 1;
                if best.as_ref().map(|(bt, _)| t < *bt).unwrap_or(true) {
                    best = Some((t, plan));
                }
            }
        }
        let (_, plan) = best.expect("connected query has orderings");
        total += run_plan_ms(db, &plan);
    }
    rows.push(PlannerRow {
        planner: "exhaustive (left-deep)".into(),
        total_executed_ms: total,
        avg_plans_scored: scored as f64 / queries.len() as f64,
    });

    let md = markdown_table(
        &["planner", "total executed (ms)", "avg plans scored/query"],
        &rows
            .iter()
            .map(|r| vec![r.planner.clone(), fmt(r.total_executed_ms), fmt(r.avg_plans_scored)])
            .collect::<Vec<_>>(),
    );
    emit("ablation_planner", &rows, &md)?;
    Ok(())
}

/// Greedy: grow the plan one relation at a time, at each step picking the
/// (relation, ops) whose *completed* plan (cheapest completion heuristic)
/// the model scores fastest. Returns (plan, plans scored).
fn greedy_plan(model: &QPSeeker, q: &Query) -> (PlanNode, usize) {
    use std::collections::BTreeSet;
    let mut scans: Vec<(String, ScanOp)> = Vec::new();
    let mut joins: Vec<JoinOp> = Vec::new();
    let mut joined: BTreeSet<String> = BTreeSet::new();
    let mut scored = 0usize;
    // Start: best single relation by completing greedily with SeqScans.
    let mut best_start: Option<(f64, String, ScanOp)> = None;
    for r in &q.relations {
        for scan in ScanOp::ALL {
            if let Some(plan) = complete(q, &[(r.alias.clone(), scan)], &[]) {
                let t = model.predict_runtime_ms(q, &plan);
                scored += 1;
                if best_start.as_ref().map(|(bt, _, _)| t < *bt).unwrap_or(true) {
                    best_start = Some((t, r.alias.clone(), scan));
                }
            }
        }
    }
    let (_, alias, scan) = best_start.expect("non-empty query");
    joined.insert(alias.clone());
    scans.push((alias, scan));
    while joined.len() < q.relations.len() {
        let mut best: Option<(f64, String, ScanOp, JoinOp)> = None;
        for next in q.neighbors(&joined) {
            for scan in ScanOp::ALL {
                for join in JoinOp::ALL {
                    let mut s2 = scans.clone();
                    s2.push((next.clone(), scan));
                    let mut j2 = joins.clone();
                    j2.push(join);
                    if let Some(plan) = complete(q, &s2, &j2) {
                        let t = model.predict_runtime_ms(q, &plan);
                        scored += 1;
                        if best.as_ref().map(|(bt, _, _, _)| t < *bt).unwrap_or(true) {
                            best = Some((t, next.clone(), scan, join));
                        }
                    }
                }
            }
        }
        let (_, alias, scan, join) = best.expect("connected query");
        joined.insert(alias.clone());
        scans.push((alias, scan));
        joins.push(join);
    }
    let plan = LeftDeepSpec { scans, joins }.compile(q).expect("valid greedy plan");
    (plan, scored)
}

/// Complete a partial left-deep prefix with SeqScan/HashJoin steps in
/// neighbor order (heuristic completion for greedy scoring).
fn complete(q: &Query, scans: &[(String, ScanOp)], joins: &[JoinOp]) -> Option<PlanNode> {
    use std::collections::BTreeSet;
    let mut scans = scans.to_vec();
    let mut joins = joins.to_vec();
    let mut joined: BTreeSet<String> = scans.iter().map(|(a, _)| a.clone()).collect();
    while joined.len() < q.relations.len() {
        let next = q.neighbors(&joined).into_iter().next()?;
        joined.insert(next.clone());
        scans.push((next, ScanOp::SeqScan));
        joins.push(JoinOp::HashJoin);
    }
    LeftDeepSpec { scans, joins }.compile(q).ok()
}
