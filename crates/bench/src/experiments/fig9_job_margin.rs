//! **Fig. 9** — cross-workload planning: train QPSeeker and Bao on the
//! *Synthetic* workload, then plan all 113 JOB queries and compare each
//! produced plan's execution time against the PostgreSQL baseline plan.
//!
//! Paper shape: Bao fails to adapt (slower than PostgreSQL overall, better
//! on only a couple of queries); QPSeeker stays on par with PostgreSQL,
//! better on several queries and worse on only a few.

use crate::{emit, fmt, markdown_table, run_plan_ms, Context};
use qpseeker_baselines::{Bao, BaoConfig};
use qpseeker_core::prelude::*;
use qpseeker_engine::optimizer::PgOptimizer;
use qpseeker_engine::query::Query;
use qpseeker_workloads::{job, JobConfig, Qep};
use serde::Serialize;

#[derive(Serialize)]
pub struct QueryRow {
    pub query_id: String,
    pub joins: usize,
    pub postgres_ms: f64,
    pub qpseeker_ms: f64,
    pub bao_ms: f64,
    /// Positive = QPSeeker faster than PostgreSQL.
    pub qpseeker_margin_ms: f64,
    pub bao_margin_ms: f64,
}

#[derive(Serialize)]
pub struct Output {
    pub rows: Vec<QueryRow>,
    pub totals: Totals,
}

#[derive(Serialize)]
pub struct Totals {
    pub postgres_total_ms: f64,
    pub qpseeker_total_ms: f64,
    pub bao_total_ms: f64,
    pub qpseeker_better: usize,
    pub qpseeker_worse: usize,
    pub bao_better: usize,
    pub bao_worse: usize,
    pub avg_plans_evaluated: f64,
}

pub fn run(ctx: &Context) -> Result<(), CoreError> {
    let db = &ctx.imdb;
    // Train both learners on Synthetic (the cross-workload setting).
    // QPSeeker trains on the *sampled* variant (§3.1 setting (b)): the cost
    // model needs plan-space coverage to steer MCTS; Bao gains experience by
    // executing its arms' plans for the same queries.
    let synth = ctx.synthetic();
    let sampled = qpseeker_workloads::synthetic::generate_sampled(
        db,
        &qpseeker_workloads::SyntheticConfig {
            n_queries: ctx.scale.synthetic_queries,
            seed: ctx.scale.seed,
        },
        4,
    );
    let train_refs: Vec<&Qep> = sampled.qeps.iter().collect();
    let mut model = QPSeeker::new(db, ctx.scale.model_config());
    model.fit(&train_refs)?;

    let mut bao = Bao::new(db, BaoConfig { epochs: ctx.scale.epochs, ..Default::default() });
    let bao_queries: Vec<&Query> = synth.qeps.iter().map(|q| &q.query).collect();
    // Bao training executes plans; cap the experience set.
    let bao_train: Vec<&Query> = bao_queries.iter().take(120).cloned().collect();
    bao.train(&bao_train);

    let pg = PgOptimizer::new(db);
    let planner = MctsPlanner::new(MctsConfig::default());

    let queries = job::job_queries(db, &JobConfig::default());
    let mut rows = Vec::with_capacity(queries.len());
    let mut plans_evaluated = 0usize;
    // Margin tolerance: within 5% counts as "on par" (noise floor).
    let tol = 0.05;
    for (q, _tpl) in &queries {
        let pg_ms = run_plan_ms(db, &pg.plan(q));
        let res = planner.plan(&model, q);
        plans_evaluated += res.plans_evaluated;
        let qp_ms = run_plan_ms(db, &res.plan);
        let (bao_plan, _arm) = bao.plan(q);
        let bao_ms = run_plan_ms(db, &bao_plan);
        rows.push(QueryRow {
            query_id: q.id.clone(),
            joins: q.num_joins(),
            postgres_ms: pg_ms,
            qpseeker_ms: qp_ms,
            bao_ms,
            qpseeker_margin_ms: pg_ms - qp_ms,
            bao_margin_ms: pg_ms - bao_ms,
        });
    }

    let better = |margin: f64, base: f64| margin > tol * base;
    let worse = |margin: f64, base: f64| margin < -tol * base;
    let totals = Totals {
        postgres_total_ms: rows.iter().map(|r| r.postgres_ms).sum(),
        qpseeker_total_ms: rows.iter().map(|r| r.qpseeker_ms).sum(),
        bao_total_ms: rows.iter().map(|r| r.bao_ms).sum(),
        qpseeker_better: rows
            .iter()
            .filter(|r| better(r.qpseeker_margin_ms, r.postgres_ms))
            .count(),
        qpseeker_worse: rows.iter().filter(|r| worse(r.qpseeker_margin_ms, r.postgres_ms)).count(),
        bao_better: rows.iter().filter(|r| better(r.bao_margin_ms, r.postgres_ms)).count(),
        bao_worse: rows.iter().filter(|r| worse(r.bao_margin_ms, r.postgres_ms)).count(),
        avg_plans_evaluated: plans_evaluated as f64 / rows.len().max(1) as f64,
    };

    let md = markdown_table(
        &["system", "total (ms)", "vs PG", "better on", "worse on"],
        &[
            vec![
                "PostgreSQL".into(),
                fmt(totals.postgres_total_ms),
                "—".into(),
                "—".into(),
                "—".into(),
            ],
            vec![
                "QPSeeker (trained on Synthetic)".into(),
                fmt(totals.qpseeker_total_ms),
                fmt(totals.postgres_total_ms - totals.qpseeker_total_ms),
                totals.qpseeker_better.to_string(),
                totals.qpseeker_worse.to_string(),
            ],
            vec![
                "Bao (trained on Synthetic)".into(),
                fmt(totals.bao_total_ms),
                fmt(totals.postgres_total_ms - totals.bao_total_ms),
                totals.bao_better.to_string(),
                totals.bao_worse.to_string(),
            ],
        ],
    );
    let out = Output { rows, totals };
    emit("fig9_job_margin", &out, &md)?;
    println!("avg plans evaluated per query by MCTS: {:.0}", out.totals.avg_plans_evaluated);
    Ok(())
}
