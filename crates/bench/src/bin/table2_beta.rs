//! Regenerates the `table2_beta` experiment (see DESIGN.md §4). Pass `--quick`
//! for a smoke-scale run.
fn main() {
    let ctx = qpseeker_bench::Context::new(qpseeker_bench::Scale::from_args());
    qpseeker_bench::experiments::table2_beta::run(&ctx);
}
