//! Runs every table/figure experiment in sequence (the full reproduction).
//! Pass `--quick` for a smoke-scale run.
use qpseeker_bench::{experiments, Context, Scale};
use qpseeker_core::prelude::CoreError;
use std::process::ExitCode;

fn run_all(ctx: &Context) -> Result<(), CoreError> {
    experiments::table1_workloads::run(ctx)?;
    experiments::table2_beta::run(ctx)?;
    experiments::table3_cost::run(ctx)?;
    experiments::table4_cardinality::run(ctx)?;
    experiments::table5_runtime::run(ctx)?;
    experiments::fig5_latent::run(ctx)?;
    experiments::fig8_sampling_tabert::run(ctx)?;
    experiments::fig9_job_margin::run(ctx)?;
    experiments::fig10_through_time::run(ctx)?;
    experiments::ablations::run(ctx)
}

fn main() -> ExitCode {
    let start = std::time::Instant::now();
    let ctx = Context::new(Scale::from_args());
    if let Err(e) = run_all(&ctx) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "\nall experiments done in {:.1}s; results in {}",
        start.elapsed().as_secs_f64(),
        qpseeker_bench::results_dir().display()
    );
    ExitCode::SUCCESS
}
