//! Regenerates the `fig10_through_time` experiment (see DESIGN.md §4). Pass `--quick`
//! for a smoke-scale run.
fn main() -> std::process::ExitCode {
    let ctx = qpseeker_bench::Context::new(qpseeker_bench::Scale::from_args());
    match qpseeker_bench::experiments::fig10_through_time::run(&ctx) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
