//! Regenerates the `table4_cardinality` experiment (see DESIGN.md §4). Pass `--quick`
//! for a smoke-scale run.
fn main() {
    let ctx = qpseeker_bench::Context::new(qpseeker_bench::Scale::from_args());
    qpseeker_bench::experiments::table4_cardinality::run(&ctx);
}
