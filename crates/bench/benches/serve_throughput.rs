//! Criterion benchmark for the supervised serving loop's worker pool:
//! queries per second at 1, 2 and 4 workers over the same saturated
//! request stream. Real threads do real planning; the reported figure of
//! merit for scaling is the virtual-clock makespan (see DESIGN.md §13 —
//! the container is single-core, so wall-clock alone under-reports the
//! admission-level parallelism the pool models).

use criterion::{criterion_group, criterion_main, Criterion};
use qpseeker_core::prelude::*;
use qpseeker_storage::Database;
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::hint::black_box;
use std::sync::Arc;

fn setup() -> (Arc<Database>, QPSeeker, Vec<QueryRequest>) {
    let db = Arc::new(qpseeker_storage::datagen::imdb::generate(0.04, 2));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 12, seed: 3 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");
    // A saturated stream: everything arrives at t=0, so the virtual servers
    // are never idle and the makespan measures pure service capacity.
    let requests: Vec<QueryRequest> =
        synthetic::generate_queries(&db, &SyntheticConfig { n_queries: 32, seed: 0xbe4c })
            .into_iter()
            .map(|(query, _sql)| QueryRequest { query, arrival_ms: 0.0, deadline_ms: 1e12 })
            .collect();
    (db, model, requests)
}

fn pool_cfg(workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 8, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        failure_threshold: 2.0,
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        ..SupervisorConfig::default()
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let (db, model, requests) = setup();
    for workers in [1usize, 2, 4] {
        c.bench_function(&format!("serve_throughput/workers_{workers}"), |b| {
            b.iter(|| {
                let mut sup = Supervisor::new(pool_cfg(workers));
                let outcomes = sup.run(&db, Some(&model), black_box(&requests));
                black_box((outcomes, sup.virtual_now_ms()))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_throughput
}
criterion_main!(benches);
