//! Criterion micro-benchmarks for the substrates and the model's inference
//! path: executor throughput, optimizer planning, TabSim encoding, QPSeeker
//! prediction and one MCTS planning call.

use criterion::{criterion_group, criterion_main, Criterion};
use qpseeker_core::prelude::*;
use qpseeker_engine::prelude::*;
use qpseeker_tabert::{TabSim, TabertCache, TabertConfig};
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.3, 1);
    let mut q = Query::new("bench");
    q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
    q.joins = vec![JoinPred {
        left: ColRef::new("cast_info", "movie_id"),
        right: ColRef::new("title", "id"),
    }];
    let plan = PlanNode::join(
        &q,
        JoinOp::HashJoin,
        PlanNode::scan(&q, "title", ScanOp::SeqScan),
        PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
    );
    let ex = Executor::new(&db);
    c.bench_function("executor/hash_join_2way", |b| {
        b.iter(|| black_box(ex.execute(black_box(&plan))))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.1, 1);
    let mut q = Query::new("bench");
    for t in ["title", "movie_info", "movie_keyword", "cast_info", "movie_companies"] {
        q.relations.push(RelRef::new(t));
    }
    for t in ["movie_info", "movie_keyword", "cast_info", "movie_companies"] {
        q.joins
            .push(JoinPred { left: ColRef::new(t, "movie_id"), right: ColRef::new("title", "id") });
    }
    let opt = PgOptimizer::new(&db);
    c.bench_function("optimizer/dp_5way", |b| b.iter(|| black_box(opt.plan(black_box(&q)))));
}

fn bench_tabert(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.1, 1);
    c.bench_function("tabert/encode_table_uncached", |b| {
        b.iter_with_setup(
            || (TabSim::new(TabertConfig::paper_default()), TabertCache::default()),
            |(ts, mut cache)| {
                black_box(ts.encode_table(&mut cache, &db, "title", "select * from title"))
            },
        )
    });
}

fn bench_matmul_kernel(c: &mut Criterion) {
    use qpseeker_nn::tensor::Tensor;
    // Shapes matched to the small-config VAE encoder hot spot.
    let a = Tensor::from_vec(8, 96, (0..8 * 96).map(|i| (i as f32 * 0.37).sin()).collect());
    let b_ = Tensor::from_vec(96, 96, (0..96 * 96).map(|i| (i as f32 * 0.11).cos()).collect());
    c.bench_function("nn/matmul_8x96x96", |b| {
        b.iter(|| black_box(black_box(&a).matmul(black_box(&b_))))
    });
    let mut out = Tensor::zeros(8, 96);
    c.bench_function("nn/matmul_into_8x96x96", |b| {
        b.iter(|| {
            black_box(&a).matmul_into(black_box(&b_), &mut out);
            black_box(&out);
        })
    });
}

fn bench_model(c: &mut Criterion) {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.06, 1));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 40, seed: 1 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs).expect("training succeeds");
    let qep = w.qeps.iter().find(|q| q.query.num_joins() >= 1).expect("join query");
    // Tape-free fast path (the default) vs the autodiff-tape reference.
    c.bench_function("qpseeker/predict", |b| {
        b.iter(|| black_box(model.predict(black_box(&qep.query), black_box(&qep.plan))))
    });
    c.bench_function("qpseeker/predict_tape", |b| {
        b.iter(|| black_box(model.predict_tape(black_box(&qep.query), black_box(&qep.plan))))
    });
    // Amortized per-plan cost when the query is encoded once and every
    // candidate reuses the context — the MCTS hot-loop shape.
    c.bench_function("qpseeker/predict_with_context", |b| {
        let mut ctx = model.query_context(&qep.query);
        b.iter(|| {
            black_box(model.predict_with_context(
                black_box(&qep.query),
                black_box(&qep.plan),
                &mut ctx,
            ))
        })
    });
    // Batched amortization: 16 candidate plans scored in one forward pass
    // vs 16 scalar predictions (the MCTS flush shape).
    let pool_refs: Vec<&PlanNode> = vec![&qep.plan; 16];
    c.bench_function("qpseeker/predict_batch_16", |b| {
        b.iter(|| black_box(model.predict_batch(black_box(&qep.query), black_box(&pool_refs))))
    });
    let planner =
        MctsPlanner::new(MctsConfig { budget_ms: 1e9, max_simulations: 20, ..Default::default() });
    c.bench_function("qpseeker/mcts_20_simulations", |b| {
        b.iter(|| black_box(planner.plan(&model, black_box(&qep.query))))
    });
    // Search throughput under the paper's default wall-clock budget, scaled
    // to 100 ms per iteration: plans_evaluated is the figure of merit.
    let budget = MctsPlanner::new(MctsConfig {
        budget_ms: 100.0,
        max_simulations: usize::MAX,
        ..Default::default()
    });
    c.bench_function("qpseeker/mcts_plans_per_100ms", |b| {
        b.iter(|| black_box(budget.plan(&model, black_box(&qep.query)).plans_evaluated))
    });
}

fn bench_training_step(c: &mut Criterion) {
    let db = std::sync::Arc::new(qpseeker_storage::datagen::imdb::generate(0.06, 1));
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 16, seed: 1 });
    c.bench_function("qpseeker/train_epoch_16qeps", |b| {
        b.iter_with_setup(
            || {
                let mut cfg = ModelConfig::small();
                cfg.epochs = 1;
                QPSeeker::new(&db, cfg)
            },
            |mut model| {
                let refs: Vec<&Qep> = w.qeps.iter().collect();
                black_box(model.fit(&refs).expect("training succeeds"))
            },
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_optimizer, bench_tabert, bench_matmul_kernel, bench_model,
        bench_training_step
}
criterion_main!(benches);
