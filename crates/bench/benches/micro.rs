//! Criterion micro-benchmarks for the substrates and the model's inference
//! path: executor throughput, optimizer planning, TabSim encoding, QPSeeker
//! prediction and one MCTS planning call.

use criterion::{criterion_group, criterion_main, Criterion};
use qpseeker_core::prelude::*;
use qpseeker_engine::prelude::*;
use qpseeker_tabert::{TabSim, TabertConfig};
use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.3, 1);
    let mut q = Query::new("bench");
    q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
    q.joins = vec![JoinPred {
        left: ColRef::new("cast_info", "movie_id"),
        right: ColRef::new("title", "id"),
    }];
    let plan = PlanNode::join(
        &q,
        JoinOp::HashJoin,
        PlanNode::scan(&q, "title", ScanOp::SeqScan),
        PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
    );
    let ex = Executor::new(&db);
    c.bench_function("executor/hash_join_2way", |b| {
        b.iter(|| black_box(ex.execute(black_box(&plan))))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.1, 1);
    let mut q = Query::new("bench");
    for t in ["title", "movie_info", "movie_keyword", "cast_info", "movie_companies"] {
        q.relations.push(RelRef::new(t));
    }
    for t in ["movie_info", "movie_keyword", "cast_info", "movie_companies"] {
        q.joins
            .push(JoinPred { left: ColRef::new(t, "movie_id"), right: ColRef::new("title", "id") });
    }
    let opt = PgOptimizer::new(&db);
    c.bench_function("optimizer/dp_5way", |b| b.iter(|| black_box(opt.plan(black_box(&q)))));
}

fn bench_tabert(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.1, 1);
    c.bench_function("tabert/encode_table_uncached", |b| {
        b.iter_with_setup(
            || TabSim::new(TabertConfig::paper_default()),
            |mut ts| black_box(ts.encode_table(&db, "title", "select * from title")),
        )
    });
}

fn bench_model(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.06, 1);
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 40, seed: 1 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&refs);
    let qep = w.qeps.iter().find(|q| q.query.num_joins() >= 1).expect("join query");
    c.bench_function("qpseeker/predict", |b| {
        b.iter(|| black_box(model.predict(black_box(&qep.query), black_box(&qep.plan))))
    });
    let planner =
        MctsPlanner::new(MctsConfig { budget_ms: 1e9, max_simulations: 20, ..Default::default() });
    c.bench_function("qpseeker/mcts_20_simulations", |b| {
        b.iter(|| black_box(planner.plan(&mut model, black_box(&qep.query))))
    });
}

fn bench_training_step(c: &mut Criterion) {
    let db = qpseeker_storage::datagen::imdb::generate(0.06, 1);
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 16, seed: 1 });
    c.bench_function("qpseeker/train_epoch_16qeps", |b| {
        b.iter_with_setup(
            || {
                let mut cfg = ModelConfig::small();
                cfg.epochs = 1;
                QPSeeker::new(&db, cfg)
            },
            |mut model| {
                let refs: Vec<&Qep> = w.qeps.iter().collect();
                black_box(model.fit(&refs))
            },
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor, bench_optimizer, bench_tabert, bench_model, bench_training_step
}
criterion_main!(benches);
