//! Shared helpers for the competitor systems: single-target log
//! normalization and transferable per-plan-node features.

use qpseeker_engine::explain::Explain;
use qpseeker_engine::plan::{PhysicalOp, PlanNode};
use qpseeker_engine::query::Query;
use qpseeker_storage::Database;

/// `ln(1+x)` z-score normalizer for one scalar target.
#[derive(Debug, Clone)]
pub struct LogNormalizer {
    pub mean: f64,
    pub std: f64,
}

impl LogNormalizer {
    /// # Panics
    /// Panics on empty input.
    pub fn fit(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit on empty values");
        let logs: Vec<f64> = values.iter().map(|v| v.max(0.0).ln_1p()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / logs.len() as f64;
        Self { mean, std: var.sqrt().max(1e-6) }
    }

    pub fn encode(&self, v: f64) -> f32 {
        ((v.max(0.0).ln_1p() - self.mean) / self.std) as f32
    }

    pub fn decode(&self, n: f32) -> f64 {
        ((n as f64 * self.std + self.mean).clamp(-10.0, 60.0).exp() - 1.0).max(0.0)
    }
}

/// Number of transferable per-node features (see [`node_features`]).
pub const NODE_FEAT_DIM: usize = PhysicalOp::COUNT + 7;

/// Schema-agnostic ("zero-shot transferable") features of every plan node,
/// postorder. Only quantities that exist in any database appear: operator
/// one-hot, log-scaled EXPLAIN estimates, base-table size/blocks for scans,
/// predicate counts and estimated selectivity.
pub fn node_features(db: &Database, query: &Query, plan: &PlanNode) -> Vec<Vec<f32>> {
    let explain = Explain::new(db);
    let estimates = explain.explain(query, plan);
    let nodes = plan.postorder();
    nodes
        .iter()
        .zip(&estimates)
        .map(|(node, est)| {
            let mut f = vec![0.0f32; NODE_FEAT_DIM];
            f[node.physical_op().one_hot_index()] = 1.0;
            let base = PhysicalOp::COUNT;
            f[base] = (est.rows.max(0.0).ln_1p() / 20.0) as f32;
            f[base + 1] = (est.cost.max(0.0).ln_1p() / 20.0) as f32;
            f[base + 2] = (est.time_ms.max(0.0).ln_1p() / 15.0) as f32;
            match node {
                PlanNode::Scan { table, filters, .. } => {
                    let stats = db.table_stats(table).expect("stats exist");
                    f[base + 3] = ((stats.n_rows as f64).ln_1p() / 20.0) as f32;
                    f[base + 4] = ((stats.n_blocks as f64).ln_1p() / 15.0) as f32;
                    f[base + 5] = filters.len() as f32 / 8.0;
                    f[base + 6] = (est.rows / stats.n_rows.max(1) as f64) as f32;
                    // selectivity
                }
                PlanNode::Join { preds, .. } => {
                    f[base + 5] = preds.len() as f32 / 8.0;
                }
            }
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::plan::{JoinOp, ScanOp};
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;

    #[test]
    fn log_normalizer_round_trip() {
        let n = LogNormalizer::fit(&[1.0, 10.0, 100.0, 1000.0]);
        for v in [2.0, 50.0, 800.0] {
            let d = n.decode(n.encode(v));
            assert!((d - v).abs() < 0.01 * (1.0 + v), "{d} vs {v}");
        }
    }

    #[test]
    fn node_features_shape_and_content() {
        let db = imdb::generate(0.05, 1);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        let feats = node_features(&db, &q, &plan);
        assert_eq!(feats.len(), 3);
        for f in &feats {
            assert_eq!(f.len(), NODE_FEAT_DIM);
            assert!(f.iter().all(|v| v.is_finite()));
            // Exactly one operator bit set.
            assert_eq!(f[..PhysicalOp::COUNT].iter().filter(|&&v| v == 1.0).count(), 1);
        }
        // Scans carry table-size features, joins do not.
        assert!(feats[0][PhysicalOp::COUNT + 3] > 0.0);
        assert_eq!(feats[2][PhysicalOp::COUNT + 3], 0.0);
    }

    #[test]
    fn features_are_schema_agnostic_across_databases() {
        // The same code path must produce features on a totally different
        // schema (the zero-shot premise).
        let db = qpseeker_storage::datagen::synthdb::generate("z", 4, 200, 1);
        let t0 = "z_t1".to_string();
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new(t0.clone())];
        let plan = PlanNode::scan(&q, &t0, ScanOp::SeqScan);
        let feats = node_features(&db, &q, &plan);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].len(), NODE_FEAT_DIM);
    }
}
