//! Bao (Marcus et al.): the hint-set advisor — the paper's query-
//! optimization competitor (§7.2, Figs. 9 & 10).
//!
//! Bao does not plan from scratch; it steers the existing cost-based
//! optimizer by choosing a *hint set* (operator classes to disable) per
//! query, using a learned value model over the resulting plans. Training
//! gains experience by executing the plans its arms produce on the training
//! workload (the paper: "we trained Bao by letting it gain experience
//! through the execution of the training set").
//!
//! Simplification vs. the original: the value network is a pooled
//! per-node MLP rather than a tree convolution, and arm selection during
//! training is round-robin experience collection rather than Thompson
//! sampling (documented in DESIGN.md §5; the evaluated behaviour — pick the
//! arm whose plan the value model predicts fastest — is the same).

use crate::common::{node_features, LogNormalizer, NODE_FEAT_DIM};
use qpseeker_engine::executor::Executor;
use qpseeker_engine::optimizer::{Hints, PgOptimizer};
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_nn::prelude::*;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Bao hyperparameters.
#[derive(Debug, Clone)]
pub struct BaoConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    pub seed: u64,
    /// Executions collected per training query (arms sampled round-robin).
    pub experiences_per_query: usize,
}

impl Default for BaoConfig {
    fn default() -> Self {
        Self { hidden: 48, epochs: 25, learning_rate: 1e-3, seed: 0xba0, experiences_per_query: 3 }
    }
}

/// The Bao advisor bound to one database.
pub struct Bao<'a> {
    db: &'a Database,
    cfg: BaoConfig,
    store: ParamStore,
    node_mlp: Mlp,
    value_head: Mlp,
    norm: Option<LogNormalizer>,
    hint_sets: Vec<Hints>,
}

impl<'a> Bao<'a> {
    pub fn new(db: &'a Database, cfg: BaoConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(cfg.seed);
        let node_mlp = Mlp::new(
            &mut store,
            &mut init,
            "bao.node",
            &[NODE_FEAT_DIM, cfg.hidden, cfg.hidden],
            Activation::Relu,
            Activation::Relu,
        );
        // Mean- and max-pooled node embeddings → value.
        let value_head = Mlp::new(
            &mut store,
            &mut init,
            "bao.value",
            &[cfg.hidden, cfg.hidden, 1],
            Activation::Relu,
            Activation::Identity,
        );
        Self { db, cfg, store, node_mlp, value_head, norm: None, hint_sets: Hints::bao_hint_sets() }
    }

    pub fn num_arms(&self) -> usize {
        self.hint_sets.len()
    }

    fn plan_value(&self, g: &mut Graph, query: &Query, plan: &PlanNode) -> Var {
        let feats = node_features(self.db, query, plan);
        let rows: Vec<Tensor> = feats.into_iter().map(Tensor::row).collect();
        let refs: Vec<&Tensor> = rows.iter().collect();
        let x = g.constant(Tensor::stack_rows(&refs));
        let h = self.node_mlp.forward(g, &self.store, x); // [n, hidden]
        let pooled = g.mean_rows(h);
        self.value_head.forward(g, &self.store, pooled)
    }

    /// Gain experience on a training workload: execute the plans produced by
    /// a rotating subset of arms and regress their runtimes.
    pub fn train(&mut self, queries: &[&Query]) {
        assert!(!queries.is_empty(), "Bao training set is empty");
        let ex = Executor::new(self.db);
        let mut experiences: Vec<(Query, PlanNode, f64)> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            for a in 0..self.cfg.experiences_per_query.min(self.hint_sets.len()) {
                let arm = (qi + a) % self.hint_sets.len();
                let opt = PgOptimizer::with_hints(self.db, self.hint_sets[arm].clone());
                let plan = opt.plan(q);
                let res = ex.execute(&plan);
                experiences.push(((*q).clone(), plan, res.time_ms));
            }
        }
        self.norm = Some(LogNormalizer::fit(&experiences.iter().map(|e| e.2).collect::<Vec<_>>()));
        let norm = self.norm.clone().expect("just set");
        let mut opt = Adam::new(self.cfg.learning_rate as f32);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut order: Vec<usize> = (0..experiences.len()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(16) {
                self.store.zero_grads();
                let mut g = Graph::new();
                let mut preds = Vec::new();
                let mut targets = Vec::new();
                for &i in chunk {
                    let (q, p, t) = &experiences[i];
                    preds.push(self.plan_value(&mut g, q, p));
                    targets.push(Tensor::scalar(norm.encode(*t)));
                }
                let pv = g.stack_rows(&preds);
                let trefs: Vec<&Tensor> = targets.iter().collect();
                let tv = g.constant(Tensor::stack_rows(&trefs));
                let loss = g.mse(pv, tv);
                g.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// Advise: produce every arm's plan, score each with the value model and
    /// return the plan of the best arm (plus the arm index).
    pub fn plan(&self, query: &Query) -> (PlanNode, usize) {
        assert!(self.norm.is_some(), "Bao must be trained first");
        let mut best: Option<(f64, PlanNode, usize)> = None;
        for (arm, hints) in self.hint_sets.iter().enumerate() {
            let opt = PgOptimizer::with_hints(self.db, hints.clone());
            let plan = opt.plan(query);
            let mut g = Graph::new();
            let v = self.plan_value(&mut g, query, &plan);
            let score = g.value(v).get(0, 0) as f64;
            if best.as_ref().map(|(s, _, _)| score < *s).unwrap_or(true) {
                best = Some((score, plan, arm));
            }
        }
        let (_, plan, arm) = best.expect("at least one arm");
        (plan, arm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, SyntheticConfig};

    fn setup() -> (Database, Vec<Query>) {
        let db = imdb::generate(0.05, 8);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 20, seed: 8 });
        let queries = w.qeps.into_iter().map(|q| q.query).collect();
        (db, queries)
    }

    #[test]
    fn trains_and_advises_valid_plans() {
        let (db, queries) = setup();
        let mut bao = Bao::new(&db, BaoConfig { epochs: 4, ..Default::default() });
        let refs: Vec<&Query> = queries.iter().collect();
        bao.train(&refs);
        for q in queries.iter().take(5) {
            let (plan, arm) = bao.plan(q);
            assert!(plan.validate(q).is_ok());
            assert!(arm < bao.num_arms());
        }
    }

    #[test]
    fn arm_choice_is_deterministic_after_training() {
        let (db, queries) = setup();
        let mut bao = Bao::new(&db, BaoConfig { epochs: 3, ..Default::default() });
        let refs: Vec<&Query> = queries.iter().collect();
        bao.train(&refs);
        let (p1, a1) = bao.plan(&queries[0]);
        let (p2, a2) = bao.plan(&queries[0]);
        assert_eq!(a1, a2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn has_multiple_hint_arms() {
        let (db, _) = setup();
        let bao = Bao::new(&db, BaoConfig::default());
        assert!(bao.num_arms() >= 4);
    }

    #[test]
    #[should_panic(expected = "trained first")]
    fn plan_before_train_panics() {
        let (db, queries) = setup();
        let bao = Bao::new(&db, BaoConfig::default());
        bao.plan(&queries[0]);
    }
}
