//! QPPNet (Marcus & Papaemmanouil): the plan-structured runtime predictor —
//! the paper's execution-time competitor (Table 5).
//!
//! One small MLP ("neural unit") per physical operator type; units are
//! assembled dynamically into a network isomorphic to the plan tree. Each
//! unit consumes its node's features plus the pooled data vectors of its
//! children and emits `[data vector ‖ latency]`; the root's latency output
//! is the prediction.

use crate::common::{node_features, LogNormalizer, NODE_FEAT_DIM};
use qpseeker_engine::plan::{PhysicalOp, PlanNode};
use qpseeker_engine::query::Query;
use qpseeker_nn::prelude::*;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// QPPNet hyperparameters.
#[derive(Debug, Clone)]
pub struct QppNetConfig {
    /// Data-vector width passed between units.
    pub data_dim: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub seed: u64,
}

impl Default for QppNetConfig {
    fn default() -> Self {
        Self {
            data_dim: 16,
            hidden: 48,
            epochs: 30,
            batch_size: 16,
            learning_rate: 1e-3,
            seed: 0x9909,
        }
    }
}

/// Featurized plan mirror.
struct FeatTree {
    feats: Tensor,
    children: Vec<FeatTree>,
}

/// The QPPNet model.
pub struct QppNet<'a> {
    db: &'a Database,
    cfg: QppNetConfig,
    store: ParamStore,
    /// One unit per operator type, indexed by `PhysicalOp::one_hot_index`.
    units: Vec<Mlp>,
    norm: Option<LogNormalizer>,
}

impl<'a> QppNet<'a> {
    pub fn new(db: &'a Database, cfg: QppNetConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(cfg.seed);
        let in_dim = NODE_FEAT_DIM + cfg.data_dim;
        let out_dim = cfg.data_dim + 1;
        let units = (0..PhysicalOp::COUNT)
            .map(|i| {
                Mlp::new(
                    &mut store,
                    &mut init,
                    &format!("qppnet.unit{i}"),
                    &[in_dim, cfg.hidden, cfg.hidden, out_dim],
                    Activation::Relu,
                    Activation::Identity,
                )
            })
            .collect();
        Self { db, cfg, store, units, norm: None }
    }

    fn featurize(&self, query: &Query, plan: &PlanNode) -> FeatTree {
        let flat = node_features(self.db, query, plan);
        let mut idx = 0usize;
        fn build(node: &PlanNode, flat: &[Vec<f32>], idx: &mut usize) -> FeatTree {
            let children = match node {
                PlanNode::Scan { .. } => Vec::new(),
                PlanNode::Join { left, right, .. } => {
                    vec![build(left, flat, idx), build(right, flat, idx)]
                }
            };
            let f = Tensor::row(flat[*idx].clone());
            *idx += 1;
            FeatTree { feats: f, children }
        }
        let mut tree = build(plan, &flat, &mut idx);
        attach_ops(&mut tree, plan);
        tree
    }

    fn forward_node(&self, g: &mut Graph, node: &FeatTree, op_idx: &OpTree) -> Var {
        let child_data = if node.children.is_empty() {
            g.constant(Tensor::zeros(1, self.cfg.data_dim))
        } else {
            let hs: Vec<Var> = node
                .children
                .iter()
                .zip(&op_idx.children)
                .map(|(c, o)| {
                    let out = self.forward_node(g, c, o);
                    g.slice_cols(out, 0, self.cfg.data_dim)
                })
                .collect();
            let stacked = g.stack_rows(&hs);
            g.mean_rows(stacked)
        };
        let f = g.constant(node.feats.clone());
        let input = g.concat_cols(f, child_data);
        self.units[op_idx.op].forward(g, &self.store, input)
    }

    /// Train on (query, plan, true runtime) triples.
    pub fn fit(&mut self, train: &[(&Query, &PlanNode, f64)]) {
        assert!(!train.is_empty(), "QPPNet training set is empty");
        let times: Vec<f64> = train.iter().map(|&(_, _, t)| t).collect();
        self.norm = Some(LogNormalizer::fit(&times));
        let norm = self.norm.clone().expect("just set");
        let feats: Vec<(FeatTree, OpTree, f32)> = train
            .iter()
            .map(|&(q, p, t)| (self.featurize(q, p), OpTree::of(p), norm.encode(t)))
            .collect();
        let mut opt = Adam::new(self.cfg.learning_rate as f32);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut order: Vec<usize> = (0..feats.len()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.cfg.batch_size) {
                self.store.zero_grads();
                let mut g = Graph::new();
                let mut preds = Vec::with_capacity(chunk.len());
                let mut targets = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let (tree, ops, t) = &feats[i];
                    let out = self.forward_node(&mut g, tree, ops);
                    preds.push(g.slice_cols(out, self.cfg.data_dim, self.cfg.data_dim + 1));
                    targets.push(Tensor::scalar(*t));
                }
                let p = g.stack_rows(&preds);
                let trefs: Vec<&Tensor> = targets.iter().collect();
                let t = g.constant(Tensor::stack_rows(&trefs));
                let loss = g.mse(p, t);
                g.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// Predict the runtime (ms) of a plan.
    pub fn predict(&self, query: &Query, plan: &PlanNode) -> f64 {
        let norm = self.norm.as_ref().expect("QPPNet must be fitted first");
        let tree = self.featurize(query, plan);
        let ops = OpTree::of(plan);
        let mut g = Graph::new();
        let out = self.forward_node(&mut g, &tree, &ops);
        norm.decode(g.value(out).get(0, self.cfg.data_dim))
    }
}

/// Operator-type mirror of a plan tree (selects the unit per node).
struct OpTree {
    op: usize,
    children: Vec<OpTree>,
}

impl OpTree {
    fn of(plan: &PlanNode) -> Self {
        let children = match plan {
            PlanNode::Scan { .. } => Vec::new(),
            PlanNode::Join { left, right, .. } => vec![OpTree::of(left), OpTree::of(right)],
        };
        Self { op: plan.physical_op().one_hot_index(), children }
    }
}

fn attach_ops(_tree: &mut FeatTree, _plan: &PlanNode) {
    // FeatTree carries features only; operator routing lives in OpTree.
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    #[test]
    fn qppnet_learns_runtimes() {
        let db = imdb::generate(0.1, 1);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 100, seed: 6 });
        let (train, eval): (Vec<&Qep>, Vec<&Qep>) = w.split(0.8, false);
        let mut net = QppNet::new(&db, QppNetConfig { epochs: 25, ..Default::default() });
        let triples: Vec<(&Query, &PlanNode, f64)> =
            train.iter().map(|q| (&q.query, &q.plan, q.runtime_ms())).collect();
        net.fit(&triples);
        let mut errs: Vec<f64> = eval
            .iter()
            .map(|q| {
                let p = net.predict(&q.query, &q.plan).max(1e-3);
                let t = q.runtime_ms().max(1e-3);
                (p / t).max(t / p)
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 10.0, "QPPNet median q-error {median}");
    }

    #[test]
    fn per_operator_units_are_distinct() {
        let db = imdb::generate(0.05, 1);
        let net = QppNet::new(&db, QppNetConfig::default());
        assert_eq!(net.units.len(), PhysicalOp::COUNT);
        // Separate parameters per unit.
        assert_ne!(net.units[0].layers[0].w, net.units[1].layers[0].w);
    }

    #[test]
    fn deeper_plans_run_through_more_units() {
        let db = imdb::generate(0.05, 1);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 30, seed: 6 });
        let mut net = QppNet::new(&db, QppNetConfig { epochs: 2, ..Default::default() });
        let triples: Vec<(&Query, &PlanNode, f64)> =
            w.qeps.iter().map(|q| (&q.query, &q.plan, q.runtime_ms())).collect();
        net.fit(&triples);
        for q in w.qeps.iter().take(5) {
            let p = net.predict(&q.query, &q.plan);
            assert!(p.is_finite() && p >= 0.0);
        }
    }
}
