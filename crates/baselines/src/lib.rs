//! `qpseeker-baselines` — the competitor systems of the paper's evaluation.
//!
//! | System | Task | Paper table/figure |
//! |--------|------|--------------------|
//! | [`mscn::Mscn`] | cardinality estimation | Table 4 |
//! | [`qppnet::QppNet`] | runtime prediction | Table 5 |
//! | [`zeroshot::ZeroShot`] | cost estimation (transfer) | Table 3 |
//! | [`bao::Bao`] | query optimization (hint advisor) | Figs. 9-10 |
//!
//! The "PostgreSQL" competitor is `qpseeker_engine`'s own estimator and
//! optimizer. All models are built on `qpseeker-nn` and trained on the same
//! workloads as QPSeeker.

pub mod bao;
pub mod common;
pub mod mscn;
pub mod qppnet;
pub mod zeroshot;

pub use bao::{Bao, BaoConfig};
pub use common::{node_features, LogNormalizer, NODE_FEAT_DIM};
pub use mscn::{Mscn, MscnConfig};
pub use qppnet::{QppNet, QppNetConfig};
pub use zeroshot::{ZeroShot, ZeroShotConfig};
