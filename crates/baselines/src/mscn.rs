//! MSCN (Kipf et al.): the multi-set convolutional cardinality estimator —
//! the paper's cardinality-estimation competitor (Table 4).
//!
//! Three set modules (relations, joins, predicates) encode each set element
//! with a shared MLP, average over the set, concatenate, and regress the
//! (log-normalized) query cardinality. As in the paper's setup, only
//! *numeric* predicates are supported ("we had to remove any alphanumerical
//! filters per query").

use crate::common::LogNormalizer;
use qpseeker_engine::query::{CmpOp, Query};
use qpseeker_nn::prelude::*;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// MSCN hyperparameters (defaults follow the original paper's small config).
#[derive(Debug, Clone)]
pub struct MscnConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        Self { hidden: 64, epochs: 30, batch_size: 32, learning_rate: 1e-3, seed: 0x35c4 }
    }
}

/// Featurized query (three padded set matrices with masks).
struct MscnFeatures {
    rels: Tensor,
    rel_mask: Tensor,
    joins: Tensor,
    join_mask: Tensor,
    preds: Tensor,
    pred_mask: Tensor,
}

/// The MSCN estimator bound to one database schema.
pub struct Mscn<'a> {
    db: &'a Database,
    cfg: MscnConfig,
    store: ParamStore,
    rel_mlp: Mlp,
    join_mlp: Mlp,
    pred_mlp: Mlp,
    out_mlp: Mlp,
    col_index: HashMap<(String, String), usize>,
    col_ranges: Vec<(f64, f64)>,
    n_cols: usize,
    max_preds: usize,
    norm: Option<LogNormalizer>,
}

impl<'a> Mscn<'a> {
    pub fn new(db: &'a Database, cfg: MscnConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(cfg.seed);
        let n = db.catalog.num_tables().max(1);
        let m = db.catalog.num_joins().max(1);
        // Global column index (for predicate one-hots) + value ranges.
        let mut col_index = HashMap::new();
        let mut col_ranges = Vec::new();
        for t in &db.catalog.tables {
            for c in &t.columns {
                let stats = db
                    .table_stats(&t.name)
                    .and_then(|s| s.col(&c.name))
                    .map(|cs| (cs.histogram.min(), cs.histogram.max()))
                    .unwrap_or((0.0, 1.0));
                col_index.insert((t.name.clone(), c.name.clone()), col_ranges.len());
                col_ranges.push(stats);
            }
        }
        let n_cols = col_ranges.len();
        let pred_dim = n_cols + CmpOp::ALL.len() + 1;
        let h = cfg.hidden;
        let rel_mlp = Mlp::new(
            &mut store,
            &mut init,
            "mscn.rel",
            &[n, h, h],
            Activation::Relu,
            Activation::Relu,
        );
        let join_mlp = Mlp::new(
            &mut store,
            &mut init,
            "mscn.join",
            &[m, h, h],
            Activation::Relu,
            Activation::Relu,
        );
        let pred_mlp = Mlp::new(
            &mut store,
            &mut init,
            "mscn.pred",
            &[pred_dim, h, h],
            Activation::Relu,
            Activation::Relu,
        );
        let out_mlp = Mlp::new(
            &mut store,
            &mut init,
            "mscn.out",
            &[3 * h, h, 1],
            Activation::Relu,
            Activation::Identity,
        );
        Self {
            db,
            cfg,
            store,
            rel_mlp,
            join_mlp,
            pred_mlp,
            out_mlp,
            col_index,
            col_ranges,
            n_cols,
            max_preds: 8,
            norm: None,
        }
    }

    fn featurize(&self, query: &Query) -> MscnFeatures {
        let n = self.db.catalog.num_tables().max(1);
        let m = self.db.catalog.num_joins().max(1);
        let mut rels = Tensor::zeros(n, n);
        let mut rel_mask = Tensor::zeros(n, 1);
        for (row, r) in query.relations.iter().take(n).enumerate() {
            if let Some(i) = self.db.catalog.table_idx(&r.table) {
                rels.set(row, i, 1.0);
                rel_mask.set(row, 0, 1.0);
            }
        }
        let mut joins = Tensor::zeros(m, m);
        let mut join_mask = Tensor::zeros(m, 1);
        for (row, j) in query.joins.iter().take(m).enumerate() {
            let lt = query.table_of(&j.left.alias).unwrap_or(&j.left.alias);
            let rt = query.table_of(&j.right.alias).unwrap_or(&j.right.alias);
            if let Some(i) = self.db.catalog.join_idx(lt, &j.left.column, rt, &j.right.column) {
                joins.set(row, i, 1.0);
            }
            join_mask.set(row, 0, 1.0);
        }
        let pred_dim = self.n_cols + CmpOp::ALL.len() + 1;
        let mut preds = Tensor::zeros(self.max_preds, pred_dim);
        let mut pred_mask = Tensor::zeros(self.max_preds, 1);
        for (row, f) in query.filters.iter().take(self.max_preds).enumerate() {
            let table = query.table_of(&f.col.alias).unwrap_or(&f.col.alias);
            if let Some(&ci) = self.col_index.get(&(table.to_string(), f.col.column.clone())) {
                preds.set(row, ci, 1.0);
                let (lo, hi) = self.col_ranges[ci];
                let norm_v =
                    if hi > lo { ((f.value - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 };
                preds.set(row, pred_dim - 1, norm_v as f32);
            }
            let op_i = CmpOp::ALL.iter().position(|&o| o == f.op).expect("known op");
            preds.set(row, self.n_cols + op_i, 1.0);
            pred_mask.set(row, 0, 1.0);
        }
        MscnFeatures { rels, rel_mask, joins, join_mask, preds, pred_mask }
    }

    fn encode(&self, g: &mut Graph, f: &MscnFeatures) -> Var {
        let set = |g: &mut Graph, mlp: &Mlp, m: &Tensor, mask: &Tensor| -> Var {
            let x = g.constant(m.clone());
            let mk = g.constant(mask.clone());
            let h = mlp.forward(g, &self.store, x);
            let masked = g.mul_col_broadcast(h, mk);
            let s = g.sum_rows(masked);
            g.scale(s, 1.0 / mask.sum().max(1.0))
        };
        let r = set(g, &self.rel_mlp, &f.rels, &f.rel_mask);
        let j = set(g, &self.join_mlp, &f.joins, &f.join_mask);
        let p = set(g, &self.pred_mlp, &f.preds, &f.pred_mask);
        let cat = g.concat_cols_all(&[r, j, p]);
        self.out_mlp.forward(g, &self.store, cat)
    }

    /// Train on (query, true cardinality) pairs.
    pub fn fit(&mut self, train: &[(&Query, f64)]) {
        assert!(!train.is_empty(), "MSCN training set is empty");
        let cards: Vec<f64> = train.iter().map(|&(_, c)| c).collect();
        self.norm = Some(LogNormalizer::fit(&cards));
        let norm = self.norm.clone().expect("just set");
        let feats: Vec<(MscnFeatures, f32)> =
            train.iter().map(|&(q, c)| (self.featurize(q), norm.encode(c))).collect();
        let mut opt = Adam::new(self.cfg.learning_rate as f32);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut order: Vec<usize> = (0..feats.len()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.cfg.batch_size) {
                self.store.zero_grads();
                let mut g = Graph::new();
                let mut outs = Vec::with_capacity(chunk.len());
                let mut targets = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    outs.push(self.encode(&mut g, &feats[i].0));
                    targets.push(Tensor::scalar(feats[i].1));
                }
                let pred = g.stack_rows(&outs);
                let trefs: Vec<&Tensor> = targets.iter().collect();
                let t = g.constant(Tensor::stack_rows(&trefs));
                let loss = g.mse(pred, t);
                g.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// Predict the cardinality of a query.
    pub fn predict(&self, query: &Query) -> f64 {
        let norm = self.norm.as_ref().expect("MSCN must be fitted first");
        let f = self.featurize(query);
        let mut g = Graph::new();
        let out = self.encode(&mut g, &f);
        norm.decode(g.value(out).get(0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;
    use qpseeker_workloads::{synthetic, Qep, SyntheticConfig};

    #[test]
    fn mscn_learns_synthetic_cardinalities() {
        let db = imdb::generate(0.1, 1);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 120, seed: 5 });
        let (train, eval): (Vec<&Qep>, Vec<&Qep>) = w.split(0.8, false);
        let mut mscn = Mscn::new(&db, MscnConfig { epochs: 25, ..Default::default() });
        let pairs: Vec<(&qpseeker_engine::query::Query, f64)> =
            train.iter().map(|q| (&q.query, q.cardinality())).collect();
        mscn.fit(&pairs);
        // Median q-error on eval should beat a constant predictor by a lot.
        let mut errs: Vec<f64> = eval
            .iter()
            .map(|q| {
                let p = mscn.predict(&q.query);
                qpseeker_core_qerr(p, q.cardinality())
            })
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 20.0, "MSCN median q-error {median}");
    }

    fn qpseeker_core_qerr(p: f64, t: f64) -> f64 {
        let p = p.max(1.0);
        let t = t.max(1.0);
        (p / t).max(t / p)
    }

    #[test]
    fn prediction_is_deterministic_and_positive() {
        let db = imdb::generate(0.05, 1);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 20, seed: 5 });
        let mut mscn = Mscn::new(&db, MscnConfig { epochs: 3, ..Default::default() });
        let pairs: Vec<(&qpseeker_engine::query::Query, f64)> =
            w.qeps.iter().map(|q| (&q.query, q.cardinality())).collect();
        mscn.fit(&pairs);
        let a = mscn.predict(&w.qeps[0].query);
        let b = mscn.predict(&w.qeps[0].query);
        assert_eq!(a, b);
        assert!(a >= 0.0 && a.is_finite());
    }

    #[test]
    #[should_panic(expected = "fitted first")]
    fn predict_before_fit_panics() {
        let db = imdb::generate(0.02, 1);
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 2, seed: 5 });
        let mscn = Mscn::new(&db, MscnConfig::default());
        mscn.predict(&w.qeps[0].query);
    }
}
