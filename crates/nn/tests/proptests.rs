//! Property-based tests for the tensor and autograd layers.

use proptest::prelude::*;
use qpseeker_nn::pack::{gemm_packed_force, PackedGemm};
use qpseeker_nn::prelude::*;
use qpseeker_nn::tensor::{dot_force, matmul_kernel_force};

/// Strategy: a tensor with the given shape and bounded values.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..5, 1usize..5, 1usize..5)
}

/// Dimensions that straddle every blocking boundary in the kernel: 1 (no
/// blocks), 3 (tail only), 7/17 (blocks + tail), 96 (whole blocks, the
/// production hidden size).
fn kernel_dim() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 3, 7, 17, 96])
}

/// A matrix for the kernel tests: random values, but with a random subset of
/// 4-wide k-blocks forced to all-zero so the sparse skip path is exercised
/// (including the "every block zero" and "no block zero" extremes).
fn kernel_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    let blocks = cols.div_ceil(4);
    (
        proptest::collection::vec(-2.0f32..2.0, rows * cols),
        proptest::collection::vec(prop::bool::ANY, rows * blocks),
    )
        .prop_map(move |(mut data, zero_block)| {
            for r in 0..rows {
                for blk in 0..blocks {
                    if zero_block[r * blocks + blk] {
                        for c in (blk * 4..(blk + 1) * 4).take_while(|&c| c < cols) {
                            data[r * cols + c] = 0.0;
                        }
                    }
                }
            }
            Tensor::from_vec(rows, cols, data)
        })
}

/// Scalar triple-loop reference the blocked kernels are checked against.
fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The register-blocked kernel agrees with the naive triple loop over
    /// every combination of blocking-boundary shapes, including rows whose
    /// k-blocks are entirely zero (the sparse skip path).
    #[test]
    fn blocked_matmul_matches_naive_reference(
        (a, b) in (kernel_dim(), kernel_dim(), kernel_dim())
            .prop_flat_map(|(m, k, n)| (kernel_matrix(m, k), kernel_matrix(k, n)))
    ) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let fast = a.matmul(&b);
        let slow = matmul_naive(&a, &b);
        // The blocked kernel reassociates the k-sum, so allow a small
        // accumulation tolerance scaled to k.
        let tol = 1e-5 * (k as f32).sqrt().max(1.0);
        for (idx, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert!((x - y).abs() <= tol * (1.0 + y.abs()),
                "({m}x{k}x{n}) idx {idx}: blocked {x} vs naive {y}");
        }
    }

    /// FP-order contract: each row of an m-row product is bitwise identical
    /// to the m=1 product of that row alone. This is what lets MCTS score a
    /// batch of candidate plans and still match the scalar path bit for bit.
    #[test]
    fn batched_matmul_rows_bitwise_equal_scalar(
        (a, b) in (kernel_dim(), kernel_dim(), kernel_dim())
            .prop_flat_map(|(m, k, n)| (kernel_matrix(m, k), kernel_matrix(k, n)))
    ) {
        let batched = a.matmul(&b);
        for i in 0..a.rows() {
            let row = Tensor::from_vec(1, a.cols(), a.row_slice(i).to_vec());
            let single = row.matmul(&b);
            prop_assert_eq!(batched.row_slice(i), single.data(),
                "row {} of {}x{}x{} differs from its m=1 twin",
                i, a.rows(), a.cols(), b.cols());
        }
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ for all shapes.
    #[test]
    fn matmul_transpose_identity((m, k, n) in small_dims(),
                                 seed in 0u64..1000) {
        let mut init = Initializer::new(seed);
        let a = init.normal(m, k, 1.0);
        let b = init.normal(k, n, 1.0);
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul distributes over addition: A·(B+C) == A·B + A·C.
    #[test]
    fn matmul_distributive((m, k, n) in small_dims(), seed in 0u64..1000) {
        let mut init = Initializer::new(seed);
        let a = init.normal(m, k, 1.0);
        let b = init.normal(k, n, 1.0);
        let c = init.normal(k, n, 1.0);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// d(sum(x))/dx is exactly 1 everywhere, for any parameter shape.
    #[test]
    fn sum_gradient_is_ones(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(seed);
        let w = store.register("w", init.normal(rows, cols, 1.0));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let loss = g.sum_all(wv);
        g.backward(loss, &mut store);
        for &v in store.grad(w).data() {
            prop_assert!((v - 1.0).abs() < 1e-6);
        }
    }

    /// Softmax rows always sum to 1 and are positive, regardless of input scale.
    #[test]
    fn softmax_rows_is_a_distribution(t in tensor(3, 5), scale in 0.1f32..20.0) {
        let mut g = Graph::new();
        let x = g.constant(t.map(|v| v * scale));
        let y = g.softmax_rows(x);
        let out = g.value(y);
        for r in 0..out.rows() {
            let row = out.row_slice(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    /// Linear-layer gradients match finite differences on random shapes.
    #[test]
    fn linear_gradcheck((bi, i, o) in small_dims(), seed in 0u64..200) {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(seed);
        let layer = Linear::new(&mut store, &mut init, "l", i, o);
        let x = init.normal(bi, i, 1.0);

        store.zero_grads();
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = layer.forward(&mut g, &store, xv);
        let sq = g.mul(y, y);
        let loss = g.mean_all(sq);
        g.backward(loss, &mut store);
        let analytic = store.grad(layer.w).clone();

        let eps = 1e-2f32;
        for idx in 0..store.value(layer.w).len() {
            let orig = store.value(layer.w).data()[idx];
            let eval = |store: &ParamStore| {
                let mut g = Graph::new();
                let xv = g.constant(x.clone());
                let y = layer.forward(&mut g, store, xv);
                let sq = g.mul(y, y);
                let loss = g.mean_all(sq);
                g.value(loss).get(0, 0)
            };
            store.value_mut(layer.w).data_mut()[idx] = orig + eps;
            let lp = eval(&store);
            store.value_mut(layer.w).data_mut()[idx] = orig - eps;
            let lm = eval(&store);
            store.value_mut(layer.w).data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[idx];
            prop_assert!((a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {}: analytic {} vs numeric {}", idx, a, numeric);
        }
    }

    /// Reparameterized samples have roughly the statistics N(mu, sigma²).
    #[test]
    fn reparameterization_statistics(mu in -1.0f32..1.0, logvar in -1.0f32..1.0) {
        let n = 4000;
        let mut init = Initializer::new(99);
        let mut g = Graph::new();
        let muv = g.constant(Tensor::filled(n, 1, mu));
        let lv = g.constant(Tensor::filled(n, 1, logvar));
        let eps = g.constant(init.standard_normal(n, 1));
        let z = g.reparameterize(muv, lv, eps);
        let vals = g.value(z);
        let mean = vals.mean();
        let var = vals.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        prop_assert!((mean - mu).abs() < 0.1, "mean {} vs mu {}", mean, mu);
        prop_assert!((var - logvar.exp()).abs() < 0.25 * logvar.exp().max(1.0),
            "var {} vs sigma² {}", var, logvar.exp());
    }

    /// stack_rows ∘ slice recovers the original parts (graph shape ops are lossless).
    #[test]
    fn stack_then_split_roundtrip(a in tensor(2, 3), b in tensor(3, 3)) {
        let mut g = Graph::new();
        let av = g.constant(a.clone());
        let bv = g.constant(b.clone());
        let s = g.stack_rows(&[av, bv]);
        let out = g.value(s);
        prop_assert_eq!(out.rows(), 5);
        for r in 0..2 {
            prop_assert_eq!(out.row_slice(r), a.row_slice(r));
        }
        for r in 0..3 {
            prop_assert_eq!(out.row_slice(2 + r), b.row_slice(r));
        }
    }

    /// MSE is non-negative and zero iff pred == target.
    #[test]
    fn mse_nonnegative(p in tensor(2, 4), t in tensor(2, 4)) {
        let mut g = Graph::new();
        let pv = g.constant(p.clone());
        let tv = g.constant(t.clone());
        let loss = g.mse(pv, tv);
        let l = g.value(loss).get(0, 0);
        prop_assert!(l >= 0.0);
        let mut g2 = Graph::new();
        let pv2 = g2.constant(p.clone());
        let pv3 = g2.constant(p.clone());
        let loss2 = g2.mse(pv2, pv3);
        prop_assert!(g2.value(loss2).get(0, 0).abs() < 1e-9);
    }

    /// KL divergence to the standard normal is always non-negative.
    #[test]
    fn kl_nonnegative(mu in tensor(2, 4), lv in tensor(2, 4)) {
        let mut g = Graph::new();
        let m = g.constant(mu);
        let l = g.constant(lv);
        let kl = g.kl_standard_normal(m, l);
        prop_assert!(g.value(kl).get(0, 0) >= -1e-5);
    }
}

/// Scalar reference for the fused epilogue: optional accumulate into the
/// previous output, optional bias row, then the activation via libm.
fn epilogue_naive(
    gemm: &Tensor,
    prev: &[f32],
    accumulate: bool,
    bias: Option<&[f32]>,
    act: Activation,
) -> Vec<f32> {
    let n = gemm.cols();
    gemm.data()
        .iter()
        .enumerate()
        .map(|(idx, &g)| {
            let mut v = g;
            if accumulate {
                v += prev[idx];
            }
            if let Some(b) = bias {
                v += b[idx % n];
            }
            match act {
                Activation::Identity => v,
                Activation::Relu => v.max(0.0),
                Activation::Tanh => v.tanh(),
                Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every dispatchable GEMM tier agrees with the naive triple loop over
    /// the 1..33 shape cube — the domain that crosses every lane boundary
    /// of the 32-, 16-, 8- and 4-wide code paths — with zero blocks planted
    /// to exercise the sparse-skip branches of each tier.
    #[test]
    fn forced_isa_gemm_matches_reference(
        (a, b) in (1usize..33, 1usize..33, 1usize..33)
            .prop_flat_map(|(m, k, n)| (kernel_matrix(m, k), kernel_matrix(k, n)))
    ) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let slow = matmul_naive(&a, &b);
        let tol = 1e-5 * (k as f32).sqrt().max(1.0);
        let mut out = vec![0f32; m * n];
        for isa in Isa::supported() {
            out.iter_mut().for_each(|v| *v = 0.0);
            matmul_kernel_force(isa, m, k, n, a.data(), b.data(), &mut out);
            for (idx, (x, y)) in out.iter().zip(slow.data()).enumerate() {
                prop_assert!((x - y).abs() <= tol * (1.0 + y.abs()),
                    "{isa:?} ({m}x{k}x{n}) idx {idx}: {x} vs naive {y}");
            }
        }
    }

    /// FP-order contract per tier: row `i` of an m-row product is bitwise
    /// identical to the m=1 product of that row alone, for every forced ISA.
    #[test]
    fn forced_isa_gemm_rows_bitwise_equal_scalar(
        (a, b) in (2usize..33, 1usize..33, 1usize..33)
            .prop_flat_map(|(m, k, n)| (kernel_matrix(m, k), kernel_matrix(k, n)))
    ) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut batched = vec![0f32; m * n];
        let mut single = vec![0f32; n];
        for isa in Isa::supported() {
            batched.iter_mut().for_each(|v| *v = 0.0);
            matmul_kernel_force(isa, m, k, n, a.data(), b.data(), &mut batched);
            for i in 0..m {
                single.iter_mut().for_each(|v| *v = 0.0);
                matmul_kernel_force(isa, 1, k, n, a.row_slice(i), b.data(), &mut single);
                for (x, y) in batched[i * n..(i + 1) * n].iter().zip(&single) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                        "{:?} row {} of {}x{}x{} differs from its m=1 twin", isa, i, m, k, n);
                }
            }
        }
    }

    /// Every dot-product tier agrees with a mul_add reference.
    #[test]
    fn forced_isa_dot_matches_reference(
        (a, b) in (1usize..129).prop_flat_map(|k| (kernel_matrix(1, k), kernel_matrix(1, k)))
    ) {
        let reference: f32 =
            a.data().iter().zip(b.data()).fold(0.0f32, |acc, (&x, &y)| x.mul_add(y, acc));
        let tol = 1e-5 * (a.cols() as f32).sqrt().max(1.0);
        for isa in Isa::supported() {
            let got = dot_force(isa, a.data(), b.data());
            prop_assert!((got - reference).abs() <= tol * (1.0 + reference.abs()),
                "{isa:?} k={}: {got} vs {reference}", a.cols());
        }
    }

    /// The packed GEMM with fused epilogue (accumulate/bias/activation in
    /// one output pass) matches the unfused scalar reference on every tier,
    /// shape, activation, and epilogue combination. Activations tolerate
    /// the vector tiers' polynomial tanh/sigmoid approximations.
    #[test]
    fn forced_isa_packed_gemm_fused_epilogue_matches_reference(
        ((a, w), prev_seed) in ((1usize..33, 1usize..33, 1usize..33)
            .prop_flat_map(|(m, k, n)| (kernel_matrix(m, k), kernel_matrix(k, n))), 0u64..1000)
    ) {
        let (m, k, n) = (a.rows(), a.cols(), w.cols());
        let packed = PackedGemm::pack(&w);
        let gemm = matmul_naive(&a, &w);
        let mut init = Initializer::new(prev_seed);
        let prev = init.normal(m, n, 1.0);
        let bias = init.normal(1, n, 1.0);
        let mut out = vec![0f32; m * n];
        for isa in Isa::supported() {
            for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
                for accumulate in [false, true] {
                    for with_bias in [false, true] {
                        out.copy_from_slice(prev.data());
                        let b = with_bias.then(|| bias.data());
                        gemm_packed_force(isa, m, a.data(), &packed, accumulate, b, act, &mut out);
                        let reference = epilogue_naive(&gemm, prev.data(), accumulate, b, act);
                        for (idx, (x, y)) in out.iter().zip(&reference).enumerate() {
                            prop_assert!((x - y).abs() <= 2e-5 + 1e-5 * y.abs(),
                                "{isa:?} ({m}x{k}x{n}) {act:?} acc={accumulate} bias={with_bias} idx {idx}: {x} vs {y}");
                        }
                    }
                }
            }
        }
    }

    /// `A·Bᵀ` through the dispatched dot agrees with the naive reference
    /// under whatever tier the process selected (CI re-runs this binary
    /// with `QPS_FORCE_ISA` set to each tier).
    #[test]
    fn matmul_nt_matches_reference(
        (a, b) in (1usize..17, 1usize..33, 1usize..17)
            .prop_flat_map(|(m, k, n)| (kernel_matrix(m, k), kernel_matrix(n, k)))
    ) {
        let mut out = Tensor::zeros(a.rows(), b.rows());
        a.matmul_nt_into(&b, &mut out);
        let tol = 1e-5 * (a.cols() as f32).sqrt().max(1.0);
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let reference: f32 = a.row_slice(i).iter().zip(b.row_slice(j))
                    .fold(0.0f32, |acc, (&x, &y)| x.mul_add(y, acc));
                prop_assert!((out.get(i, j) - reference).abs() <= tol * (1.0 + reference.abs()),
                    "({i},{j}): {} vs {reference}", out.get(i, j));
            }
        }
    }
}
