//! Elementwise activation kernels for the tape-free inference path.
//!
//! The LSTM gate math and MLP activations are transcendental-bound: libm
//! `exp`/`tanh` cost ~50-100ns per lane, which at 5 calls per hidden lane
//! dominates the whole plan-encoder forward (the GEMMs are an order of
//! magnitude cheaper). On AVX2+FMA hosts we evaluate them 8 lanes at a time
//! with Cephes-style polynomials (~1-2 ulp, far inside the 1e-5 tape-parity
//! tolerance); elsewhere the portable libm path runs unchanged.
//!
//! **FP-order contract:** every function here is elementwise — lane `i` of
//! the output depends only on lane `i` of the inputs, and which code path a
//! lane takes depends only on its column index and the width, never on the
//! number of rows. Row `r` of a batched call is therefore bitwise identical
//! to a 1-row call on row `r` alone, the same invariant the matmul kernels
//! uphold (see `tensor::matmul_kernel`). Like the matmul kernels, the SIMD
//! variants differ from the portable one in the last bits; the process-wide
//! [`crate::isa::active`] selection picks one variant per process, so batched
//! and scalar scoring always agree bitwise.

use crate::isa::Isa;

/// `sigmoid(x)` as used by the portable LSTM gate path.
#[inline]
pub(crate) fn sigmoid_scalar(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Fused LSTM gate math for one step: `gates` is `[rows, 4*d]` laid out as
/// `i | f | g | o` segments per row, `c_prev` is `[rows, d]`; writes the new
/// cell state and hidden state into `c_out` / `h_out` (both `[rows, d]`).
///
/// Computes `c' = sigmoid(f) * c + sigmoid(i) * tanh(g)` and
/// `h' = sigmoid(o) * tanh(c')` per lane.
pub fn lstm_gates(
    rows: usize,
    d: usize,
    gates: &[f32],
    c_prev: &[f32],
    c_out: &mut [f32],
    h_out: &mut [f32],
) {
    debug_assert!(gates.len() >= rows * 4 * d);
    debug_assert!(c_prev.len() >= rows * d && c_out.len() >= rows * d && h_out.len() >= rows * d);
    match crate::isa::active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::lstm_gates(rows, d, gates, c_prev, c_out, h_out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx::lstm_gates(rows, d, gates, c_prev, c_out, h_out) },
        _ => lstm_gates_portable(rows, d, gates, c_prev, c_out, h_out),
    }
}

fn lstm_gates_portable(
    rows: usize,
    d: usize,
    gates: &[f32],
    c_prev: &[f32],
    c_out: &mut [f32],
    h_out: &mut [f32],
) {
    for r in 0..rows {
        let grow = &gates[r * 4 * d..(r + 1) * 4 * d];
        for j in 0..d {
            let i_g = sigmoid_scalar(grow[j]);
            let f_g = sigmoid_scalar(grow[d + j]);
            let g_g = grow[2 * d + j].tanh();
            let o_g = sigmoid_scalar(grow[3 * d + j]);
            let cv = f_g * c_prev[r * d + j] + i_g * g_g;
            c_out[r * d + j] = cv;
            h_out[r * d + j] = o_g * cv.tanh();
        }
    }
}

/// `x[i] = tanh(x[i])` over a slice, vectorized when the host supports it.
pub fn tanh_inplace(x: &mut [f32]) {
    match crate::isa::active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::tanh_inplace(x) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx::tanh_inplace(x) },
        _ => {
            for v in x {
                *v = v.tanh();
            }
        }
    }
}

/// `x[i] = sigmoid(x[i])` over a slice, vectorized when the host supports it.
pub fn sigmoid_inplace(x: &mut [f32]) {
    match crate::isa::active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { avx512::sigmoid_inplace(x) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx::sigmoid_inplace(x) },
        _ => {
            for v in x {
                *v = sigmoid_scalar(*v);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx {
    use std::arch::x86_64::*;

    // Cephes single-precision exp: round-to-nearest power-of-two split with
    // a Cody-Waite reduced argument and a degree-5 polynomial remainder.
    pub(crate) const EXP_HI: f32 = 88.376_26;
    pub(crate) const EXP_LO: f32 = -87.336_55;
    pub(crate) const LOG2EF: f32 = std::f32::consts::LOG2_E;
    pub(crate) const C1: f32 = 0.693_359_4;
    pub(crate) const C2: f32 = -2.121_944_4e-4;
    pub(crate) const P0: f32 = 1.987_569_1e-4;
    pub(crate) const P1: f32 = 1.398_199_9e-3;
    pub(crate) const P2: f32 = 8.333_452e-3;
    pub(crate) const P3: f32 = 4.166_579_6e-2;
    pub(crate) const P4: f32 = 1.666_666_5e-1;
    pub(crate) const P5: f32 = 5.0e-1;

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn exp_ps(x: __m256) -> __m256 {
        let x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(EXP_LO)), _mm256_set1_ps(EXP_HI));
        let n = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        // r = x - n*C1 - n*C2 (Cody-Waite two-constant reduction).
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(C1), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(C2), r);
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P1));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P2));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P4));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P5));
        // exp(r) = 1 + r + r^2 * y
        let y = _mm256_add_ps(_mm256_fmadd_ps(_mm256_mul_ps(r, r), y, r), _mm256_set1_ps(1.0));
        // Scale by 2^n via exponent-field arithmetic.
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2n)
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn sigmoid_ps(x: __m256) -> __m256 {
        // 1 / (1 + exp(-x)); exp is clamped so the denominator stays finite.
        let one = _mm256_set1_ps(1.0);
        let t = exp_ps(_mm256_sub_ps(_mm256_setzero_ps(), x));
        _mm256_div_ps(one, _mm256_add_ps(one, t))
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn tanh_ps(x: __m256) -> __m256 {
        // tanh(|x|) = (1 - e^{-2|x|}) / (1 + e^{-2|x|}), sign restored from x.
        let sign_mask = _mm256_set1_ps(-0.0);
        let ax = _mm256_andnot_ps(sign_mask, x);
        let one = _mm256_set1_ps(1.0);
        let t = exp_ps(_mm256_mul_ps(ax, _mm256_set1_ps(-2.0)));
        let th = _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t));
        _mm256_or_ps(th, _mm256_and_ps(x, sign_mask))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn lstm_gates(
        rows: usize,
        d: usize,
        gates: &[f32],
        c_prev: &[f32],
        c_out: &mut [f32],
        h_out: &mut [f32],
    ) {
        for r in 0..rows {
            let g = gates.as_ptr().add(r * 4 * d);
            let cp = c_prev.as_ptr().add(r * d);
            let co = c_out.as_mut_ptr().add(r * d);
            let ho = h_out.as_mut_ptr().add(r * d);
            let mut j = 0;
            while j + 8 <= d {
                let i_g = sigmoid_ps(_mm256_loadu_ps(g.add(j)));
                let f_g = sigmoid_ps(_mm256_loadu_ps(g.add(d + j)));
                let g_g = tanh_ps(_mm256_loadu_ps(g.add(2 * d + j)));
                let o_g = sigmoid_ps(_mm256_loadu_ps(g.add(3 * d + j)));
                let cv = _mm256_fmadd_ps(i_g, g_g, _mm256_mul_ps(f_g, _mm256_loadu_ps(cp.add(j))));
                _mm256_storeu_ps(co.add(j), cv);
                _mm256_storeu_ps(ho.add(j), _mm256_mul_ps(o_g, tanh_ps(cv)));
                j += 8;
            }
            // Lane tail: which path a lane takes depends only on (j, d), so
            // rows stay bitwise consistent between batched and 1-row calls.
            while j < d {
                let i_g = super::sigmoid_scalar(*g.add(j));
                let f_g = super::sigmoid_scalar(*g.add(d + j));
                let g_g = (*g.add(2 * d + j)).tanh();
                let o_g = super::sigmoid_scalar(*g.add(3 * d + j));
                let cv = f_g * *cp.add(j) + i_g * g_g;
                *co.add(j) = cv;
                *ho.add(j) = o_g * cv.tanh();
                j += 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_inplace(x: &mut [f32]) {
        let n = x.len();
        let p = x.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(p.add(i), tanh_ps(_mm256_loadu_ps(p.add(i))));
            i += 8;
        }
        for v in &mut x[i..] {
            *v = v.tanh();
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_inplace(x: &mut [f32]) {
        let n = x.len();
        let p = x.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(p.add(i), sigmoid_ps(_mm256_loadu_ps(p.add(i))));
            i += 8;
        }
        for v in &mut x[i..] {
            *v = super::sigmoid_scalar(*v);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512 {
    use std::arch::x86_64::*;

    // Same Cephes constants as the AVX2 tier — the polynomial is identical,
    // only the lane count changes. Bit ops go through the integer domain so
    // the module needs nothing beyond AVX-512F (`_mm512_andnot_ps` is DQ).
    use super::avx::{C1, C2, EXP_HI, EXP_LO, LOG2EF, P0, P1, P2, P3, P4, P5};

    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn exp_ps(x: __m512) -> __m512 {
        let x = _mm512_min_ps(_mm512_max_ps(x, _mm512_set1_ps(EXP_LO)), _mm512_set1_ps(EXP_HI));
        // 0x08 = round-to-nearest-int, suppress exceptions.
        let n = _mm512_roundscale_ps::<0x08>(_mm512_mul_ps(x, _mm512_set1_ps(LOG2EF)));
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(C1), x);
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(C2), r);
        let mut y = _mm512_set1_ps(P0);
        y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(P1));
        y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(P2));
        y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(P3));
        y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(P4));
        y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(P5));
        let y = _mm512_add_ps(_mm512_fmadd_ps(_mm512_mul_ps(r, r), y, r), _mm512_set1_ps(1.0));
        let pow2n = _mm512_castsi512_ps(_mm512_slli_epi32::<23>(_mm512_add_epi32(
            _mm512_cvtps_epi32(n),
            _mm512_set1_epi32(127),
        )));
        _mm512_mul_ps(y, pow2n)
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn sigmoid_ps(x: __m512) -> __m512 {
        let one = _mm512_set1_ps(1.0);
        let t = exp_ps(_mm512_sub_ps(_mm512_setzero_ps(), x));
        _mm512_div_ps(one, _mm512_add_ps(one, t))
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn tanh_ps(x: __m512) -> __m512 {
        // tanh(|x|) = (1 - e^{-2|x|}) / (1 + e^{-2|x|}), sign restored from x.
        let xi = _mm512_castps_si512(x);
        let sign = _mm512_and_si512(xi, _mm512_set1_epi32(i32::MIN));
        let ax = _mm512_castsi512_ps(_mm512_andnot_si512(_mm512_set1_epi32(i32::MIN), xi));
        let one = _mm512_set1_ps(1.0);
        let t = exp_ps(_mm512_mul_ps(ax, _mm512_set1_ps(-2.0)));
        let th = _mm512_div_ps(_mm512_sub_ps(one, t), _mm512_add_ps(one, t));
        _mm512_castsi512_ps(_mm512_or_si512(_mm512_castps_si512(th), sign))
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn lstm_gates(
        rows: usize,
        d: usize,
        gates: &[f32],
        c_prev: &[f32],
        c_out: &mut [f32],
        h_out: &mut [f32],
    ) {
        for r in 0..rows {
            let g = gates.as_ptr().add(r * 4 * d);
            let cp = c_prev.as_ptr().add(r * d);
            let co = c_out.as_mut_ptr().add(r * d);
            let ho = h_out.as_mut_ptr().add(r * d);
            let mut j = 0;
            while j + 16 <= d {
                let i_g = sigmoid_ps(_mm512_loadu_ps(g.add(j)));
                let f_g = sigmoid_ps(_mm512_loadu_ps(g.add(d + j)));
                let g_g = tanh_ps(_mm512_loadu_ps(g.add(2 * d + j)));
                let o_g = sigmoid_ps(_mm512_loadu_ps(g.add(3 * d + j)));
                let cv = _mm512_fmadd_ps(i_g, g_g, _mm512_mul_ps(f_g, _mm512_loadu_ps(cp.add(j))));
                _mm512_storeu_ps(co.add(j), cv);
                _mm512_storeu_ps(ho.add(j), _mm512_mul_ps(o_g, tanh_ps(cv)));
                j += 16;
            }
            if j < d {
                // Masked lane tail: mask depends only on (j, d), so rows stay
                // bitwise consistent between batched and 1-row calls.
                let mask: __mmask16 = (1u16 << (d - j)) - 1;
                let i_g = sigmoid_ps(_mm512_maskz_loadu_ps(mask, g.add(j)));
                let f_g = sigmoid_ps(_mm512_maskz_loadu_ps(mask, g.add(d + j)));
                let g_g = tanh_ps(_mm512_maskz_loadu_ps(mask, g.add(2 * d + j)));
                let o_g = sigmoid_ps(_mm512_maskz_loadu_ps(mask, g.add(3 * d + j)));
                let cv = _mm512_fmadd_ps(
                    i_g,
                    g_g,
                    _mm512_mul_ps(f_g, _mm512_maskz_loadu_ps(mask, cp.add(j))),
                );
                _mm512_mask_storeu_ps(co.add(j), mask, cv);
                _mm512_mask_storeu_ps(ho.add(j), mask, _mm512_mul_ps(o_g, tanh_ps(cv)));
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn tanh_inplace(x: &mut [f32]) {
        let n = x.len();
        let p = x.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            _mm512_storeu_ps(p.add(i), tanh_ps(_mm512_loadu_ps(p.add(i))));
            i += 16;
        }
        if i < n {
            let mask: __mmask16 = (1u16 << (n - i)) - 1;
            _mm512_mask_storeu_ps(p.add(i), mask, tanh_ps(_mm512_maskz_loadu_ps(mask, p.add(i))));
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn sigmoid_inplace(x: &mut [f32]) {
        let n = x.len();
        let p = x.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            _mm512_storeu_ps(p.add(i), sigmoid_ps(_mm512_loadu_ps(p.add(i))));
            i += 16;
        }
        if i < n {
            let mask: __mmask16 = (1u16 << (n - i)) - 1;
            _mm512_mask_storeu_ps(
                p.add(i),
                mask,
                sigmoid_ps(_mm512_maskz_loadu_ps(mask, p.add(i))),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_activations_close_to_libm() {
        let xs: Vec<f32> = (-400..=400).map(|i| i as f32 * 0.05).collect();
        let mut t = xs.clone();
        tanh_inplace(&mut t);
        let mut s = xs.clone();
        sigmoid_inplace(&mut s);
        for (i, &x) in xs.iter().enumerate() {
            let (rt, rs) = (x.tanh(), 1.0 / (1.0 + (-x).exp()));
            assert!((t[i] - rt).abs() <= 2e-7 + 1e-6 * rt.abs(), "tanh({x}): {} vs {rt}", t[i]);
            assert!((s[i] - rs).abs() <= 2e-7 + 1e-6 * rs.abs(), "sigmoid({x}): {} vs {rs}", s[i]);
        }
    }

    #[test]
    fn lstm_gates_matches_portable_within_tolerance_and_rows_are_stable() {
        let (rows, d) = (5usize, 19usize); // odd width exercises the lane tail
        let gates: Vec<f32> = (0..rows * 4 * d).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        let c_prev: Vec<f32> = (0..rows * d).map(|i| ((i as f32) * 0.11).cos()).collect();
        let (mut c, mut h) = (vec![0.0f32; rows * d], vec![0.0f32; rows * d]);
        lstm_gates(rows, d, &gates, &c_prev, &mut c, &mut h);
        let (mut cp, mut hp) = (vec![0.0f32; rows * d], vec![0.0f32; rows * d]);
        lstm_gates_portable(rows, d, &gates, &c_prev, &mut cp, &mut hp);
        for i in 0..rows * d {
            assert!((c[i] - cp[i]).abs() <= 1e-6, "c[{i}]: {} vs {}", c[i], cp[i]);
            assert!((h[i] - hp[i]).abs() <= 1e-6, "h[{i}]: {} vs {}", h[i], hp[i]);
        }
        // Row-equality contract: each batched row bitwise equals a 1-row call.
        for r in 0..rows {
            let (mut c1, mut h1) = (vec![0.0f32; d], vec![0.0f32; d]);
            lstm_gates(1, d, &gates[r * 4 * d..], &c_prev[r * d..], &mut c1, &mut h1);
            assert_eq!(&c[r * d..(r + 1) * d], &c1[..], "row {r} cell state");
            assert_eq!(&h[r * d..(r + 1) * d], &h1[..], "row {r} hidden state");
        }
    }
}
