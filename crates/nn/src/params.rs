//! Persistent parameter storage.
//!
//! A [`crate::graph::Graph`] is a per-batch tape that is rebuilt for every
//! forward pass (plan trees have variable shape, so the graph cannot be
//! static). Learnable parameters therefore live *outside* the graph, in a
//! [`ParamStore`], addressed by stable [`ParamId`]s. After `backward`, the
//! graph accumulates gradients back into the store; the optimizer then reads
//! value/grad pairs from here.

use crate::pack::PackedGemm;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Stable handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// One learnable tensor with its accumulated gradient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Human-readable name ("query_encoder.rel_mlp.0.weight" style).
    pub name: String,
    pub value: Tensor,
    pub grad: Tensor,
    /// When false the optimizer skips this parameter (used for frozen
    /// embeddings, mirroring the paper freezing TaBERT weights).
    pub trainable: bool,
}

/// The set of all parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
    /// Lazily built panel-packed copies of parameter values for the
    /// inference GEMM (`crate::pack`). Outer lock sizes the table on first
    /// use (post-deserialize stores start empty), inner locks pack each
    /// weight the first time a forward pass touches it. Every `&mut` access
    /// to a value drops the whole cache, so training, checkpoint loads, and
    /// hot-swaps can never serve stale panels. Never serialized.
    packed: OnceLock<Vec<OnceLock<PackedGemm>>>,
}

// Hand-written (de)serialization: only `params` is persisted; the packed
// cache is a derived artifact rebuilt lazily after load.
impl Serialize for ParamStore {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![("params".to_string(), self.params.to_value())])
    }
}

impl Deserialize for ParamStore {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj =
            v.as_obj().ok_or_else(|| serde::Error::type_mismatch("ParamStore", "object", v))?;
        let params = Vec::<Param>::from_value(serde::obj_field(obj, "params"))
            .map_err(|e| e.in_field("ParamStore", "params"))?;
        Ok(ParamStore { params, packed: OnceLock::new() })
    }
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new trainable parameter and return its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad, trainable: true });
        self.packed = OnceLock::new();
        ParamId(self.params.len() - 1)
    }

    /// Register a frozen (non-trainable) parameter.
    pub fn register_frozen(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = self.register(name, value);
        self.params[id.0].trainable = false;
        id
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights (the paper quotes ~10.8M for the full model).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.packed = OnceLock::new();
        &mut self.params[id.0].value
    }

    /// Panel-packed copy of parameter `id`'s value for the inference GEMM,
    /// built on first use and shared across threads (the pack is
    /// deterministic, so concurrent initialization races are benign).
    pub fn packed(&self, id: ParamId) -> &PackedGemm {
        let cache =
            self.packed.get_or_init(|| self.params.iter().map(|_| OnceLock::new()).collect());
        cache[id.0].get_or_init(|| PackedGemm::pack(&self.params[id.0].value))
    }

    /// Eagerly pack every multi-row parameter (weight matrices; 1-row
    /// biases are never GEMM operands) so a freshly loaded model pays the
    /// packing cost at load time instead of on its first prediction.
    pub fn warm_packed(&self) {
        for (id, p) in self.params.iter().enumerate() {
            if p.value.rows() > 1 {
                self.packed(ParamId(id));
            }
        }
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Accumulate `g` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Reset all gradients to zero (call before each batch).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.zero();
        }
    }

    /// Iterate over `(index, param)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Mutable access for optimizers.
    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        self.packed = OnceLock::new();
        &mut self.params
    }

    /// Global gradient L2 norm over trainable parameters (for clipping).
    /// Non-finite gradient elements are excluded — a single NaN must not
    /// poison the norm and silently disable clipping for every parameter.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .filter(|p| p.trainable)
            .map(|p| p.grad.data().iter().filter(|x| x.is_finite()).map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all trainable gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in self.params_mut() {
                if p.trainable {
                    for g in p.grad.data_mut() {
                        *g *= scale;
                    }
                }
            }
        }
    }

    /// Serialize to JSON (model checkpointing).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore is always serializable")
    }

    /// Bitwise equality of parameter values (determinism tests).
    pub fn values_bitwise_eq(&self, other: &ParamStore) -> bool {
        self.params.len() == other.params.len()
            && self.params.iter().zip(&other.params).all(|(a, b)| {
                a.value.shape() == b.value.shape()
                    && a.value
                        .data()
                        .iter()
                        .zip(b.value.data())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
    }

    /// Deserialize from JSON produced by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Sink for the gradients produced by a backward pass.
///
/// [`ParamStore`] implements it directly (the classic serial training path);
/// [`GradBuffer`] implements it for thread-local accumulation in data-parallel
/// training, where worker threads must not write to the shared store.
pub trait GradAccumulator {
    fn accumulate(&mut self, id: ParamId, g: &Tensor);
}

impl GradAccumulator for ParamStore {
    fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        self.accumulate_grad(id, g);
    }
}

/// Sparse per-sample gradient buffer: only parameters actually touched by a
/// backward pass get an entry, so short plans don't pay for the full model.
///
/// Data-parallel training computes one `GradBuffer` per *sample* and merges
/// them into the [`ParamStore`] in sample-index order — never shard order —
/// which makes the summed gradient bit-identical for any thread count.
#[derive(Debug, Default)]
pub struct GradBuffer {
    grads: Vec<Option<Tensor>>,
}

impl GradBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add every buffered gradient into the store, in `ParamId` order.
    pub fn merge_into(&self, store: &mut ParamStore) {
        for (i, g) in self.grads.iter().enumerate() {
            if let Some(g) = g {
                store.accumulate_grad(ParamId(i), g);
            }
        }
    }
}

impl GradAccumulator for GradBuffer {
    fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        if self.grads.len() <= id.0 {
            self.grads.resize(id.0 + 1, None);
        }
        match &mut self.grads[id.0] {
            Some(t) => t.add_assign(g),
            slot => *slot = Some(g.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones(2, 3));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
        assert_eq!(store.value(id).shape(), (2, 3));
        assert_eq!(store.get(id).name, "w");
        assert!(store.get(id).trainable);
    }

    #[test]
    fn frozen_params_marked() {
        let mut store = ParamStore::new();
        let id = store.register_frozen("emb", Tensor::ones(1, 4));
        assert!(!store.get(id).trainable);
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros(1, 2));
        store.accumulate_grad(id, &Tensor::row(vec![1.0, 2.0]));
        store.accumulate_grad(id, &Tensor::row(vec![1.0, 2.0]));
        assert_eq!(store.grad(id).data(), &[2.0, 4.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_clipping_scales_to_max_norm() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros(1, 2));
        store.accumulate_grad(id, &Tensor::row(vec![3.0, 4.0])); // norm 5
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-6);
        assert!((store.grad(id).data()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn nan_gradient_does_not_disable_clipping() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(1, 1));
        let b = store.register("b", Tensor::zeros(1, 2));
        store.accumulate_grad(a, &Tensor::scalar(f32::NAN));
        store.accumulate_grad(b, &Tensor::row(vec![3.0, 4.0])); // norm 5
        assert!((store.grad_norm() - 5.0).abs() < 1e-6, "NaN poisoned the norm");
        store.clip_grad_norm(1.0);
        assert!((store.grad(b).data()[0] - 0.6).abs() < 1e-6, "clipping was skipped");
    }

    #[test]
    fn clipping_ignores_frozen() {
        let mut store = ParamStore::new();
        let f = store.register_frozen("emb", Tensor::zeros(1, 1));
        let t = store.register("w", Tensor::zeros(1, 1));
        store.accumulate_grad(f, &Tensor::scalar(100.0));
        store.accumulate_grad(t, &Tensor::scalar(3.0));
        store.clip_grad_norm(1.0);
        assert_eq!(store.grad(f).data()[0], 100.0);
        assert!((store.grad(t).data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn json_round_trip() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::from_vec(1, 2, vec![0.5, -0.25]));
        let json = store.to_json();
        let back = ParamStore::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.value(ParamId(0)).data(), &[0.5, -0.25]);
    }
}
