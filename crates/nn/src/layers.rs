//! Reusable layers: linear, MLP, LSTM cell, multi-head cross-attention.
//!
//! A layer owns only [`ParamId`]s; the actual weights live in the shared
//! [`ParamStore`]. `forward` records ops onto the caller's [`Graph`].

use crate::graph::{Graph, Var};
use crate::init::Initializer;
use crate::params::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// Activation functions available to [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// No activation (identity); used for final regression layers.
    Identity,
}

impl Activation {
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// Fully-connected layer `y = x·W + b` with `W: [in, out]`, `b: [1, out]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.register(format!("{name}.weight"), init.xavier(in_dim, out_dim));
        let b = store.register(format!("{name}.bias"), crate::tensor::Tensor::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// `x: [batch, in_dim] -> [batch, out_dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "linear layer expects {} input features, got {}",
            self.in_dim,
            g.value(x).cols()
        );
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let y = g.matmul(x, w);
        g.add_row_broadcast(y, b)
    }
}

/// Multi-layer perceptron: a stack of [`Linear`] layers with a shared hidden
/// activation and a configurable output activation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub hidden_activation: Activation,
    pub output_activation: Activation,
}

impl Mlp {
    /// `dims` is the full chain `[in, h1, ..., out]` (so `dims.len() >= 2`).
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        name: &str,
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, init, &format!("{name}.{i}"), w[0], w[1]))
            .collect();
        Self { layers, hidden_activation, output_activation }
    }

    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("MLP has layers").in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("MLP has layers").out_dim
    }

    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            h = if i == last {
                self.output_activation.apply(g, h)
            } else {
                self.hidden_activation.apply(g, h)
            };
        }
        h
    }
}

/// A single LSTM cell, used by the plan encoder (one cell application per
/// plan node, paper §4.2).
///
/// Gates follow the standard formulation:
/// `i,f,g,o = split(x·W_ih + h·W_hh + b)`;
/// `c' = σ(f)⊙c + σ(i)⊙tanh(g)`; `h' = σ(o)⊙tanh(c')`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    pub w_ih: ParamId,
    pub w_hh: ParamId,
    pub bias: ParamId,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

/// Hidden and cell state handles for one LSTM step.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    pub h: Var,
    pub c: Var,
}

impl LstmCell {
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        let w_ih = store.register(format!("{name}.w_ih"), init.xavier(input_dim, 4 * hidden_dim));
        let w_hh = store.register(format!("{name}.w_hh"), init.xavier(hidden_dim, 4 * hidden_dim));
        // Forget-gate bias starts at 1.0 (standard trick: do not forget early).
        let mut b = crate::tensor::Tensor::zeros(1, 4 * hidden_dim);
        for i in hidden_dim..2 * hidden_dim {
            b.set(0, i, 1.0);
        }
        let bias = store.register(format!("{name}.bias"), b);
        Self { w_ih, w_hh, bias, input_dim, hidden_dim }
    }

    /// Zero initial state for a batch of `rows` sequences.
    pub fn zero_state(&self, g: &mut Graph, rows: usize) -> LstmState {
        let h = g.constant(crate::tensor::Tensor::zeros(rows, self.hidden_dim));
        let c = g.constant(crate::tensor::Tensor::zeros(rows, self.hidden_dim));
        LstmState { h, c }
    }

    /// One step: `x: [batch, input_dim]`, returns updated state.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: Var, state: LstmState) -> LstmState {
        assert_eq!(g.value(x).cols(), self.input_dim, "LSTM input width mismatch");
        let w_ih = g.param(store, self.w_ih);
        let w_hh = g.param(store, self.w_hh);
        let b = g.param(store, self.bias);
        let xw = g.matmul(x, w_ih);
        let hw = g.matmul(state.h, w_hh);
        let gates = g.add(xw, hw);
        let gates = g.add_row_broadcast(gates, b);
        let d = self.hidden_dim;
        let i_g = g.slice_cols(gates, 0, d);
        let f_g = g.slice_cols(gates, d, 2 * d);
        let g_g = g.slice_cols(gates, 2 * d, 3 * d);
        let o_g = g.slice_cols(gates, 3 * d, 4 * d);
        let i_g = g.sigmoid(i_g);
        let f_g = g.sigmoid(f_g);
        let g_g = g.tanh(g_g);
        let o_g = g.sigmoid(o_g);
        let fc = g.mul(f_g, state.c);
        let ig = g.mul(i_g, g_g);
        let c = g.add(fc, ig);
        let ct = g.tanh(c);
        let h = g.mul(o_g, ct);
        LstmState { h, c }
    }
}

/// Multi-head cross-attention (paper §4.3, "QPAttention").
///
/// Projects a `[1, q_dim]` query embedding and `[n, kv_dim]` plan-node
/// embeddings into a shared `head_dim` latent space per head, computes
/// `softmax(QKᵀ/√d)·V`, concatenates heads and maps through a dense output
/// layer of width `out_dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadCrossAttention {
    pub wq: Vec<ParamId>,
    pub wk: Vec<ParamId>,
    pub wv: Vec<ParamId>,
    pub out: Linear,
    pub heads: usize,
    pub head_dim: usize,
    pub q_dim: usize,
    pub kv_dim: usize,
}

impl MultiHeadCrossAttention {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        name: &str,
        q_dim: usize,
        kv_dim: usize,
        heads: usize,
        head_dim: usize,
        out_dim: usize,
    ) -> Self {
        let mut wq = Vec::with_capacity(heads);
        let mut wk = Vec::with_capacity(heads);
        let mut wv = Vec::with_capacity(heads);
        for h in 0..heads {
            wq.push(store.register(format!("{name}.h{h}.wq"), init.xavier(q_dim, head_dim)));
            wk.push(store.register(format!("{name}.h{h}.wk"), init.xavier(kv_dim, head_dim)));
            wv.push(store.register(format!("{name}.h{h}.wv"), init.xavier(kv_dim, head_dim)));
        }
        let out = Linear::new(store, init, &format!("{name}.out"), heads * head_dim, out_dim);
        Self { wq, wk, wv, out, heads, head_dim, q_dim, kv_dim }
    }

    /// `query: [1, q_dim]`, `kv: [n, kv_dim]` → `[1, out_dim]`.
    ///
    /// Also returns the per-head attention score rows (`[1, n]` each) so
    /// callers can inspect which plan nodes dominated the estimate.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        query: Var,
        kv: Var,
    ) -> (Var, Vec<Var>) {
        assert_eq!(g.value(query).rows(), 1, "attention query must be a single row");
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        let mut score_rows = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let wq = g.param(store, self.wq[h]);
            let wk = g.param(store, self.wk[h]);
            let wv = g.param(store, self.wv[h]);
            let q = g.matmul(query, wq); // [1, d]
            let k = g.matmul(kv, wk); // [n, d]
            let v = g.matmul(kv, wv); // [n, d]
            let kt = g.transpose(k); // [d, n]
            let scores = g.matmul(q, kt); // [1, n]
            let scores = g.scale(scores, scale);
            let attn = g.softmax_rows(scores); // [1, n]
            let ctx = g.matmul(attn, v); // [1, d]
            head_outputs.push(ctx);
            score_rows.push(attn);
        }
        let cat = g.concat_cols_all(&head_outputs);
        let out = self.out.forward(g, store, cat);
        (out, score_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn setup() -> (ParamStore, Initializer) {
        (ParamStore::new(), Initializer::new(42))
    }

    #[test]
    fn linear_shapes() {
        let (mut store, mut init) = setup();
        let l = Linear::new(&mut store, &mut init, "l", 3, 5);
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(4, 3));
        let y = l.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (4, 5));
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn linear_rejects_wrong_width() {
        let (mut store, mut init) = setup();
        let l = Linear::new(&mut store, &mut init, "l", 3, 5);
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(4, 2));
        l.forward(&mut g, &store, x);
    }

    #[test]
    fn mlp_five_hidden_layers_matches_paper_config_shape() {
        let (mut store, mut init) = setup();
        // Query-encoder style: 5 hidden layers of 256, output 256.
        let m = Mlp::new(
            &mut store,
            &mut init,
            "enc",
            &[16, 256, 256, 256, 256, 256, 256],
            Activation::Relu,
            Activation::Relu,
        );
        assert_eq!(m.layers.len(), 6);
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(2, 16));
        let y = m.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 256));
    }

    #[test]
    fn mlp_trains_xor() {
        // End-to-end sanity: a tiny MLP must be able to fit XOR.
        use crate::optim::Adam;
        let (mut store, mut init) = setup();
        let m = Mlp::new(
            &mut store,
            &mut init,
            "xor",
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
        );
        let xs = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Tensor::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::MAX;
        for _ in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let t = g.constant(ys.clone());
            let p = m.forward(&mut g, &store, x);
            let loss = g.mse(p, t);
            last = g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.03, "XOR did not converge: loss {last}");
    }

    #[test]
    fn lstm_step_shapes_and_state_evolution() {
        let (mut store, mut init) = setup();
        let cell = LstmCell::new(&mut store, &mut init, "lstm", 6, 4);
        let mut g = Graph::new();
        let s0 = cell.zero_state(&mut g, 2);
        let x = g.constant(Tensor::ones(2, 6));
        let s1 = cell.step(&mut g, &store, x, s0);
        assert_eq!(g.value(s1.h).shape(), (2, 4));
        assert_eq!(g.value(s1.c).shape(), (2, 4));
        // State must actually change.
        assert!(g.value(s1.h).norm() > 0.0);
        let x2 = g.constant(Tensor::ones(2, 6));
        let s2 = cell.step(&mut g, &store, x2, s1);
        assert_ne!(g.value(s1.h).data(), g.value(s2.h).data());
    }

    #[test]
    fn lstm_gradient_flows_to_all_weights() {
        let (mut store, mut init) = setup();
        let cell = LstmCell::new(&mut store, &mut init, "lstm", 3, 2);
        store.zero_grads();
        let mut g = Graph::new();
        let s0 = cell.zero_state(&mut g, 1);
        let x = g.constant(Tensor::row(vec![0.5, -0.3, 0.8]));
        let s1 = cell.step(&mut g, &store, x, s0);
        let x2 = g.constant(Tensor::row(vec![-0.1, 0.4, 0.2]));
        let s2 = cell.step(&mut g, &store, x2, s1);
        let loss = g.sum_all(s2.h);
        g.backward(loss, &mut store);
        assert!(store.grad(cell.w_ih).norm() > 0.0);
        assert!(store.grad(cell.w_hh).norm() > 0.0);
        assert!(store.grad(cell.bias).norm() > 0.0);
    }

    #[test]
    fn attention_shapes_and_scores_sum_to_one() {
        let (mut store, mut init) = setup();
        let attn = MultiHeadCrossAttention::new(&mut store, &mut init, "qp", 8, 6, 4, 5, 10);
        let mut g = Graph::new();
        let q = g.constant(Initializer::new(1).normal(1, 8, 1.0));
        let kv = g.constant(Initializer::new(2).normal(3, 6, 1.0));
        let (out, scores) = attn.forward(&mut g, &store, q, kv);
        assert_eq!(g.value(out).shape(), (1, 10));
        assert_eq!(scores.len(), 4);
        for s in scores {
            let row = g.value(s);
            assert_eq!(row.shape(), (1, 3));
            assert!((row.sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_gradient_reaches_projections() {
        let (mut store, mut init) = setup();
        let attn = MultiHeadCrossAttention::new(&mut store, &mut init, "qp", 4, 4, 2, 3, 6);
        store.zero_grads();
        let mut g = Graph::new();
        let q = g.constant(Initializer::new(3).normal(1, 4, 1.0));
        let kv = g.constant(Initializer::new(4).normal(5, 4, 1.0));
        let (out, _) = attn.forward(&mut g, &store, q, kv);
        let loss = g.sum_all(out);
        g.backward(loss, &mut store);
        for h in 0..2 {
            assert!(store.grad(attn.wq[h]).norm() > 0.0, "wq[{h}] got no gradient");
            assert!(store.grad(attn.wk[h]).norm() > 0.0, "wk[{h}] got no gradient");
            assert!(store.grad(attn.wv[h]).norm() > 0.0, "wv[{h}] got no gradient");
        }
    }
}
