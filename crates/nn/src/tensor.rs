//! Dense 2-D `f32` tensors.
//!
//! Everything in the QPSeeker models is expressible with rank-2 tensors
//! (`[rows, cols]`): batches of feature vectors, weight matrices, attention
//! score matrices. Keeping the tensor type rank-2 keeps the autograd rules in
//! [`crate::graph`] small and easy to verify with finite differences.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows x cols` tensor filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// A `rows x cols` tensor of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(1, n, data)
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into `out`, which is reshaped to
    /// `self.rows x other.cols` reusing its allocation. This is the inference
    /// fast path: no fresh `Vec` per product.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_for(self.rows, other.cols);
        matmul_kernel(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
    }

    /// `self * otherᵀ` written into `out` (reshaped to `self.rows x other.rows`).
    ///
    /// # Panics
    /// Panics when column counts differ.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_for(self.rows, other.rows);
        let k = self.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..other.rows {
                let b_row = &other.data[j * k..(j + 1) * k];
                // Four independent accumulators hide the FMA latency chain.
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                let mut kk = 0;
                while kk + 4 <= k {
                    s0 += a_row[kk] * b_row[kk];
                    s1 += a_row[kk + 1] * b_row[kk + 1];
                    s2 += a_row[kk + 2] * b_row[kk + 2];
                    s3 += a_row[kk + 3] * b_row[kk + 3];
                    kk += 4;
                }
                let mut acc = (s0 + s1) + (s2 + s3);
                while kk < k {
                    acc += a_row[kk] * b_row[kk];
                    kk += 1;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
    }

    /// Reshape in place to `rows x cols` filled with zeros, reusing the
    /// allocation when it is large enough.
    pub(crate) fn reshape_for(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = k * other.cols;
                let out_row = i * other.cols;
                for j in 0..other.cols {
                    out.data[out_row + j] += a * other.data[b_row + j];
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = i * self.cols;
            for j in 0..other.rows {
                let b_row = j * other.cols;
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[a_row + k] * other.data[b_row + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// `self += other` elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise.
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Zero every element in place (reuses the allocation).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics when row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row_slice(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row_slice(r));
        }
        out
    }

    /// Vertical stack of row-compatible tensors.
    ///
    /// # Panics
    /// Panics when `parts` is empty or column counts differ.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows needs at least one part");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "stack_rows column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }
}

/// Blocked i-k-j matmul: `out[m x n] += a[m x k] * b[k x n]`, `out` pre-zeroed.
///
/// The k loop is unrolled 4-wide with fused updates so the inner j loop reads
/// four rows of `b` per pass over `out` — roughly quartering the `out` traffic
/// versus the scalar i-k-j loop. All-zero k-blocks are skipped, which keeps the
/// one-hot/sparse encoder inputs as cheap as the old per-element zero test.
fn matmul_kernel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                let b0 = &b[kk * n..][..n];
                let b1 = &b[(kk + 1) * n..][..n];
                let b2 = &b[(kk + 2) * n..][..n];
                let b3 = &b[(kk + 3) * n..][..n];
                for (j, o) in o_row.iter_mut().enumerate() {
                    *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
            }
            kk += 4;
        }
        while kk < k {
            let a0 = a_row[kk];
            if a0 != 0.0 {
                let b0 = &b[kk * n..][..n];
                for (j, o) in o_row.iter_mut().enumerate() {
                    *o += a0 * b0[j];
                }
            }
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row_slice(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    /// Scalar triple-loop reference used to validate the blocked kernel.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_on_odd_shapes() {
        // Shapes straddle the 4-wide k-blocking (remainders 1..3) and include
        // zero runs to exercise the sparse-block skip.
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 5), (3, 7, 4), (5, 9, 6), (4, 8, 8)] {
            let a = Tensor::from_vec(
                m,
                k,
                (0..m * k).map(|i| if i % 3 == 0 { 0.0 } else { (i as f32 * 0.7).sin() }).collect(),
            );
            let b = Tensor::from_vec(k, n, (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect());
            let fast = a.matmul(&b);
            let slow = matmul_naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-5, "blocked kernel diverged: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_into_reuses_and_reshapes_buffer() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut out = Tensor::filled(7, 7, f32::NAN); // stale shape and contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_into_matches_matmul_nt() {
        let a = Tensor::from_vec(3, 7, (0..21).map(|i| (i as f32 * 0.13).sin()).collect());
        let b = Tensor::from_vec(4, 7, (0..28).map(|i| (i as f32 * 0.29).cos()).collect());
        let mut out = Tensor::zeros(1, 1);
        a.matmul_nt_into(&b, &mut out);
        let expect = a.matmul_nt(&b);
        assert_eq!(out.shape(), expect.shape());
        for (x, y) in out.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transposed().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transposed()));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 1, vec![9., 10.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1., 2., 9., 3., 4., 10.]);
    }

    #[test]
    fn stack_rows_layout() {
        let a = Tensor::row(vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Tensor::stack_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_scaled() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 1., 1.]);
        let b = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn finite_detection() {
        let mut a = Tensor::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }
}
