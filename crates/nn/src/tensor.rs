//! Dense 2-D `f32` tensors.
//!
//! Everything in the QPSeeker models is expressible with rank-2 tensors
//! (`[rows, cols]`): batches of feature vectors, weight matrices, attention
//! score matrices. Keeping the tensor type rank-2 keeps the autograd rules in
//! [`crate::graph`] small and easy to verify with finite differences.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows x cols` tensor filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// A `rows x cols` tensor of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(1, n, data)
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into `out`, which is reshaped to
    /// `self.rows x other.cols` reusing its allocation. This is the inference
    /// fast path: no fresh `Vec` per product.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_for(self.rows, other.cols);
        matmul_kernel(self.rows, self.cols, other.cols, &self.data, &other.data, &mut out.data);
    }

    /// `self * otherᵀ` written into `out` (reshaped to `self.rows x other.rows`).
    ///
    /// # Panics
    /// Panics when column counts differ.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_for(self.rows, other.rows);
        let k = self.cols;
        let dot_fn = kernels().dot;
        for i in 0..self.rows {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..other.rows {
                let b_row = &other.data[j * k..(j + 1) * k];
                out.data[i * other.rows + j] = dot_fn(a_row, b_row);
            }
        }
    }

    /// Reshape in place to `rows x cols` filled with zeros, reusing the
    /// allocation when it is large enough.
    pub(crate) fn reshape_for(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = k * other.cols;
                let out_row = i * other.cols;
                for j in 0..other.cols {
                    out.data[out_row + j] += a * other.data[b_row + j];
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = i * self.cols;
            for j in 0..other.rows {
                let b_row = j * other.cols;
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[a_row + k] * other.data[b_row + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// `self += other` elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise.
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Zero every element in place (reuses the allocation).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics when row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Tensor::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row_slice(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row_slice(r));
        }
        out
    }

    /// Vertical stack of row-compatible tensors.
    ///
    /// # Panics
    /// Panics when `parts` is empty or column counts differ.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows needs at least one part");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "stack_rows column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }
}

/// The per-process kernel function table: every hot product dispatches
/// through these pointers, selected **once** from [`crate::isa::active`].
/// One tier per process means every FP-order contract (batched row ==
/// m=1 row, scalar score == batched score) holds within the tier even
/// though tiers round differently from each other.
pub(crate) struct KernelTable {
    pub gemm: GemmFn,
    pub dot: fn(&[f32], &[f32]) -> f32,
}

/// `(m, k, n, a, b, out)` — one GEMM kernel entry point.
pub(crate) type GemmFn = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);

/// The selected kernel table (resolved on first use, then immutable).
pub(crate) fn kernels() -> &'static KernelTable {
    use crate::isa::Isa;
    static TABLE: std::sync::OnceLock<KernelTable> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| match crate::isa::active() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only returns a tier the CPU supports.
        Isa::Avx512 => KernelTable {
            gemm: |m, k, n, a, b, out| unsafe { matmul_kernel_avx512(m, k, n, a, b, out) },
            dot: |a, b| unsafe { dot_avx512(a, b) },
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => KernelTable {
            gemm: |m, k, n, a, b, out| unsafe { matmul_kernel_fma(m, k, n, a, b, out) },
            dot: |a, b| unsafe { dot_fma(a, b) },
        },
        _ => KernelTable { gemm: matmul_kernel_portable, dot: dot_unrolled },
    })
}

/// Run the GEMM kernel of a specific tier, regardless of the process-wide
/// selection (falls back to scalar when the CPU lacks the tier). Test-only
/// escape hatch: `QPS_FORCE_ISA` is read once per process, so per-variant
/// coverage inside one test binary goes through this instead.
pub fn matmul_kernel_force(
    isa: crate::isa::Isa,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    use crate::isa::Isa;
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature support verified before entering the variant.
        Isa::Avx512 if isa.cpu_supports() => unsafe { matmul_kernel_avx512(m, k, n, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if isa.cpu_supports() => unsafe { matmul_kernel_fma(m, k, n, a, b, out) },
        _ => matmul_kernel_portable(m, k, n, a, b, out),
    }
}

/// Tier-forced dot product; see [`matmul_kernel_force`].
pub fn dot_force(isa: crate::isa::Isa, a: &[f32], b: &[f32]) -> f32 {
    use crate::isa::Isa;
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature support verified before entering the variant.
        Isa::Avx512 if isa.cpu_supports() => unsafe { dot_avx512(a, b) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if isa.cpu_supports() => unsafe { dot_fma(a, b) },
        _ => dot_unrolled(a, b),
    }
}

/// The dot product of the selected tier. Every dot in the inference fast
/// path (attention scores, batched score scatter) goes through this one
/// dispatch so the accumulation order — and therefore the bit pattern of
/// the result — is identical everywhere in a process.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    (kernels().dot)(a, b)
}

/// Unrolled scalar dot product with four independent accumulators hiding
/// the multiply-add latency chain, reduced as `(s0+s1)+(s2+s3)` plus a
/// scalar tail: the portable tier of [`dot`].
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut kk = 0;
    while kk + 4 <= k {
        s0 += a[kk] * b[kk];
        s1 += a[kk + 1] * b[kk + 1];
        s2 += a[kk + 2] * b[kk + 2];
        s3 += a[kk + 3] * b[kk + 3];
        kk += 4;
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    while kk < k {
        acc += a[kk] * b[kk];
        kk += 1;
    }
    acc
}

/// Register-blocked i-k-j matmul: `out[m x n] += a[m x k] * b[k x n]`, `out`
/// pre-zeroed.
///
/// Two levels of blocking:
///
/// * the k loop is unrolled 4-wide with fused updates, so one pass over an
///   output row folds in four rows of `b`;
/// * rows of `a` are processed four at a time, so each loaded `b` block is
///   applied to four output rows before it leaves registers — batched
///   (m > 1) products read `b` once per *four* rows instead of once per row.
///
/// **FP-order contract:** every output row accumulates its k-blocks in
/// exactly the order the m=1 kernel would, and a k-block is skipped iff that
/// row's four `a` values are all zero (the sparse one-hot fast path). Row `i`
/// of an `m x k` product is therefore **bitwise identical** to the `1 x k`
/// product of row `i` alone — the invariant that lets MCTS score a batch of
/// candidate plans in one pass and still match the scalar path bit for bit
/// (asserted by `batched_rows_bitwise_equal_single_rows` below and the
/// proptests in `tests/proptests.rs`).
pub(crate) fn matmul_kernel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    (kernels().gemm)(m, k, n, a, b, out)
}

/// Portable scalar body of [`matmul_kernel`]. The FMA variant selected above
/// uses fused multiply-adds, so its *values* differ from this path in the
/// last bits — but feature detection is a pure function of the CPU, every
/// product in a process goes through the same variant, and each variant
/// upholds the row-equality contract on its own, which is all the batched
/// evaluation path relies on.
fn matmul_kernel_portable(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut i = 0;
    while i + 4 <= m {
        let (a0_row, rest) = a[i * k..].split_at(k);
        let (a1_row, rest) = rest.split_at(k);
        let (a2_row, rest) = rest.split_at(k);
        let a3_row = &rest[..k];
        let (o0, rest) = out[i * n..].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, rest) = rest.split_at_mut(n);
        let o3 = &mut rest[..n];
        let mut kk = 0;
        while kk + 4 <= k {
            let b0 = &b[kk * n..][..n];
            let b1 = &b[(kk + 1) * n..][..n];
            let b2 = &b[(kk + 2) * n..][..n];
            let b3 = &b[(kk + 3) * n..][..n];
            let c0 = (a0_row[kk], a0_row[kk + 1], a0_row[kk + 2], a0_row[kk + 3]);
            let c1 = (a1_row[kk], a1_row[kk + 1], a1_row[kk + 2], a1_row[kk + 3]);
            let c2 = (a2_row[kk], a2_row[kk + 1], a2_row[kk + 2], a2_row[kk + 3]);
            let c3 = (a3_row[kk], a3_row[kk + 1], a3_row[kk + 2], a3_row[kk + 3]);
            let nz = |c: (f32, f32, f32, f32)| c.0 != 0.0 || c.1 != 0.0 || c.2 != 0.0 || c.3 != 0.0;
            if nz(c0) && nz(c1) && nz(c2) && nz(c3) {
                // Dense fast path: each b element feeds four output rows.
                for j in 0..n {
                    let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                    o0[j] += c0.0 * v0 + c0.1 * v1 + c0.2 * v2 + c0.3 * v3;
                    o1[j] += c1.0 * v0 + c1.1 * v1 + c1.2 * v2 + c1.3 * v3;
                    o2[j] += c2.0 * v0 + c2.1 * v1 + c2.2 * v2 + c2.3 * v3;
                    o3[j] += c3.0 * v0 + c3.1 * v1 + c3.2 * v2 + c3.3 * v3;
                }
            } else {
                // Sparse fallback: per-row skip, identical order per row.
                for (c, o) in [(c0, &mut *o0), (c1, &mut *o1), (c2, &mut *o2), (c3, &mut *o3)] {
                    if nz(c) {
                        for (j, ov) in o.iter_mut().enumerate() {
                            *ov += c.0 * b0[j] + c.1 * b1[j] + c.2 * b2[j] + c.3 * b3[j];
                        }
                    }
                }
            }
            kk += 4;
        }
        while kk < k {
            let b0 = &b[kk * n..][..n];
            for (a_row, o) in
                [(a0_row, &mut *o0), (a1_row, &mut *o1), (a2_row, &mut *o2), (a3_row, &mut *o3)]
            {
                let av = a_row[kk];
                if av != 0.0 {
                    for (j, ov) in o.iter_mut().enumerate() {
                        *ov += av * b0[j];
                    }
                }
            }
            kk += 1;
        }
        i += 4;
    }
    for i in i..m {
        matmul_row(k, n, &a[i * k..(i + 1) * k], b, &mut out[i * n..(i + 1) * n]);
    }
}

/// AVX2+FMA register-tiled kernel: output tiles of 4 rows x 8 columns live
/// in ymm accumulators across the *entire* k loop, so the only memory
/// traffic in the inner loop is one b vector load and four coefficient
/// broadcasts per k step — b is read once per four output rows and `out`
/// is written exactly once per element.
///
/// **FP-order contract:** every output element accumulates as a single
/// branchless fused-multiply-add chain over k in index order —
/// `acc = fma(a[i][kk], b[kk][j], acc)` for kk = 0..k — for every row
/// position in the tile and for the remainder-row path alike. Row `i` of an
/// `m x k` product is therefore bitwise identical to the `1 x k` product of
/// row `i` alone, the invariant batched plan evaluation relies on. (Zero
/// coefficients are folded in rather than skipped: `fma(0, b, acc) == acc`
/// exactly for finite `b`.) Values differ from the portable kernel in the
/// last bits (single-rounded FMA); see [`matmul_kernel_portable`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_kernel_fma(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 4 <= m {
        let (a0, rest) = a[i * k..].split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, rest) = rest.split_at(k);
        let a3 = &rest[..k];
        // Featurized inputs are one-hot heavy: many k positions are zero in
        // all four rows at once (unused feature slots are structural, shared
        // across the batch). Skipping such a step is bitwise-free —
        // `fma(0, b, acc) == acc` for every lane — so when at least a
        // quarter of the k steps are skippable, take the branchy variant;
        // dense weight matrices keep the branchless loop.
        let mut skippable = 0usize;
        for kk in 0..k {
            if a0[kk] == 0.0 && a1[kk] == 0.0 && a2[kk] == 0.0 && a3[kk] == 0.0 {
                skippable += 1;
            }
        }
        let sparse = skippable * 4 >= k;
        let mut j = 0;
        // 4x16 tiles: 8 accumulator chains hide the fma latency (4 chains
        // leave the units half idle), and each coefficient broadcast feeds
        // two column vectors. Per-element accumulation order is unchanged.
        while j + 16 <= n {
            let mut acc00 = _mm256_setzero_ps();
            let mut acc01 = _mm256_setzero_ps();
            let mut acc10 = _mm256_setzero_ps();
            let mut acc11 = _mm256_setzero_ps();
            let mut acc20 = _mm256_setzero_ps();
            let mut acc21 = _mm256_setzero_ps();
            let mut acc30 = _mm256_setzero_ps();
            let mut acc31 = _mm256_setzero_ps();
            for kk in 0..k {
                let c0 = *a0.get_unchecked(kk);
                let c1 = *a1.get_unchecked(kk);
                let c2 = *a2.get_unchecked(kk);
                let c3 = *a3.get_unchecked(kk);
                if sparse && c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let bv0 = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                let bv1 = _mm256_loadu_ps(b.as_ptr().add(kk * n + j + 8));
                let v0 = _mm256_set1_ps(c0);
                acc00 = _mm256_fmadd_ps(v0, bv0, acc00);
                acc01 = _mm256_fmadd_ps(v0, bv1, acc01);
                let v1 = _mm256_set1_ps(c1);
                acc10 = _mm256_fmadd_ps(v1, bv0, acc10);
                acc11 = _mm256_fmadd_ps(v1, bv1, acc11);
                let v2 = _mm256_set1_ps(c2);
                acc20 = _mm256_fmadd_ps(v2, bv0, acc20);
                acc21 = _mm256_fmadd_ps(v2, bv1, acc21);
                let v3 = _mm256_set1_ps(c3);
                acc30 = _mm256_fmadd_ps(v3, bv0, acc30);
                acc31 = _mm256_fmadd_ps(v3, bv1, acc31);
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), acc00);
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j + 8), acc01);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), acc10);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j + 8), acc11);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), acc20);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j + 8), acc21);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), acc30);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j + 8), acc31);
            j += 16;
        }
        while j + 8 <= n {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            if sparse {
                for kk in 0..k {
                    let c0 = *a0.get_unchecked(kk);
                    let c1 = *a1.get_unchecked(kk);
                    let c2 = *a2.get_unchecked(kk);
                    let c3 = *a3.get_unchecked(kk);
                    if c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                        continue;
                    }
                    let bv = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                    acc0 = _mm256_fmadd_ps(_mm256_set1_ps(c0), bv, acc0);
                    acc1 = _mm256_fmadd_ps(_mm256_set1_ps(c1), bv, acc1);
                    acc2 = _mm256_fmadd_ps(_mm256_set1_ps(c2), bv, acc2);
                    acc3 = _mm256_fmadd_ps(_mm256_set1_ps(c3), bv, acc3);
                }
            } else {
                for kk in 0..k {
                    let bv = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                    acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.get_unchecked(kk)), bv, acc0);
                    acc1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.get_unchecked(kk)), bv, acc1);
                    acc2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.get_unchecked(kk)), bv, acc2);
                    acc3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.get_unchecked(kk)), bv, acc3);
                }
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), acc0);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), acc1);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), acc2);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), acc3);
            j += 8;
        }
        // j tail: same per-element fma chain, scalar lanes.
        for j in j..n {
            for (a_row, r) in [(a0, 0usize), (a1, 1), (a2, 2), (a3, 3)] {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a_row[kk].mul_add(b[kk * n + j], acc);
                }
                out[(i + r) * n + j] = acc;
            }
        }
        i += 4;
    }
    for i in i..m {
        matmul_row_fma(k, n, &a[i * k..(i + 1) * k], b, &mut out[i * n..(i + 1) * n]);
    }
}

/// Remainder-row (and m=1) path of [`matmul_kernel_fma`]: b streamed
/// row-wise in 4-wide k-blocks with the sparse all-zero-block skip, `o_row`
/// (pre-zeroed) as the accumulator. Per element this is the same
/// k-increasing fma chain as the register tile — a skipped block would have
/// contributed `fma(0, b, acc) == acc` — so rows stay bitwise identical
/// across both paths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matmul_row_fma(k: usize, n: usize, a_row: &[f32], b: &[f32], o_row: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut kk = 0;
    while kk + 4 <= k {
        let c = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
        if c.0 != 0.0 || c.1 != 0.0 || c.2 != 0.0 || c.3 != 0.0 {
            let b0 = b.as_ptr().add(kk * n);
            let b1 = b.as_ptr().add((kk + 1) * n);
            let b2 = b.as_ptr().add((kk + 2) * n);
            let b3 = b.as_ptr().add((kk + 3) * n);
            let (vc0, vc1) = (_mm256_set1_ps(c.0), _mm256_set1_ps(c.1));
            let (vc2, vc3) = (_mm256_set1_ps(c.2), _mm256_set1_ps(c.3));
            let mut j = 0;
            while j + 8 <= n {
                let op = o_row.as_mut_ptr().add(j);
                let mut acc = _mm256_loadu_ps(op);
                acc = _mm256_fmadd_ps(vc0, _mm256_loadu_ps(b0.add(j)), acc);
                acc = _mm256_fmadd_ps(vc1, _mm256_loadu_ps(b1.add(j)), acc);
                acc = _mm256_fmadd_ps(vc2, _mm256_loadu_ps(b2.add(j)), acc);
                acc = _mm256_fmadd_ps(vc3, _mm256_loadu_ps(b3.add(j)), acc);
                _mm256_storeu_ps(op, acc);
                j += 8;
            }
            while j < n {
                let acc = c.0.mul_add(*b0.add(j), o_row[j]);
                let acc = c.1.mul_add(*b1.add(j), acc);
                let acc = c.2.mul_add(*b2.add(j), acc);
                o_row[j] = c.3.mul_add(*b3.add(j), acc);
                j += 1;
            }
        }
        kk += 4;
    }
    while kk < k {
        let av = a_row[kk];
        if av != 0.0 {
            let b0 = b.as_ptr().add(kk * n);
            let vc = _mm256_set1_ps(av);
            let mut j = 0;
            while j + 8 <= n {
                let op = o_row.as_mut_ptr().add(j);
                _mm256_storeu_ps(
                    op,
                    _mm256_fmadd_ps(vc, _mm256_loadu_ps(b0.add(j)), _mm256_loadu_ps(op)),
                );
                j += 8;
            }
            while j < n {
                o_row[j] = av.mul_add(*b0.add(j), o_row[j]);
                j += 1;
            }
        }
        kk += 1;
    }
}

/// AVX-512F register-tiled kernel: output tiles of 4 rows x 32 columns live
/// in zmm accumulators across the entire k loop (8 chains hide the fma
/// latency), with a 16-wide loop and one *masked* 16-wide step covering the
/// column tail — tail lanes are branchless, so which code path a column
/// takes depends only on its index and `n`, never on the row count.
///
/// **FP-order contract:** identical to [`matmul_kernel_fma`] — every output
/// element is a single k-increasing fused-multiply-add chain, and skipped
/// all-zero steps would have contributed `fma(0, b, acc) == acc` exactly.
/// Row `i` of an m-row product is bitwise identical to its m=1 twin. Values
/// differ from the AVX2 and portable tiers in the last bits; one tier per
/// process (see [`crate::isa::active`]) keeps every in-process comparison
/// bitwise-consistent.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_kernel_avx512(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 4 <= m {
        let (a0, rest) = a[i * k..].split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, rest) = rest.split_at(k);
        let a3 = &rest[..k];
        // Same sparse-step heuristic as the AVX2 tier: one-hot heavy inputs
        // share structural zero slots across the batch, and skipping an
        // all-zero step is bitwise-free.
        let mut skippable = 0usize;
        for kk in 0..k {
            if a0[kk] == 0.0 && a1[kk] == 0.0 && a2[kk] == 0.0 && a3[kk] == 0.0 {
                skippable += 1;
            }
        }
        let sparse = skippable * 4 >= k;
        let mut j = 0;
        while j + 32 <= n {
            let mut acc00 = _mm512_setzero_ps();
            let mut acc01 = _mm512_setzero_ps();
            let mut acc10 = _mm512_setzero_ps();
            let mut acc11 = _mm512_setzero_ps();
            let mut acc20 = _mm512_setzero_ps();
            let mut acc21 = _mm512_setzero_ps();
            let mut acc30 = _mm512_setzero_ps();
            let mut acc31 = _mm512_setzero_ps();
            for kk in 0..k {
                let c0 = *a0.get_unchecked(kk);
                let c1 = *a1.get_unchecked(kk);
                let c2 = *a2.get_unchecked(kk);
                let c3 = *a3.get_unchecked(kk);
                if sparse && c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let bv0 = _mm512_loadu_ps(b.as_ptr().add(kk * n + j));
                let bv1 = _mm512_loadu_ps(b.as_ptr().add(kk * n + j + 16));
                let v0 = _mm512_set1_ps(c0);
                acc00 = _mm512_fmadd_ps(v0, bv0, acc00);
                acc01 = _mm512_fmadd_ps(v0, bv1, acc01);
                let v1 = _mm512_set1_ps(c1);
                acc10 = _mm512_fmadd_ps(v1, bv0, acc10);
                acc11 = _mm512_fmadd_ps(v1, bv1, acc11);
                let v2 = _mm512_set1_ps(c2);
                acc20 = _mm512_fmadd_ps(v2, bv0, acc20);
                acc21 = _mm512_fmadd_ps(v2, bv1, acc21);
                let v3 = _mm512_set1_ps(c3);
                acc30 = _mm512_fmadd_ps(v3, bv0, acc30);
                acc31 = _mm512_fmadd_ps(v3, bv1, acc31);
            }
            _mm512_storeu_ps(out.as_mut_ptr().add(i * n + j), acc00);
            _mm512_storeu_ps(out.as_mut_ptr().add(i * n + j + 16), acc01);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), acc10);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j + 16), acc11);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), acc20);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j + 16), acc21);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), acc30);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j + 16), acc31);
            j += 32;
        }
        while j + 16 <= n {
            let mut acc0 = _mm512_setzero_ps();
            let mut acc1 = _mm512_setzero_ps();
            let mut acc2 = _mm512_setzero_ps();
            let mut acc3 = _mm512_setzero_ps();
            for kk in 0..k {
                let c0 = *a0.get_unchecked(kk);
                let c1 = *a1.get_unchecked(kk);
                let c2 = *a2.get_unchecked(kk);
                let c3 = *a3.get_unchecked(kk);
                if sparse && c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let bv = _mm512_loadu_ps(b.as_ptr().add(kk * n + j));
                acc0 = _mm512_fmadd_ps(_mm512_set1_ps(c0), bv, acc0);
                acc1 = _mm512_fmadd_ps(_mm512_set1_ps(c1), bv, acc1);
                acc2 = _mm512_fmadd_ps(_mm512_set1_ps(c2), bv, acc2);
                acc3 = _mm512_fmadd_ps(_mm512_set1_ps(c3), bv, acc3);
            }
            _mm512_storeu_ps(out.as_mut_ptr().add(i * n + j), acc0);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), acc1);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), acc2);
            _mm512_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), acc3);
            j += 16;
        }
        if j < n {
            // Masked column tail: zero-masked loads contribute
            // `fma(c, 0, acc) == acc` in the dead lanes, live lanes follow
            // the exact per-element chain of the full-width loop.
            let mask: __mmask16 = (1u16 << (n - j)) - 1;
            let mut acc0 = _mm512_setzero_ps();
            let mut acc1 = _mm512_setzero_ps();
            let mut acc2 = _mm512_setzero_ps();
            let mut acc3 = _mm512_setzero_ps();
            for kk in 0..k {
                let c0 = *a0.get_unchecked(kk);
                let c1 = *a1.get_unchecked(kk);
                let c2 = *a2.get_unchecked(kk);
                let c3 = *a3.get_unchecked(kk);
                if sparse && c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let bv = _mm512_maskz_loadu_ps(mask, b.as_ptr().add(kk * n + j));
                acc0 = _mm512_fmadd_ps(_mm512_set1_ps(c0), bv, acc0);
                acc1 = _mm512_fmadd_ps(_mm512_set1_ps(c1), bv, acc1);
                acc2 = _mm512_fmadd_ps(_mm512_set1_ps(c2), bv, acc2);
                acc3 = _mm512_fmadd_ps(_mm512_set1_ps(c3), bv, acc3);
            }
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(i * n + j), mask, acc0);
            _mm512_mask_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), mask, acc1);
            _mm512_mask_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), mask, acc2);
            _mm512_mask_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), mask, acc3);
        }
        i += 4;
    }
    for i in i..m {
        matmul_row_avx512(k, n, &a[i * k..(i + 1) * k], b, &mut out[i * n..(i + 1) * n]);
    }
}

/// Remainder-row (and m=1) path of [`matmul_kernel_avx512`]: the same
/// 16-wide + masked-tail column scheme, accumulators kept in registers for
/// the whole k loop, zero coefficients skipped (bitwise-free).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_row_avx512(k: usize, n: usize, a_row: &[f32], b: &[f32], o_row: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut j = 0;
    while j + 32 <= n {
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        for kk in 0..k {
            let c = *a_row.get_unchecked(kk);
            if c == 0.0 {
                continue;
            }
            let v = _mm512_set1_ps(c);
            acc0 = _mm512_fmadd_ps(v, _mm512_loadu_ps(b.as_ptr().add(kk * n + j)), acc0);
            acc1 = _mm512_fmadd_ps(v, _mm512_loadu_ps(b.as_ptr().add(kk * n + j + 16)), acc1);
        }
        _mm512_storeu_ps(o_row.as_mut_ptr().add(j), acc0);
        _mm512_storeu_ps(o_row.as_mut_ptr().add(j + 16), acc1);
        j += 32;
    }
    while j + 16 <= n {
        let mut acc = _mm512_setzero_ps();
        for kk in 0..k {
            let c = *a_row.get_unchecked(kk);
            if c == 0.0 {
                continue;
            }
            acc = _mm512_fmadd_ps(
                _mm512_set1_ps(c),
                _mm512_loadu_ps(b.as_ptr().add(kk * n + j)),
                acc,
            );
        }
        _mm512_storeu_ps(o_row.as_mut_ptr().add(j), acc);
        j += 16;
    }
    if j < n {
        let mask: __mmask16 = (1u16 << (n - j)) - 1;
        let mut acc = _mm512_setzero_ps();
        for kk in 0..k {
            let c = *a_row.get_unchecked(kk);
            if c == 0.0 {
                continue;
            }
            let bv = _mm512_maskz_loadu_ps(mask, b.as_ptr().add(kk * n + j));
            acc = _mm512_fmadd_ps(_mm512_set1_ps(c), bv, acc);
        }
        _mm512_mask_storeu_ps(o_row.as_mut_ptr().add(j), mask, acc);
    }
}

/// AVX2+FMA dot product: two 8-lane fma chains over 16-wide steps, one
/// 8-wide step, a deterministic tree reduction, then a scalar `mul_add`
/// tail. Lane membership depends only on the index, so the result is a
/// pure function of the inputs — the property [`Tensor::matmul_nt_into`]
/// and the batched attention score scatter both rely on.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut kk = 0;
    while kk + 16 <= k {
        acc0 = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.as_ptr().add(kk)),
            _mm256_loadu_ps(b.as_ptr().add(kk)),
            acc0,
        );
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.as_ptr().add(kk + 8)),
            _mm256_loadu_ps(b.as_ptr().add(kk + 8)),
            acc1,
        );
        kk += 16;
    }
    while kk + 8 <= k {
        acc0 = _mm256_fmadd_ps(
            _mm256_loadu_ps(a.as_ptr().add(kk)),
            _mm256_loadu_ps(b.as_ptr().add(kk)),
            acc0,
        );
        kk += 8;
    }
    let acc = _mm256_add_ps(acc0, acc1);
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps::<1>(acc);
    let q = _mm_add_ps(lo, hi);
    let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(d, _mm_shuffle_ps::<1>(d, d));
    let mut sum = _mm_cvtss_f32(s);
    while kk < k {
        sum = a[kk].mul_add(b[kk], sum);
        kk += 1;
    }
    sum
}

/// AVX-512F dot product: two 16-lane fma chains over 32-wide steps, one
/// 16-wide step, the `_mm512_reduce_add_ps` tree reduction, then a scalar
/// `mul_add` tail. Same determinism note as [`dot_fma`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut acc0 = _mm512_setzero_ps();
    let mut acc1 = _mm512_setzero_ps();
    let mut kk = 0;
    while kk + 32 <= k {
        acc0 = _mm512_fmadd_ps(
            _mm512_loadu_ps(a.as_ptr().add(kk)),
            _mm512_loadu_ps(b.as_ptr().add(kk)),
            acc0,
        );
        acc1 = _mm512_fmadd_ps(
            _mm512_loadu_ps(a.as_ptr().add(kk + 16)),
            _mm512_loadu_ps(b.as_ptr().add(kk + 16)),
            acc1,
        );
        kk += 32;
    }
    while kk + 16 <= k {
        acc0 = _mm512_fmadd_ps(
            _mm512_loadu_ps(a.as_ptr().add(kk)),
            _mm512_loadu_ps(b.as_ptr().add(kk)),
            acc0,
        );
        kk += 16;
    }
    let mut sum = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
    while kk < k {
        sum = a[kk].mul_add(b[kk], sum);
        kk += 1;
    }
    sum
}

/// One row of the i-k-j kernel: `o_row[1 x n] += a_row[1 x k] * b[k x n]`.
/// The reference accumulation order every blocked variant must reproduce.
#[inline]
fn matmul_row(k: usize, n: usize, a_row: &[f32], b: &[f32], o_row: &mut [f32]) {
    let mut kk = 0;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
        if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
            let b0 = &b[kk * n..][..n];
            let b1 = &b[(kk + 1) * n..][..n];
            let b2 = &b[(kk + 2) * n..][..n];
            let b3 = &b[(kk + 3) * n..][..n];
            for (j, o) in o_row.iter_mut().enumerate() {
                *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
        }
        kk += 4;
    }
    while kk < k {
        let a0 = a_row[kk];
        if a0 != 0.0 {
            let b0 = &b[kk * n..][..n];
            for (j, o) in o_row.iter_mut().enumerate() {
                *o += a0 * b0[j];
            }
        }
        kk += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row_slice(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    /// Scalar triple-loop reference used to validate the blocked kernel.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_on_odd_shapes() {
        // Shapes straddle the 4-wide k-blocking (remainders 1..3) and include
        // zero runs to exercise the sparse-block skip.
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 5), (3, 7, 4), (5, 9, 6), (4, 8, 8)] {
            let a = Tensor::from_vec(
                m,
                k,
                (0..m * k).map(|i| if i % 3 == 0 { 0.0 } else { (i as f32 * 0.7).sin() }).collect(),
            );
            let b = Tensor::from_vec(k, n, (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect());
            let fast = a.matmul(&b);
            let slow = matmul_naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-5, "blocked kernel diverged: {x} vs {y}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_kernel_close_to_portable_and_rowwise_bitwise_stable() {
        if !(std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma"))
        {
            return;
        }
        // The FMA variant rounds differently (fused multiply-add), so it is
        // only *close* to the portable kernel — but within itself every row
        // of an m-row product must be bitwise identical to the same row
        // computed at m = 1, across tile remainders and j tails.
        for &(m, k, n) in &[(1, 4, 4), (3, 7, 5), (4, 8, 8), (5, 17, 6), (7, 96, 9), (16, 219, 13)]
        {
            let a: Vec<f32> = (0..m * k)
                .map(|i| {
                    if (i / k) % 2 == 0 && (i % k) / 4 == 0 {
                        0.0
                    } else {
                        (i as f32 * 0.619).sin()
                    }
                })
                .collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.271).cos()).collect();
            let mut simd = vec![0.0f32; m * n];
            let mut portable = vec![0.0f32; m * n];
            unsafe { matmul_kernel_fma(m, k, n, &a, &b, &mut simd) };
            matmul_kernel_portable(m, k, n, &a, &b, &mut portable);
            for (s, p) in simd.iter().zip(&portable) {
                assert!((s - p).abs() <= 1e-5 * (k as f32).sqrt() * p.abs().max(1.0));
            }
            for i in 0..m {
                let mut single = vec![0.0f32; n];
                unsafe { matmul_kernel_fma(1, k, n, &a[i * k..(i + 1) * k], &b, &mut single) };
                assert_eq!(
                    &simd[i * n..(i + 1) * n],
                    single.as_slice(),
                    "FMA row {i} of {m}x{k}x{n} differs from its m=1 twin"
                );
            }
        }
    }

    #[test]
    fn batched_rows_bitwise_equal_single_rows() {
        // The FP-order contract: row i of an m-row product must be *bitwise*
        // identical to multiplying row i alone (m=1). Shapes cover the 4-row
        // register blocking (remainder rows), 4-wide k-blocking (tails), and
        // rows with all-zero k-blocks that take the sparse skip path.
        for &(m, k, n) in &[(1, 4, 4), (3, 7, 5), (4, 8, 8), (5, 17, 6), (7, 96, 9), (9, 5, 96)] {
            let a = Tensor::from_vec(
                m,
                k,
                (0..m * k)
                    .map(|i| {
                        // Zero out whole k-blocks for some rows to hit the skip.
                        if (i / k) % 2 == 0 && (i % k) / 4 == 0 {
                            0.0
                        } else {
                            (i as f32 * 0.619).sin()
                        }
                    })
                    .collect(),
            );
            let b = Tensor::from_vec(k, n, (0..k * n).map(|i| (i as f32 * 0.271).cos()).collect());
            let batched = a.matmul(&b);
            for i in 0..m {
                let row = Tensor::from_vec(1, k, a.row_slice(i).to_vec());
                let single = row.matmul(&b);
                assert_eq!(
                    batched.row_slice(i),
                    single.data(),
                    "row {i} of {m}x{k}x{n} product is not bitwise equal to its m=1 twin"
                );
            }
        }
    }

    #[test]
    fn matmul_into_reuses_and_reshapes_buffer() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut out = Tensor::filled(7, 7, f32::NAN); // stale shape and contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_into_matches_matmul_nt() {
        let a = Tensor::from_vec(3, 7, (0..21).map(|i| (i as f32 * 0.13).sin()).collect());
        let b = Tensor::from_vec(4, 7, (0..28).map(|i| (i as f32 * 0.29).cos()).collect());
        let mut out = Tensor::zeros(1, 1);
        a.matmul_nt_into(&b, &mut out);
        let expect = a.matmul_nt(&b);
        assert_eq!(out.shape(), expect.shape());
        for (x, y) in out.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transposed().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transposed()));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 1, vec![9., 10.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1., 2., 9., 3., 4., 10.]);
    }

    #[test]
    fn stack_rows_layout() {
        let a = Tensor::row(vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Tensor::stack_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_scaled() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 1., 1.]);
        let b = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn finite_detection() {
        let mut a = Tensor::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }
}
