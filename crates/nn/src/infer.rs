//! Tape-free inference fast path.
//!
//! Training needs the autodiff tape in [`crate::graph`]; inference does not.
//! MCTS planning calls the cost model hundreds of times per query inside a
//! 200 ms budget, and on that path the tape is pure overhead: every op clones
//! its output tensor into a graph node, allocates, and (in debug builds) runs
//! finiteness asserts. This module gives each layer a `forward_inference`
//! counterpart that computes values only, writing into tensors recycled
//! through a [`ScratchArena`].
//!
//! Two deliberate differences from the tape path:
//!
//! * **No finiteness asserts.** A NaN produced here (e.g. by injected faults
//!   or corrupted weights) flows through to the caller's `is_finite()` check
//!   and triggers graceful degradation instead of a panic.
//! * **Blocked kernels.** Products go through [`Tensor::matmul_into`] /
//!   [`Tensor::matmul_nt_into`], which changes float accumulation order; the
//!   fast path is guaranteed to match the tape within 1e-5, not bitwise.

use crate::layers::{Activation, Linear, LstmCell, Mlp, MultiHeadCrossAttention};
use crate::pack::gemm_packed;
use crate::params::ParamStore;
use crate::tensor::{dot, matmul_kernel, Tensor};
use std::cell::RefCell;

/// A pool of `Tensor` allocations reused across inference calls.
///
/// `take` hands out a zeroed tensor of the requested shape (recycling a
/// previous allocation when one is available); `recycle` returns a tensor to
/// the pool. The arena is deliberately dumb — a LIFO stack of buffers — which
/// is enough to make the steady-state inference loop allocation-free.
#[derive(Default)]
pub struct ScratchArena {
    pool: Vec<Tensor>,
}

impl ScratchArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled buffers currently idle.
    pub fn idle(&self) -> usize {
        self.pool.len()
    }

    /// A zeroed `rows x cols` tensor, recycled when possible.
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.pool.pop() {
            Some(mut t) => {
                t.reshape_for(rows, cols);
                t
            }
            None => Tensor::zeros(rows, cols),
        }
    }

    /// Return a tensor's allocation to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.push(t);
    }
}

thread_local! {
    static SCRATCH: RefCell<ScratchArena> = RefCell::new(ScratchArena::new());
}

/// Run `f` with this thread's shared [`ScratchArena`].
///
/// Top-level inference entry points use this so repeated predictions on one
/// thread reuse the same buffers; nested calls must instead thread the arena
/// explicitly (the closure holds the `RefCell` borrow).
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// `x[r,c] += bias[1,c]` broadcast over rows, in place.
pub fn add_row_broadcast_assign(x: &mut Tensor, bias: &Tensor) {
    debug_assert_eq!(bias.rows(), 1, "bias must be a row vector");
    debug_assert_eq!(x.cols(), bias.cols(), "bias width mismatch");
    let b = bias.data();
    for r in 0..x.rows() {
        for (v, bv) in x.row_slice_mut(r).iter_mut().zip(b) {
            *v += bv;
        }
    }
}

/// Apply an [`Activation`] elementwise in place. The scalar functions are the
/// exact expressions the tape ops use, so both paths agree bit-for-bit here.
pub fn activate_inplace(x: &mut Tensor, a: Activation) {
    match a {
        Activation::Identity => {}
        Activation::Relu => {
            for v in x.data_mut() {
                *v = v.max(0.0);
            }
        }
        Activation::Tanh => crate::act::tanh_inplace(x.data_mut()),
        Activation::Sigmoid => crate::act::sigmoid_inplace(x.data_mut()),
    }
}

/// Row-wise softmax with max-subtraction, in place. NaN inputs produce NaN
/// outputs (no panic) so faults degrade gracefully downstream.
pub fn softmax_rows_inplace(x: &mut Tensor) {
    for r in 0..x.rows() {
        let row = x.row_slice_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl Linear {
    /// Tape-free `x·W + b` into a scratch tensor.
    pub fn forward_inference(
        &self,
        store: &ParamStore,
        x: &Tensor,
        sc: &mut ScratchArena,
    ) -> Tensor {
        self.forward_inference_act(store, x, Activation::Identity, sc)
    }

    /// Tape-free `act(x·W + b)` through the panel-packed GEMM: bias and
    /// activation are applied to the accumulator registers in the epilogue,
    /// so the output is written exactly once.
    pub fn forward_inference_act(
        &self,
        store: &ParamStore,
        x: &Tensor,
        act: Activation,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let mut y = sc.take(x.rows(), self.out_dim);
        gemm_packed(
            x.rows(),
            x.data(),
            store.packed(self.w),
            false,
            Some(store.value(self.b).data()),
            act,
            y.data_mut(),
        );
        y
    }
}

impl Mlp {
    /// Tape-free MLP forward; each layer runs as a single fused
    /// GEMM+bias+activation pass, intermediate activations are recycled.
    pub fn forward_inference(
        &self,
        store: &ParamStore,
        x: &Tensor,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let last = self.layers.len() - 1;
        let mut h: Option<Tensor> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last { self.output_activation } else { self.hidden_activation };
            let y = layer.forward_inference_act(store, h.as_ref().unwrap_or(x), act, sc);
            if let Some(prev) = h.replace(y) {
                sc.recycle(prev);
            }
        }
        h.expect("MLP has layers")
    }
}

/// Owned hidden/cell state for tape-free LSTM steps.
pub struct LstmStateBuf {
    pub h: Tensor,
    pub c: Tensor,
}

impl LstmStateBuf {
    /// Return both state tensors to the arena.
    pub fn recycle(self, sc: &mut ScratchArena) {
        sc.recycle(self.h);
        sc.recycle(self.c);
    }
}

impl LstmCell {
    /// Zero initial state for `rows` sequences, drawn from the arena.
    pub fn zero_state_buf(&self, rows: usize, sc: &mut ScratchArena) -> LstmStateBuf {
        LstmStateBuf { h: sc.take(rows, self.hidden_dim), c: sc.take(rows, self.hidden_dim) }
    }

    /// One tape-free step. Gate math mirrors [`LstmCell::step`] exactly:
    /// `i,f,g,o = split(x·W_ih + h·W_hh + b)`, `c' = σ(f)⊙c + σ(i)⊙tanh(g)`,
    /// `h' = σ(o)⊙tanh(c')`.
    pub fn step_inference(
        &self,
        store: &ParamStore,
        x: &Tensor,
        state: &LstmStateBuf,
        sc: &mut ScratchArena,
    ) -> LstmStateBuf {
        debug_assert_eq!(x.cols(), self.input_dim, "LSTM input width mismatch");
        let rows = x.rows();
        let d = self.hidden_dim;
        // Two packed GEMMs replace the old four passes (two products, an
        // add, a bias broadcast): the second GEMM accumulates onto the first
        // and folds the bias in through the epilogue.
        let mut gates = sc.take(rows, 4 * d);
        gemm_packed(
            rows,
            x.data(),
            store.packed(self.w_ih),
            false,
            None,
            Activation::Identity,
            gates.data_mut(),
        );
        gemm_packed(
            rows,
            state.h.data(),
            store.packed(self.w_hh),
            true,
            Some(store.value(self.bias).data()),
            Activation::Identity,
            gates.data_mut(),
        );
        let mut c = sc.take(rows, d);
        let mut h = sc.take(rows, d);
        crate::act::lstm_gates(rows, d, gates.data(), state.c.data(), c.data_mut(), h.data_mut());
        sc.recycle(gates);
        LstmStateBuf { h, c }
    }
}

impl MultiHeadCrossAttention {
    /// Tape-free attention: `query [1, q_dim]`, `kv [n, kv_dim]` → `[1, out_dim]`.
    ///
    /// When `scores_out` is `Some`, each head's attention row (`n` weights) is
    /// appended to it for introspection.
    pub fn forward_inference(
        &self,
        store: &ParamStore,
        query: &Tensor,
        kv: &Tensor,
        sc: &mut ScratchArena,
        mut scores_out: Option<&mut Vec<Vec<f32>>>,
    ) -> Tensor {
        debug_assert_eq!(query.rows(), 1, "attention query must be a single row");
        let d = self.head_dim;
        let n = kv.rows();
        let scale = 1.0 / (d as f32).sqrt();
        let mut cat = sc.take(1, self.heads * d);
        let mut q = sc.take(1, d);
        let mut k = sc.take(n, d);
        let mut v = sc.take(n, d);
        let mut scores = sc.take(1, n);
        let mut ctx = sc.take(1, d);
        let id = Activation::Identity;
        for h in 0..self.heads {
            gemm_packed(1, query.data(), store.packed(self.wq[h]), false, None, id, q.data_mut());
            gemm_packed(n, kv.data(), store.packed(self.wk[h]), false, None, id, k.data_mut());
            gemm_packed(n, kv.data(), store.packed(self.wv[h]), false, None, id, v.data_mut());
            q.matmul_nt_into(&k, &mut scores);
            for s in scores.data_mut() {
                *s *= scale;
            }
            softmax_rows_inplace(&mut scores);
            if let Some(out) = scores_out.as_deref_mut() {
                out.push(scores.data().to_vec());
            }
            scores.matmul_into(&v, &mut ctx);
            cat.data_mut()[h * d..(h + 1) * d].copy_from_slice(ctx.data());
        }
        sc.recycle(q);
        sc.recycle(k);
        sc.recycle(v);
        sc.recycle(scores);
        sc.recycle(ctx);
        let out = self.out.forward_inference(store, &cat, sc);
        sc.recycle(cat);
        out
    }

    /// Batched tape-free attention over `kn` independent (query, kv-block)
    /// pairs: `query [kn, q_dim]`, `kv_all [kn*n, kv_dim]` (plan `p` owns rows
    /// `p*n..(p+1)*n`) → `[kn, out_dim]`.
    ///
    /// The three projections run as single `m > 1` GEMMs over all plans; the
    /// per-plan score/softmax/context ops then reuse the exact scalar-path
    /// primitives ([`dot_unrolled`] for scores, the m=1 row kernel for the
    /// context product), so row `p` of the result is **bitwise identical** to
    /// calling [`Self::forward_inference`] on plan `p` alone — the contract
    /// the batched MCTS evaluator relies on.
    pub fn forward_inference_batch(
        &self,
        store: &ParamStore,
        query: &Tensor,
        kv_all: &Tensor,
        n: usize,
        sc: &mut ScratchArena,
    ) -> Tensor {
        let kn = query.rows();
        debug_assert_eq!(kv_all.rows(), kn * n, "kv_all must hold n rows per plan");
        let d = self.head_dim;
        let scale = 1.0 / (d as f32).sqrt();
        let mut cat = sc.take(kn, self.heads * d);
        let mut q = sc.take(kn, d);
        let mut kproj = sc.take(kn * n, d);
        let mut vproj = sc.take(kn * n, d);
        let mut scores = sc.take(kn, n);
        let id = Activation::Identity;
        for h in 0..self.heads {
            gemm_packed(kn, query.data(), store.packed(self.wq[h]), false, None, id, q.data_mut());
            let kp = kproj.data_mut();
            gemm_packed(kn * n, kv_all.data(), store.packed(self.wk[h]), false, None, id, kp);
            let vp = vproj.data_mut();
            gemm_packed(kn * n, kv_all.data(), store.packed(self.wv[h]), false, None, id, vp);
            for p in 0..kn {
                // scores[p][i] = (q_p · k_{p,i}) * scale — the same dot and
                // scaling the scalar path's matmul_nt_into + `*= scale` do.
                let q_row = q.row_slice(p);
                for i in 0..n {
                    let s = dot(q_row, kproj.row_slice(p * n + i)) * scale;
                    scores.set(p, i, s);
                }
            }
            softmax_rows_inplace(&mut scores);
            for p in 0..kn {
                // ctx_p = scores_p [1 x n] · v-block_p [n x d], written
                // straight into this head's slice of `cat` via the m=1 kernel
                // the scalar path's matmul_into dispatches to.
                let v_block = &vproj.data()[p * n * d..(p + 1) * n * d];
                let cat_seg = &mut cat.row_slice_mut(p)[h * d..(h + 1) * d];
                cat_seg.fill(0.0);
                matmul_kernel(1, n, d, scores.row_slice(p), v_block, cat_seg);
            }
        }
        sc.recycle(q);
        sc.recycle(kproj);
        sc.recycle(vproj);
        sc.recycle(scores);
        let out = self.out.forward_inference(store, &cat, sc);
        sc.recycle(cat);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::init::Initializer;

    fn close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "fast path diverged: {x} vs {y}");
        }
    }

    #[test]
    fn arena_recycles_allocations() {
        let mut sc = ScratchArena::new();
        let t = sc.take(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert!(t.data().iter().all(|&x| x == 0.0));
        sc.recycle(t);
        assert_eq!(sc.idle(), 1);
        let t2 = sc.take(2, 2); // reshaped reuse
        assert_eq!(sc.idle(), 0);
        assert_eq!(t2.shape(), (2, 2));
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mlp_inference_matches_tape() {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(7);
        let m =
            Mlp::new(&mut store, &mut init, "m", &[5, 8, 3], Activation::Relu, Activation::Tanh);
        let x = Initializer::new(9).normal(4, 5, 1.0);

        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let tape = m.forward(&mut g, &store, xv);

        let mut sc = ScratchArena::new();
        let fast = m.forward_inference(&store, &x, &mut sc);
        close(fast.data(), g.value(tape).data(), 1e-5);
    }

    #[test]
    fn lstm_inference_matches_tape_over_two_steps() {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(11);
        let cell = LstmCell::new(&mut store, &mut init, "l", 6, 4);
        let x1 = Initializer::new(1).normal(2, 6, 1.0);
        let x2 = Initializer::new(2).normal(2, 6, 1.0);

        let mut g = Graph::new();
        let s0 = cell.zero_state(&mut g, 2);
        let x1v = g.constant(x1.clone());
        let s1 = cell.step(&mut g, &store, x1v, s0);
        let x2v = g.constant(x2.clone());
        let s2 = cell.step(&mut g, &store, x2v, s1);

        let mut sc = ScratchArena::new();
        let b0 = cell.zero_state_buf(2, &mut sc);
        let b1 = cell.step_inference(&store, &x1, &b0, &mut sc);
        let b2 = cell.step_inference(&store, &x2, &b1, &mut sc);
        close(b2.h.data(), g.value(s2.h).data(), 1e-5);
        close(b2.c.data(), g.value(s2.c).data(), 1e-5);
    }

    #[test]
    fn attention_inference_matches_tape_and_reports_scores() {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(13);
        let attn = MultiHeadCrossAttention::new(&mut store, &mut init, "a", 8, 6, 4, 5, 10);
        let q = Initializer::new(3).normal(1, 8, 1.0);
        let kv = Initializer::new(4).normal(3, 6, 1.0);

        let mut g = Graph::new();
        let qv = g.constant(q.clone());
        let kvv = g.constant(kv.clone());
        let (tape, tape_scores) = attn.forward(&mut g, &store, qv, kvv);

        let mut sc = ScratchArena::new();
        let mut scores = Vec::new();
        let fast = attn.forward_inference(&store, &q, &kv, &mut sc, Some(&mut scores));
        close(fast.data(), g.value(tape).data(), 1e-5);
        assert_eq!(scores.len(), 4);
        for (row, tv) in scores.iter().zip(&tape_scores) {
            close(row, g.value(*tv).data(), 1e-5);
        }
    }

    #[test]
    fn batched_attention_bitwise_equals_scalar_per_plan() {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(13);
        let attn = MultiHeadCrossAttention::new(&mut store, &mut init, "a", 8, 6, 4, 5, 10);
        let n = 3; // kv rows per plan
        for kn in [1usize, 2, 5, 7] {
            let query = Initializer::new(kn as u64).normal(kn, 8, 1.0);
            let kv_all = Initializer::new(100 + kn as u64).normal(kn * n, 6, 1.0);
            let mut sc = ScratchArena::new();
            let batched = attn.forward_inference_batch(&store, &query, &kv_all, n, &mut sc);
            assert_eq!(batched.shape(), (kn, 10));
            for p in 0..kn {
                let q = Tensor::from_vec(1, 8, query.row_slice(p).to_vec());
                let kv = Tensor::from_vec(n, 6, kv_all.data()[p * n * 6..(p + 1) * n * 6].to_vec());
                let single = attn.forward_inference(&store, &q, &kv, &mut sc, None);
                assert_eq!(
                    batched.row_slice(p),
                    single.data(),
                    "plan {p} of batch {kn} is not bitwise equal to the scalar path"
                );
                sc.recycle(single);
            }
        }
    }

    #[test]
    fn nan_weights_flow_through_without_panic() {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(17);
        let m = Mlp::new(
            &mut store,
            &mut init,
            "m",
            &[3, 4, 2],
            Activation::Relu,
            Activation::Identity,
        );
        // Poison the output layer: the hidden ReLU would absorb a NaN
        // (max(NaN, 0) == 0), which is also the tape path's behavior.
        let wid = m.layers[1].w;
        store.value_mut(wid).data_mut()[0] = f32::NAN;
        let x = Tensor::ones(1, 3);
        let mut sc = ScratchArena::new();
        let y = m.forward_inference(&store, &x, &mut sc);
        assert!(y.data().iter().any(|v| v.is_nan()), "NaN should propagate, not panic");
    }
}
