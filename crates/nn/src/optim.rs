//! Optimizers: Adam (used by all models, as in the paper) and plain SGD.

use crate::params::ParamStore;

/// Adam optimizer with per-parameter first/second-moment state.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the paper's defaults (lr 0.001 in the paper; pass any lr).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0, m: Vec::new(), v: Vec::new() }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update from the gradients currently held in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let n = store.len();
        // Lazily grow moment buffers to match the store (parameters are only
        // ever appended, never removed).
        while self.m.len() < n {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        for (i, p) in store.params_mut().iter_mut().enumerate() {
            if !p.trainable {
                continue;
            }
            if self.m[i].len() != p.value.len() {
                self.m[i] = vec![0.0; p.value.len()];
                self.v[i] = vec![0.0; p.value.len()];
            }
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let wd = self.weight_decay;
            let values = p.value.data_mut();
            for (j, gref) in p.grad.data().iter().enumerate() {
                let mut g = *gref;
                if !g.is_finite() {
                    // A single exploding sample must not poison the moments.
                    g = 0.0;
                }
                if wd > 0.0 {
                    g += wd * values[j];
                }
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                values[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent (used in ablations and tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    pub fn step(&mut self, store: &mut ParamStore) {
        for p in store.params_mut() {
            if !p.trainable {
                continue;
            }
            let lr = self.lr;
            let grads = p.grad.data().to_vec();
            for (x, g) in p.value.data_mut().iter_mut().zip(grads) {
                if g.is_finite() {
                    *x -= lr * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Minimize (w - 3)² with each optimizer; both must converge.
    fn converges(mut step: impl FnMut(&mut ParamStore)) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            store.zero_grads();
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let target = g.constant(Tensor::scalar(3.0));
            let loss = g.mse(wv, target);
            g.backward(loss, &mut store);
            step(&mut store);
        }
        store.value(w).get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = converges(move |s| opt.step(s));
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges(move |s| opt.step(s));
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn adam_skips_frozen_params() {
        let mut store = ParamStore::new();
        let w = store.register_frozen("frozen", Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(10.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert_eq!(store.value(w).get(0, 0), 1.0);
    }

    #[test]
    fn adam_ignores_nan_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(f32::NAN));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert!(store.value(w).get(0, 0).is_finite());
    }

    #[test]
    fn adam_handles_params_registered_after_first_step() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.05);
        store.accumulate_grad(a, &Tensor::scalar(1.0));
        opt.step(&mut store);
        let b = store.register("b", Tensor::scalar(0.0));
        store.zero_grads();
        store.accumulate_grad(b, &Tensor::scalar(1.0));
        opt.step(&mut store); // must not panic
        assert!(store.value(b).get(0, 0) < 0.0);
    }

    #[test]
    fn step_counter_advances() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }
}
