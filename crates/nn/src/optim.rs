//! Optimizers: Adam (used by all models, as in the paper) and plain SGD.
//!
//! Both optimizers guard every update: non-finite gradients are zeroed
//! before touching the moment buffers, oversized per-element updates are
//! clamped, and any parameter that would become non-finite is reverted.
//! [`StepReport`] counts what fired, so training loops can surface
//! numerical trouble instead of silently diverging.

use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// What the numerical guards did during one optimizer step. All-zero for a
/// healthy step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepReport {
    /// Gradient elements that were NaN/Inf and treated as zero.
    pub nonfinite_grads: usize,
    /// Updates whose magnitude was clamped to the per-element cap.
    pub clipped_updates: usize,
    /// Parameter values that would have become non-finite and were kept at
    /// their previous value instead.
    pub reverted_values: usize,
}

impl StepReport {
    /// No guard fired.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    /// Accumulate another step's counters (for per-epoch totals).
    pub fn absorb(&mut self, other: StepReport) {
        self.nonfinite_grads += other.nonfinite_grads;
        self.clipped_updates += other.clipped_updates;
        self.reverted_values += other.reverted_values;
    }
}

/// Adam optimizer with per-parameter first/second-moment state.
///
/// Serializable so a training run can snapshot its optimizer mid-flight:
/// the moment buffers and step counter round-trip exactly (the vendored
/// JSON writer emits shortest-round-trip floats), which is what makes
/// crash+resume bitwise-identical to an uninterrupted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Per-element update magnitude cap. Far above any healthy Adam update
    /// (which is ≈ lr); only pathological moment states reach it.
    pub max_update: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the paper's defaults (lr 0.001 in the paper; pass any lr).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            max_update: 10.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update from the gradients currently held in `store`.
    pub fn step(&mut self, store: &mut ParamStore) -> StepReport {
        let mut report = StepReport::default();
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let n = store.len();
        // Lazily grow moment buffers to match the store (parameters are only
        // ever appended, never removed).
        while self.m.len() < n {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        for (i, p) in store.params_mut().iter_mut().enumerate() {
            if !p.trainable {
                continue;
            }
            if self.m[i].len() != p.value.len() {
                self.m[i] = vec![0.0; p.value.len()];
                self.v[i] = vec![0.0; p.value.len()];
            }
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let wd = self.weight_decay;
            let values = p.value.data_mut();
            for (j, gref) in p.grad.data().iter().enumerate() {
                let mut g = *gref;
                if !g.is_finite() {
                    // A single exploding sample must not poison the moments.
                    g = 0.0;
                    report.nonfinite_grads += 1;
                }
                if wd > 0.0 {
                    g += wd * values[j];
                }
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                let mut u = self.lr * mhat / (vhat.sqrt() + self.eps);
                if u.abs() > self.max_update {
                    u = u.signum() * self.max_update;
                    report.clipped_updates += 1;
                }
                let next = values[j] - u;
                if next.is_finite() {
                    values[j] = next;
                } else {
                    report.reverted_values += 1;
                }
            }
        }
        report
    }
}

/// Plain stochastic gradient descent (used in ablations and tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    pub fn step(&mut self, store: &mut ParamStore) -> StepReport {
        let mut report = StepReport::default();
        for p in store.params_mut() {
            if !p.trainable {
                continue;
            }
            let lr = self.lr;
            let grads = p.grad.data().to_vec();
            for (x, g) in p.value.data_mut().iter_mut().zip(grads) {
                if !g.is_finite() {
                    report.nonfinite_grads += 1;
                    continue;
                }
                let next = *x - lr * g;
                if next.is_finite() {
                    *x = next;
                } else {
                    report.reverted_values += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Minimize (w - 3)² with each optimizer; both must converge.
    fn converges(mut step: impl FnMut(&mut ParamStore)) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            store.zero_grads();
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let target = g.constant(Tensor::scalar(3.0));
            let loss = g.mse(wv, target);
            g.backward(loss, &mut store);
            step(&mut store);
        }
        store.value(w).get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = converges(move |s| {
            opt.step(s);
        });
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges(move |s| {
            opt.step(s);
        });
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn adam_skips_frozen_params() {
        let mut store = ParamStore::new();
        let w = store.register_frozen("frozen", Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(10.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert_eq!(store.value(w).get(0, 0), 1.0);
    }

    #[test]
    fn adam_ignores_nan_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(f32::NAN));
        let mut opt = Adam::new(0.1);
        let report = opt.step(&mut store);
        assert!(store.value(w).get(0, 0).is_finite());
        assert_eq!(report.nonfinite_grads, 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_step_reports_no_guards() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(0.5));
        let mut opt = Adam::new(0.1);
        assert!(opt.step(&mut store).is_clean());
    }

    #[test]
    fn oversized_updates_are_clamped() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        store.accumulate_grad(w, &Tensor::scalar(1.0));
        let mut opt = Adam::new(1.0);
        opt.max_update = 1e-3;
        let report = opt.step(&mut store);
        assert_eq!(report.clipped_updates, 1);
        assert!((store.value(w).get(0, 0) + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn sgd_reverts_updates_that_overflow() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(f32::MAX));
        store.accumulate_grad(w, &Tensor::scalar(-f32::MAX));
        let mut opt = Sgd::new(1.0);
        let report = opt.step(&mut store);
        assert_eq!(report.reverted_values, 1);
        assert_eq!(store.value(w).get(0, 0), f32::MAX);
    }

    #[test]
    fn step_reports_accumulate() {
        let mut total = StepReport::default();
        total.absorb(StepReport { nonfinite_grads: 2, clipped_updates: 1, reverted_values: 0 });
        total.absorb(StepReport { nonfinite_grads: 1, clipped_updates: 0, reverted_values: 3 });
        assert_eq!(
            total,
            StepReport { nonfinite_grads: 3, clipped_updates: 1, reverted_values: 3 }
        );
    }

    #[test]
    fn adam_handles_params_registered_after_first_step() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.05);
        store.accumulate_grad(a, &Tensor::scalar(1.0));
        opt.step(&mut store);
        let b = store.register("b", Tensor::scalar(0.0));
        store.zero_grads();
        store.accumulate_grad(b, &Tensor::scalar(1.0));
        opt.step(&mut store); // must not panic
        assert!(store.value(b).get(0, 0) < 0.0);
    }

    #[test]
    fn step_counter_advances() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }
}
