//! Weight initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic weight initializer.
///
/// Wraps a seeded RNG so model construction is reproducible: the same seed
/// and construction order always yield the same parameters.
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(&mut self, rows: usize, cols: usize) -> Tensor {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        self.uniform(rows, cols, -a, a)
    }

    /// Kaiming/He uniform for ReLU layers: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
    pub fn kaiming(&mut self, rows: usize, cols: usize) -> Tensor {
        let a = (6.0 / rows as f32).sqrt();
        self.uniform(rows, cols, -a, a)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
        let data = (0..rows * cols).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Standard normal scaled by `std`.
    pub fn normal(&mut self, rows: usize, cols: usize, std: f32) -> Tensor {
        // Box-Muller transform; rand's Distribution types are avoided to keep
        // the dependency surface to `rand` core.
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Sample a standard-normal noise tensor (for VAE reparameterization).
    pub fn standard_normal(&mut self, rows: usize, cols: usize) -> Tensor {
        self.normal(rows, cols, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Initializer::new(7).xavier(4, 4);
        let b = Initializer::new(7).xavier(4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Initializer::new(7).xavier(4, 4);
        let b = Initializer::new(8).xavier(4, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_respects_bound() {
        let t = Initializer::new(0).xavier(10, 10);
        let a = (6.0 / 20.0f32).sqrt();
        assert!(t.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let t = Initializer::new(1).normal(100, 100, 2.0);
        let mean = t.mean();
        let var =
            t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (t.len() as f32 - 1.0);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
