//! Finite-difference gradient checking, exposed as a public utility so
//! downstream crates (and users extending the op set) can verify custom
//! compositions the same way this crate's own tests do.

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};

/// Result of checking one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative deviation between analytic and numeric gradient.
    pub max_rel_error: f32,
    /// Index of the offending scalar (flat index into the tensor).
    pub worst_index: usize,
    pub analytic: f32,
    pub numeric: f32,
}

impl GradCheckReport {
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compare the analytic gradient of `param` under `build` (a closure that
/// records a scalar loss onto a fresh graph) against central finite
/// differences with step `eps`.
///
/// `build` must be deterministic: it is re-invoked with perturbed parameter
/// values.
pub fn check_gradient(
    store: &mut ParamStore,
    param: ParamId,
    eps: f32,
    mut build: impl FnMut(&mut Graph, &ParamStore) -> Var,
) -> GradCheckReport {
    store.zero_grads();
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    g.backward(loss, store);
    let analytic = store.grad(param).clone();

    let mut report =
        GradCheckReport { max_rel_error: 0.0, worst_index: 0, analytic: 0.0, numeric: 0.0 };
    for i in 0..store.value(param).len() {
        let orig = store.value(param).data()[i];
        store.value_mut(param).data_mut()[i] = orig + eps;
        let mut gp = Graph::new();
        let vp = build(&mut gp, store);
        let lp = gp.value(vp).get(0, 0);
        store.value_mut(param).data_mut()[i] = orig - eps;
        let mut gm = Graph::new();
        let vm = build(&mut gm, store);
        let lm = gm.value(vm).get(0, 0);
        store.value_mut(param).data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic.data()[i];
        let rel = (a - numeric).abs() / (1.0 + numeric.abs());
        if rel > report.max_rel_error {
            report = GradCheckReport { max_rel_error: rel, worst_index: i, analytic: a, numeric };
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use crate::layers::{Activation, Mlp};

    #[test]
    fn passes_on_a_correct_network() {
        let mut store = ParamStore::new();
        let mut init = Initializer::new(3);
        let mlp = Mlp::new(
            &mut store,
            &mut init,
            "m",
            &[3, 8, 1],
            Activation::Tanh,
            Activation::Identity,
        );
        let x = init.normal(4, 3, 1.0);
        let w = mlp.layers[0].w;
        let report = check_gradient(&mut store, w, 1e-2, |g, s| {
            let xv = g.constant(x.clone());
            let y = mlp.forward(g, s, xv);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
        assert!(report.passes(2e-2), "gradcheck failed: {report:?}");
    }

    #[test]
    fn detects_a_wrong_gradient() {
        // Build a loss whose recorded graph differs from the perturbed
        // evaluation (simulating a buggy op): gradcheck must flag it.
        let mut store = ParamStore::new();
        let w = store.register("w", crate::tensor::Tensor::scalar(1.0));
        let mut call = 0usize;
        let report = check_gradient(&mut store, w, 1e-2, move |g, s| {
            call += 1;
            let wv = g.param(s, w);
            if call == 1 {
                // analytic pass: loss = w
                g.sum_all(wv)
            } else {
                // numeric passes: loss = 3w (inconsistent!)
                let t = g.scale(wv, 3.0);
                g.sum_all(t)
            }
        });
        assert!(!report.passes(0.3), "inconsistent function must fail: {report:?}");
    }
}
