//! Runtime ISA selection for the SIMD kernels.
//!
//! Every vectorized kernel in this crate (GEMM tiles, packed-panel GEMM with
//! fused epilogues, activation polynomials) exists in up to three variants:
//! scalar, AVX2+FMA, and AVX-512F/VL. Which variant runs is decided **once
//! per process** — feature detection is a pure function of the CPU, so the
//! choice is made on first use, cached in a [`std::sync::OnceLock`], and
//! logged a single time. All kernels then dispatch through the same selected
//! [`Isa`], which is what keeps the bitwise FP-order contracts intact: a
//! batched product and its m=1 twin always run on the *same* variant, even
//! though different variants round differently.
//!
//! `QPS_FORCE_ISA={scalar,avx2,avx512}` overrides detection (for CI matrix
//! runs and cross-ISA benches). Forcing an ISA the CPU cannot execute falls
//! back to the best supported one with a warning instead of crashing —
//! `QPS_FORCE_ISA=avx512` on an AVX2 host must degrade, not SIGILL.

use std::sync::OnceLock;

/// Instruction-set tier the kernels dispatch on, ordered by preference.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub enum Isa {
    /// Portable scalar kernels; always available.
    #[default]
    Scalar,
    /// AVX2 + FMA: 8-lane f32 tiles and polynomial activations.
    Avx2,
    /// AVX-512F + AVX-512VL: 16-lane f32 tiles with masked tail stores.
    Avx512,
}

impl Isa {
    /// Stable lowercase name, also the accepted `QPS_FORCE_ISA` values.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Whether the running CPU can execute this tier.
    pub fn cpu_supports(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vl")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every tier the running CPU supports, worst to best. Tests iterate
    /// this to exercise each kernel variant explicitly (the process-wide
    /// selection is fixed, so per-variant coverage goes through the
    /// `*_force` kernel entry points instead of the env override).
    pub fn supported() -> Vec<Isa> {
        [Isa::Scalar, Isa::Avx2, Isa::Avx512].into_iter().filter(|i| i.cpu_supports()).collect()
    }

    fn best_supported() -> Isa {
        *Isa::supported().last().expect("scalar is always supported")
    }

    fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" | "portable" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" | "avx-512" => Some(Isa::Avx512),
            _ => None,
        }
    }
}

/// The process-wide selected ISA: best supported tier, unless
/// `QPS_FORCE_ISA` names a (supported) override. Resolved once, then
/// immutable for the life of the process; the selection is logged to stderr
/// on first resolution so every bench/serve run records which path ran.
pub fn active() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let best = Isa::best_supported();
        let chosen = match std::env::var("QPS_FORCE_ISA") {
            Ok(v) => match Isa::parse(&v) {
                Some(forced) if forced.cpu_supports() => forced,
                Some(forced) => {
                    eprintln!(
                        "qpseeker: QPS_FORCE_ISA={} not supported by this CPU, using {}",
                        forced.name(),
                        best.name()
                    );
                    best
                }
                None => {
                    eprintln!(
                        "qpseeker: unknown QPS_FORCE_ISA value {v:?} (scalar|avx2|avx512), using {}",
                        best.name()
                    );
                    best
                }
            },
            Err(_) => best,
        };
        eprintln!("qpseeker: kernel ISA {} (cpu best: {})", chosen.name(), best.name());
        chosen
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported_and_ordering_holds() {
        assert!(Isa::Scalar.cpu_supports());
        let sup = Isa::supported();
        assert!(!sup.is_empty());
        assert!(sup.windows(2).all(|w| w[0] < w[1]), "supported() must be worst-to-best");
        assert_eq!(sup[0], Isa::Scalar);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
        }
        assert_eq!(Isa::parse("AVX512"), Some(Isa::Avx512));
        assert_eq!(Isa::parse("mmx"), None);
    }

    #[test]
    fn active_is_stable_and_supported() {
        let a = active();
        assert!(a.cpu_supports());
        assert_eq!(a, active(), "selection must be cached");
    }
}
